//! Differential testing across many generated programs: every compiler
//! configuration must agree on observable behaviour, and optimization must
//! never make programs dynamically slower.

use sfcc::{Compiler, Config, OptLevel, SkipPolicy};
use sfcc_backend::{run, RunOutput, VmError, VmOptions};
use sfcc_buildsys::Builder;
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};

fn behaviours(
    report: &sfcc_buildsys::BuildReport,
    args: &[i64],
) -> Vec<Result<RunOutput, VmError>> {
    args.iter()
        .map(|&n| run(&report.program, "main.main", &[n], VmOptions::default()))
        .collect()
}

fn assert_same(a: &[Result<RunOutput, VmError>], b: &[Result<RunOutput, VmError>], ctx: &str) {
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.prints, rb.prints, "{ctx}, input {i}");
                assert_eq!(ra.return_value, rb.return_value, "{ctx}, input {i}");
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}, input {i}"),
            (x, y) => panic!("{ctx}, input {i}: {x:?} vs {y:?}"),
        }
    }
}

/// 12 random projects × 3 configurations × 3 inputs, all agreeing.
#[test]
fn differential_o0_o2_stateful_agree_across_seeds() {
    let args = [0, 4, 17];
    for seed in 0..12 {
        let model = generate_model(&GeneratorConfig::small(1000 + seed));
        let project = model.render();

        let mut o0 = Builder::new(Compiler::new(
            Config::stateless().with_opt_level(OptLevel::O0),
        ));
        let mut o2 = Builder::new(Compiler::new(Config::stateless()));
        let mut st = Builder::new(Compiler::new(
            Config::stateless().with_policy(SkipPolicy::PreviousBuild),
        ));

        let r0 = o0.build(&project).unwrap();
        let r2 = o2.build(&project).unwrap();
        // Warm the stateful compiler with one identical build first so the
        // second one exercises skipping on every function.
        st.build(&project).unwrap();
        st.clear_cache();
        let rs = st.build(&project).unwrap();
        assert!(
            rs.outcome_totals().2 > 0,
            "seed {seed}: warm rebuild should skip"
        );

        let b0 = behaviours(&r0, &args);
        let b2 = behaviours(&r2, &args);
        let bs = behaviours(&rs, &args);
        assert_same(&b0, &b2, &format!("seed {seed}: O0 vs O2"));
        assert_same(&b2, &bs, &format!("seed {seed}: stateless vs stateful"));

        // Optimization must not slow programs down dynamically.
        for (slow, fast) in b0.iter().zip(&b2) {
            if let (Ok(slow), Ok(fast)) = (slow, fast) {
                assert!(
                    fast.executed <= slow.executed,
                    "seed {seed}: O2 ({}) slower than O0 ({})",
                    fast.executed,
                    slow.executed
                );
            }
        }
    }
}

/// Interleaved edits with different edit mixes: equivalence holds under
/// every mix, including interface-changing commits.
#[test]
fn differential_edit_mixes_agree() {
    use sfcc_workload::EditKind;
    for (mix, kind) in [
        ("const", Some(EditKind::TweakConstant)),
        ("stmts", Some(EditKind::AddStatement)),
        ("fns", Some(EditKind::AddFunction)),
        ("default", None),
    ] {
        let config = GeneratorConfig::small(777);
        let mut model_a = generate_model(&config);
        let mut model_b = generate_model(&config);
        let (mut sa, mut sb) = match kind {
            Some(k) => (EditScript::only(3, k), EditScript::only(3, k)),
            None => (EditScript::new(3), EditScript::new(3)),
        };

        let mut baseline = Builder::new(Compiler::new(Config::stateless()));
        let mut stateful = Builder::new(Compiler::new(
            Config::stateless().with_policy(SkipPolicy::PreviousBuild),
        ));
        baseline.build(&model_a.render()).unwrap();
        stateful.build(&model_b.render()).unwrap();

        for n in 1..=6 {
            sa.commit(&mut model_a);
            sb.commit(&mut model_b);
            let ra = baseline.build(&model_a.render()).unwrap();
            let rb = stateful.build(&model_b.render()).unwrap();
            assert_same(
                &behaviours(&ra, &[5]),
                &behaviours(&rb, &[5]),
                &format!("mix {mix}, commit {n}"),
            );
        }
    }
}

/// The stateful compiler's *output object code* for an unchanged function
/// must be byte-identical when nothing was skipped differently — and when
/// skips do fire, still behaviourally equal (checked above). Here: a
/// rebuild with zero source changes produces an identical program.
#[test]
fn identical_input_reproduces_identical_program() {
    let model = generate_model(&GeneratorConfig::small(888));
    let project = model.render();
    let mut a = Builder::new(Compiler::new(Config::stateless()));
    let mut b = Builder::new(Compiler::new(Config::stateless()));
    let ra = a.build(&project).unwrap();
    let rb = b.build(&project).unwrap();
    assert_eq!(ra.program.total_code_size(), rb.program.total_code_size());
    for (fa, fb) in ra.program.funcs.iter().zip(&rb.program.funcs) {
        assert_eq!(fa, fb, "codegen must be deterministic");
    }
}
