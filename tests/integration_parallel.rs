//! Determinism of parallel builds: whatever the edit history, `--jobs 1`
//! and `--jobs 8` must produce byte-identical bytecode images **and**
//! byte-identical persisted dormancy state (and function-cache) files.
//! This is the contract that makes the worker count a pure wall-time knob:
//! per-function pipelines read callees from an immutable module snapshot,
//! traces merge in module definition order, and function-cache inserts are
//! applied at wave boundaries for every worker count.

use proptest::prelude::*;
use sfcc::{Compiler, Config};
use sfcc_backend::image::to_bytes;
use sfcc_buildsys::{Builder, Project};
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfcc-it-par-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A stateful builder with the function cache on, persisting under
/// `dir/<tag>.state`, allowed `jobs` workers.
fn builder_with(jobs: usize, dir: &Path, tag: &str) -> Builder {
    let config = Config::stateful()
        .with_state_path(dir.join(format!("{tag}.state")))
        .with_function_cache()
        .with_jobs(jobs);
    Builder::new(Compiler::new(config)).with_jobs(jobs)
}

/// Saves the builder's state and returns the raw bytes of the dormancy
/// state file and the function-cache file it persisted. State is published
/// through the atomic-commit manifest, so the logical entries are read
/// back through it rather than as plain files.
fn persisted_bytes(builder: &Builder, dir: &Path, tag: &str) -> (Vec<u8>, Vec<u8>) {
    builder.compiler().save_state().unwrap();
    let cd = sfcc_faultfs::CommitDir::new(&dir.join(format!("{tag}.state")));
    let m = cd.read_manifest().unwrap().unwrap();
    let state = cd.load_entry(m.entry("state").unwrap()).unwrap();
    let cache = cd.load_entry(m.entry("ircache").unwrap()).unwrap();
    (state, cache)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Two builders — one sequential, one racing 8 workers over modules and
    /// functions — replay the same random edit script. After every commit,
    /// images and persisted state must agree byte for byte.
    #[test]
    fn jobs_1_and_jobs_8_builds_are_byte_identical(seed in any::<u64>()) {
        let dir = scratch_dir(&format!("prop-{}", seed % 1000));
        let config = GeneratorConfig::small(seed % 1000);
        let mut model = generate_model(&config);
        let mut script = EditScript::new(seed ^ 0x9e37_79b9_7f4a_7c15);

        let mut seq = builder_with(1, &dir, "seq");
        let mut par = builder_with(8, &dir, "par");

        for commit in 0..6usize {
            if commit > 0 {
                script.commit(&mut model);
            }
            let p = model.render();
            let seq_image = to_bytes(&seq.build(&p).unwrap().program);
            let par_image = to_bytes(&par.build(&p).unwrap().program);
            prop_assert_eq!(seq_image, par_image, "image diverged at commit {}", commit);

            let (seq_state, seq_cache) = persisted_bytes(&seq, &dir, "seq");
            let (par_state, par_cache) = persisted_bytes(&par, &dir, "par");
            prop_assert_eq!(seq_state, par_state, "state diverged at commit {}", commit);
            prop_assert_eq!(seq_cache, par_cache, "fn-cache diverged at commit {}", commit);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Copy-on-write snapshots under cross-batch inliner reads: a seeded module
/// whose ~40 callers all inline a handful of tiny helpers, so the inline
/// stage's re-snapshot must present every batch with identical callee
/// bodies. A deterministic edit script dirties different functions each
/// commit; `--jobs 8` (batched fan-out, CoW re-wraps) must stay
/// byte-identical to `--jobs 1` in images, state, and fn-cache.
#[test]
fn quick_cow_snapshot_byte_identity_under_cross_batch_inlining() {
    let dir = scratch_dir("cow");
    let mut source = String::new();
    // Tiny helpers: well under the inline threshold, so every caller
    // inlines them from the stage snapshot.
    for h in 0..4 {
        source.push_str(&format!(
            "fn h{h}(x: int) -> int {{ return x * {} + {h}; }}\n",
            h + 2
        ));
    }
    for i in 0..40 {
        source.push_str(&format!(
            "fn g{i}(x: int) -> int {{\n  let a: int = h{}(x);\n  let b: int = h{}(a);\n  let acc: int = a + b;\n  for (let j: int = 0; j < {}; j = j + 1) {{\n    acc = acc + h{}(j);\n  }}\n  return acc;\n}}\n",
            i % 4,
            (i + 1) % 4,
            i % 5 + 1,
            (i + 2) % 4
        ));
    }
    source.push_str("fn main(n: int) -> int { return g0(n) + g39(n); }\n");

    let mut p = Project::new();
    p.set_file("main".to_string(), source.clone());

    let mut seq = builder_with(1, &dir, "seq");
    let mut par = builder_with(8, &dir, "par");
    for edit in 0..3 {
        // Edit a helper body: every inlining caller goes stale, and the
        // re-snapshot must re-wrap exactly the functions that changed.
        let edited = source.replace("x * 2 + 0", &format!("x * 2 + {}", 10 + edit));
        p.set_file("main".to_string(), edited);
        let seq_report = seq.build(&p).unwrap();
        let par_report = par.build(&p).unwrap();
        assert_eq!(
            to_bytes(&seq_report.program),
            to_bytes(&par_report.program),
            "image diverged at edit {edit}"
        );
        let (seq_state, seq_cache) = persisted_bytes(&seq, &dir, "seq");
        let (par_state, par_cache) = persisted_bytes(&par, &dir, "par");
        assert_eq!(seq_state, par_state, "state diverged at edit {edit}");
        assert_eq!(seq_cache, par_cache, "fn-cache diverged at edit {edit}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stage that changes no function must re-wrap no function: the
/// re-snapshot reuses every previous `Arc` (zero cloned cost units), in
/// both runners, with identical trace counters.
#[test]
fn quick_zero_change_stage_performs_zero_rewraps() {
    use sfcc_passes::{run_pipeline, run_pipeline_parallel, NeverSkip, Pipeline, RunOptions};

    /// A pass that never touches the IR.
    struct Nop;
    impl sfcc_passes::Pass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&self, _func: &mut sfcc_ir::Function, _snapshot: &sfcc_ir::ModuleSnapshot) -> bool {
            false
        }
    }

    let build_module = || {
        let mut m = sfcc_ir::Module::new("zero");
        for i in 0..24 {
            let mut f = sfcc_ir::Function::new(
                format!("f{i}"),
                vec![sfcc_ir::Ty::I64],
                Some(sfcc_ir::Ty::I64),
            );
            let mut b = sfcc_ir::FuncBuilder::at_entry(&mut f);
            let v = b.bin(
                sfcc_ir::BinKind::Add,
                sfcc_ir::ValueRef::Param(0),
                sfcc_ir::ValueRef::int(i),
            );
            b.ret(Some(v));
            m.add_function(f);
        }
        m
    };
    let make_pipeline = || {
        Pipeline::new()
            .stage(false, vec![Box::new(Nop)])
            .stage(true, vec![Box::new(Nop)])
    };
    let options = RunOptions { verify_each: true };

    let mut seq_module = build_module();
    let nfuncs = seq_module.functions.len() as u64;
    let initial_cost: u64 = seq_module
        .functions
        .iter()
        .map(|f| f.live_inst_count() as u64)
        .sum();
    let seq_pipeline = make_pipeline();
    let seq = run_pipeline(&mut seq_module, &seq_pipeline, &NeverSkip, options);

    let mut par_module = build_module();
    let par_pipeline = make_pipeline();
    let par = sfcc_pool::scope(8, |ps| {
        run_pipeline_parallel(
            &mut par_module,
            &par_pipeline,
            std::sync::Arc::new(NeverSkip),
            options,
            ps,
        )
    });

    for (label, trace) in [("sequential", &seq), ("parallel", &par)] {
        // Pipeline entry + the resnapshot stage; the Nop stage changed
        // nothing, so the re-snapshot clones zero functions and reuses all.
        assert_eq!(trace.snapshot_clones, 2, "{label}: snapshot count");
        assert_eq!(
            trace.snapshot_cost_units, initial_cost,
            "{label}: only the entry snapshot may deep-clone"
        );
        assert_eq!(
            trace.snapshot_reused, nfuncs,
            "{label}: the re-snapshot must reuse every function Arc"
        );
        assert!(trace.batch_count > 0, "{label}: batches were planned");
    }
    let strip = |mut t: sfcc_passes::PipelineTrace| {
        for f in &mut t.functions {
            for r in &mut f.records {
                r.nanos = 0;
            }
        }
        t
    };
    assert_eq!(strip(seq), strip(par), "runner traces diverged");
}

/// One big module: the single-stale-module path, where all parallelism is
/// function-level. `--jobs 8` must still match `--jobs 1` exactly.
#[test]
fn single_module_function_parallelism_is_deterministic() {
    let dir = scratch_dir("single");
    let mut source = String::new();
    for i in 0..48 {
        source.push_str(&format!(
            "fn f{i}(x: int) -> int {{\n  let acc: int = x;\n  for (let j: int = 0; j < {}; j = j + 1) {{\n    acc = acc * 3 + {i};\n  }}\n  return acc;\n}}\n",
            i % 7 + 1
        ));
    }
    source.push_str("fn main(n: int) -> int { return f0(n) + f47(n); }\n");

    let mut p = Project::new();
    p.set_file("main".to_string(), source.clone());

    let mut seq = builder_with(1, &dir, "seq");
    let mut par = builder_with(8, &dir, "par");
    for edit in 0..3 {
        // A body-only edit of one function re-optimizes just this module.
        let edited = source.replace("acc * 3", &format!("acc * {}", 3 + edit));
        p.set_file("main".to_string(), edited);
        let seq_report = seq.build(&p).unwrap();
        let par_report = par.build(&p).unwrap();
        assert_eq!(
            to_bytes(&seq_report.program),
            to_bytes(&par_report.program),
            "image diverged at edit {edit}"
        );
        let (seq_state, seq_cache) = persisted_bytes(&seq, &dir, "seq");
        let (par_state, par_cache) = persisted_bytes(&par, &dir, "par");
        assert_eq!(seq_state, par_state, "state diverged at edit {edit}");
        assert_eq!(seq_cache, par_cache, "fn-cache diverged at edit {edit}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
