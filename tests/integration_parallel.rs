//! Determinism of parallel builds: whatever the edit history, `--jobs 1`
//! and `--jobs 8` must produce byte-identical bytecode images **and**
//! byte-identical persisted dormancy state (and function-cache) files.
//! This is the contract that makes the worker count a pure wall-time knob:
//! per-function pipelines read callees from an immutable module snapshot,
//! traces merge in module definition order, and function-cache inserts are
//! applied at wave boundaries for every worker count.

use proptest::prelude::*;
use sfcc::{Compiler, Config};
use sfcc_backend::image::to_bytes;
use sfcc_buildsys::{Builder, Project};
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfcc-it-par-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A stateful builder with the function cache on, persisting under
/// `dir/<tag>.state`, allowed `jobs` workers.
fn builder_with(jobs: usize, dir: &Path, tag: &str) -> Builder {
    let config = Config::stateful()
        .with_state_path(dir.join(format!("{tag}.state")))
        .with_function_cache()
        .with_jobs(jobs);
    Builder::new(Compiler::new(config)).with_jobs(jobs)
}

/// Saves the builder's state and returns the raw bytes of the dormancy
/// state file and the function-cache file it persisted. State is published
/// through the atomic-commit manifest, so the logical entries are read
/// back through it rather than as plain files.
fn persisted_bytes(builder: &Builder, dir: &Path, tag: &str) -> (Vec<u8>, Vec<u8>) {
    builder.compiler().save_state().unwrap();
    let cd = sfcc_faultfs::CommitDir::new(&dir.join(format!("{tag}.state")));
    let m = cd.read_manifest().unwrap().unwrap();
    let state = cd.load_entry(m.entry("state").unwrap()).unwrap();
    let cache = cd.load_entry(m.entry("ircache").unwrap()).unwrap();
    (state, cache)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Two builders — one sequential, one racing 8 workers over modules and
    /// functions — replay the same random edit script. After every commit,
    /// images and persisted state must agree byte for byte.
    #[test]
    fn jobs_1_and_jobs_8_builds_are_byte_identical(seed in any::<u64>()) {
        let dir = scratch_dir(&format!("prop-{}", seed % 1000));
        let config = GeneratorConfig::small(seed % 1000);
        let mut model = generate_model(&config);
        let mut script = EditScript::new(seed ^ 0x9e37_79b9_7f4a_7c15);

        let mut seq = builder_with(1, &dir, "seq");
        let mut par = builder_with(8, &dir, "par");

        for commit in 0..6usize {
            if commit > 0 {
                script.commit(&mut model);
            }
            let p = model.render();
            let seq_image = to_bytes(&seq.build(&p).unwrap().program);
            let par_image = to_bytes(&par.build(&p).unwrap().program);
            prop_assert_eq!(seq_image, par_image, "image diverged at commit {}", commit);

            let (seq_state, seq_cache) = persisted_bytes(&seq, &dir, "seq");
            let (par_state, par_cache) = persisted_bytes(&par, &dir, "par");
            prop_assert_eq!(seq_state, par_state, "state diverged at commit {}", commit);
            prop_assert_eq!(seq_cache, par_cache, "fn-cache diverged at commit {}", commit);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One big module: the single-stale-module path, where all parallelism is
/// function-level. `--jobs 8` must still match `--jobs 1` exactly.
#[test]
fn single_module_function_parallelism_is_deterministic() {
    let dir = scratch_dir("single");
    let mut source = String::new();
    for i in 0..48 {
        source.push_str(&format!(
            "fn f{i}(x: int) -> int {{\n  let acc: int = x;\n  for (let j: int = 0; j < {}; j = j + 1) {{\n    acc = acc * 3 + {i};\n  }}\n  return acc;\n}}\n",
            i % 7 + 1
        ));
    }
    source.push_str("fn main(n: int) -> int { return f0(n) + f47(n); }\n");

    let mut p = Project::new();
    p.set_file("main".to_string(), source.clone());

    let mut seq = builder_with(1, &dir, "seq");
    let mut par = builder_with(8, &dir, "par");
    for edit in 0..3 {
        // A body-only edit of one function re-optimizes just this module.
        let edited = source.replace("acc * 3", &format!("acc * {}", 3 + edit));
        p.set_file("main".to_string(), edited);
        let seq_report = seq.build(&p).unwrap();
        let par_report = par.build(&p).unwrap();
        assert_eq!(
            to_bytes(&seq_report.program),
            to_bytes(&par_report.program),
            "image diverged at edit {edit}"
        );
        let (seq_state, seq_cache) = persisted_bytes(&seq, &dir, "seq");
        let (par_state, par_cache) = persisted_bytes(&par, &dir, "par");
        assert_eq!(seq_state, par_state, "state diverged at edit {edit}");
        assert_eq!(seq_cache, par_cache, "fn-cache diverged at edit {edit}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
