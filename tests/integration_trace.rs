//! Golden-trace suite for the observability layer: exported build traces
//! must be well-formed Chrome trace JSON with strictly nested spans, carry
//! every pass execution exactly once (tagged active/dormant/skipped), and
//! be **byte-identical** across repeated runs and across `--jobs 1` vs
//! `--jobs 8`. The metrics registry must agree with every numeric field of
//! the JSON report, the report must match its pinned schema, and — the
//! no-observer-effect property — enabling tracing and metrics must change
//! no build output (images, persisted state, cache, rebuild decisions)
//! over random edit scripts. Tests prefixed `quick_` form the CI smoke
//! subset.

use proptest::prelude::*;
use sfcc::{Compiler, Config};
use sfcc_backend::image::to_bytes;
use sfcc_buildsys::{validate_report_json, BuildReport, Builder, Project};
use sfcc_trace::json::{self, Value};
use sfcc_trace::validate_chrome_trace;
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfcc-it-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn three_module_project() -> Project {
    let mut p = Project::new();
    p.set_file(
        "base".into(),
        "fn g(x: int) -> int { return x * 2 + 1; }".into(),
    );
    p.set_file(
        "lib".into(),
        "import base;\nfn f(x: int) -> int { return base::g(x) + 3; }".into(),
    );
    p.set_file(
        "main".into(),
        "import lib;\nfn main(n: int) -> int { return lib::f(n); }".into(),
    );
    p
}

fn traced_builder(jobs: usize) -> Builder {
    Builder::new(Compiler::new(Config::stateless().with_jobs(jobs)))
        .with_jobs(jobs)
        .with_tracing()
}

fn chrome_json(report: &BuildReport) -> String {
    report
        .trace
        .as_ref()
        .expect("a traced build records a trace")
        .to_chrome_json(false)
}

#[test]
fn quick_trace_is_wellformed_and_strictly_nested() {
    let mut builder = traced_builder(2);
    let report = builder.build(&three_module_project()).unwrap();
    let text = chrome_json(&report);
    let summary = validate_chrome_trace(&text).expect("exported trace must validate");
    // The full hierarchy is present: build > wave > module > phase >
    // function > pass.
    assert_eq!(summary.max_depth, 6, "unexpected hierarchy: {summary:?}");
    assert!(summary.complete > 0, "no spans recorded");
    assert!(summary.instants > 0, "no query instants recorded");
    assert!(summary.pass_events > 0, "no pass spans recorded");
    // Wall-clock must be absent from the deterministic export, present in
    // the annotated one.
    assert!(!text.contains("wall_ns"));
    assert!(report
        .trace
        .as_ref()
        .unwrap()
        .to_chrome_json(true)
        .contains("wall_ns"));
}

/// Every pass execution of the build appears in the trace exactly once,
/// tagged with its outcome; the tag totals equal the report's.
#[test]
fn quick_every_pass_execution_appears_exactly_once_tagged() {
    let mut builder = traced_builder(1);
    let report = builder.build(&three_module_project()).unwrap();
    let recorded: usize = report
        .modules
        .iter()
        .filter_map(|m| m.output.as_ref())
        .flat_map(|out| out.trace.functions.iter())
        .map(|f| f.records.len())
        .sum();
    let (active, dormant, skipped) = report.outcome_totals();

    let doc = json::parse(&chrome_json(&report)).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
    let mut tags = (0usize, 0usize, 0usize);
    let mut pass_events = 0usize;
    for ev in events {
        if ev.get("cat").and_then(Value::as_str) != Some("pass") {
            continue;
        }
        pass_events += 1;
        let outcome = ev
            .get("args")
            .and_then(|a| a.get("outcome"))
            .and_then(Value::as_str)
            .expect("every pass span is tagged with its outcome");
        match outcome {
            "active" => tags.0 += 1,
            "dormant" => tags.1 += 1,
            "skipped" => tags.2 += 1,
            other => panic!("unknown outcome tag {other:?}"),
        }
    }
    assert_eq!(
        pass_events, recorded,
        "pass executions must appear exactly once"
    );
    assert_eq!(tags, (active, dormant, skipped));
}

/// The golden property: exported trace bytes are identical across repeated
/// cold runs, across `--jobs 1` vs `--jobs 8`, and across warm incremental
/// rebuilds of the same edit.
#[test]
fn trace_bytes_identical_across_jobs_and_runs() {
    let p = three_module_project();
    let mut seq = traced_builder(1);
    let mut par = traced_builder(8);
    let cold_seq = chrome_json(&seq.build(&p).unwrap());
    let cold_par = chrome_json(&par.build(&p).unwrap());
    assert_eq!(
        cold_seq, cold_par,
        "cold trace diverged between jobs 1 and 8"
    );

    // A second cold run from a fresh builder reproduces the same bytes.
    let rerun = chrome_json(&traced_builder(1).build(&p).unwrap());
    assert_eq!(cold_seq, rerun, "cold trace not reproducible across runs");

    // A warm incremental rebuild (query hits, partial recompilation) must
    // also be jobs-independent.
    let mut edited = three_module_project();
    edited.set_file(
        "base".into(),
        "fn g(x: int) -> int { return x * 5 + 1; }".into(),
    );
    let warm_seq = chrome_json(&seq.build(&edited).unwrap());
    let warm_par = chrome_json(&par.build(&edited).unwrap());
    assert_eq!(
        warm_seq, warm_par,
        "warm trace diverged between jobs 1 and 8"
    );
    assert_ne!(cold_seq, warm_seq, "warm trace should differ from cold");
    // The warm trace records cache-hit demand instants.
    assert!(warm_seq.contains("\"hit\":true"));
}

#[test]
fn quick_report_json_matches_pinned_schema() {
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    let report = builder.build(&three_module_project()).unwrap();
    let text = report.to_json();
    validate_report_json(&text).expect("report must match its schema");

    // Schema drift is an error, not a silent pass: a renamed key, a
    // missing block, and invalid JSON are all rejected.
    let renamed = text.replace("\"metrics\":", "\"telemetry\":");
    assert!(validate_report_json(&renamed).is_err());
    assert!(validate_report_json("{}").is_err());
    assert!(validate_report_json("not json").is_err());
}

/// Consistency: every numeric field the JSON report prints equals the
/// matching metrics-registry value — the registry is the single source.
#[test]
fn quick_report_numerics_equal_metrics_registry() {
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    let p = three_module_project();
    builder.build(&p).unwrap();
    // Second build with one edit: mixes hits, misses, and dormancy.
    let mut edited = three_module_project();
    edited.set_file(
        "base".into(),
        "fn g(x: int) -> int { return x * 7 + 1; }".into(),
    );
    let report = builder.build(&edited).unwrap();
    let doc = json::parse(&report.to_json()).unwrap();
    let metrics = &report.metrics;

    let field = |v: &Value, path: &[&str]| -> u64 {
        let mut cur = v.clone();
        for key in path {
            cur = cur
                .get(key)
                .unwrap_or_else(|| panic!("missing {path:?}"))
                .clone();
        }
        cur.as_u64()
            .unwrap_or_else(|| panic!("{path:?} not a number"))
    };
    let check = |json_value: u64, metric: &str| {
        assert_eq!(
            Some(json_value),
            metrics.scalar(metric),
            "report field disagrees with registry metric {metric:?}"
        );
    };

    check(field(&doc, &["wall_ns"]), "build.wall_ns");
    check(field(&doc, &["link_ns"]), "build.link_ns");
    check(field(&doc, &["compile_ns"]), "build.compile_ns");
    check(field(&doc, &["rebuilt_count"]), "build.rebuilt_count");
    check(field(&doc, &["jobs"]), "build.jobs");
    for outcome in ["active", "dormant", "skipped"] {
        check(
            field(&doc, &["outcomes", outcome]),
            &format!("outcomes.{outcome}"),
        );
    }
    check(field(&doc, &["query", "hits"]), "query.hits");
    check(field(&doc, &["query", "misses"]), "query.misses");
    check(
        field(&doc, &["recovery", "recovered_files"]),
        "recovery.recovered_files",
    );
    for row in doc.get("pass_profile").and_then(Value::as_arr).unwrap() {
        let pass = row.get("pass").and_then(Value::as_str).unwrap();
        check(field(row, &["total_ns"]), &format!("pass.{pass}.total_ns"));
        check(field(row, &["runs"]), &format!("pass.{pass}.runs"));
        check(field(row, &["skipped"]), &format!("pass.{pass}.skipped"));
    }
    for row in doc.get("slowest_slots").and_then(Value::as_arr).unwrap() {
        let slot = field(row, &["slot"]);
        check(field(row, &["total_ns"]), &format!("slot.{slot}.total_ns"));
        check(field(row, &["runs"]), &format!("slot.{slot}.runs"));
    }
    for module in doc.get("modules").and_then(Value::as_arr).unwrap() {
        if module.get("timings_ns").is_none() {
            continue;
        }
        let name = module.get("name").and_then(Value::as_str).unwrap();
        for (json_key, metric_key) in [
            ("frontend", "frontend_ns"),
            ("lower", "lower_ns"),
            ("middle", "middle_ns"),
            ("backend", "backend_ns"),
            ("state", "state_ns"),
        ] {
            check(
                field(module, &["timings_ns", json_key]),
                &format!("module.{name}.{metric_key}"),
            );
        }
        check(
            field(module, &["optimize_ns"]),
            &format!("module.{name}.optimize_ns"),
        );
        for outcome in ["active", "dormant", "skipped"] {
            check(
                field(module, &["outcomes", outcome]),
                &format!("module.{name}.{outcome}"),
            );
        }
    }
}

/// A stateful builder with the function cache on, persisting under
/// `dir/<tag>.state`.
fn stateful_builder(dir: &Path, tag: &str, traced: bool) -> Builder {
    let config = Config::stateful()
        .with_state_path(dir.join(format!("{tag}.state")))
        .with_function_cache()
        .with_jobs(2);
    let builder = Builder::new(Compiler::new(config)).with_jobs(2);
    if traced {
        builder.with_tracing()
    } else {
        builder
    }
}

/// Persisted dormancy-state and function-cache bytes, via the commit
/// manifest.
fn persisted_bytes(builder: &Builder, dir: &Path, tag: &str) -> (Vec<u8>, Vec<u8>) {
    builder.compiler().save_state().unwrap();
    let cd = sfcc_faultfs::CommitDir::new(&dir.join(format!("{tag}.state")));
    let m = cd.read_manifest().unwrap().unwrap();
    let state = cd.load_entry(m.entry("state").unwrap()).unwrap();
    let cache = cd.load_entry(m.entry("ircache").unwrap()).unwrap();
    (state, cache)
}

/// Everything a build decided, minus the telemetry block and wall times.
#[derive(Debug, PartialEq)]
struct Decisions {
    rebuilt: Vec<(String, bool)>,
    outcomes: (usize, usize, usize),
    hits: u64,
    misses: u64,
    executed: Vec<String>,
    cost_units: u64,
}

fn decisions(report: &BuildReport) -> Decisions {
    Decisions {
        rebuilt: report
            .modules
            .iter()
            .map(|m| (m.name.clone(), m.rebuilt))
            .collect(),
        outcomes: report.outcome_totals(),
        hits: report.query.hits,
        misses: report.query.misses,
        executed: report.query.executed.clone(),
        cost_units: report.executed_cost_units(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// No observer effect: a traced builder and an untraced builder
    /// replaying the same random edit script produce byte-identical
    /// images, state files, and cache files, and identical build
    /// decisions (rebuild flags, query stats, pass outcomes).
    #[test]
    fn tracing_changes_no_build_output(seed in any::<u64>()) {
        let dir = scratch_dir(&format!("prop-{}", seed % 1000));
        let config = GeneratorConfig::small(seed % 1000);
        let mut model = generate_model(&config);
        let mut script = EditScript::new(seed ^ 0x51ed_2701_89ab_cdef);

        let mut plain = stateful_builder(&dir, "plain", false);
        let mut traced = stateful_builder(&dir, "traced", true);

        for commit in 0..4usize {
            if commit > 0 {
                script.commit(&mut model);
            }
            let p = model.render();
            let plain_report = plain.build(&p).unwrap();
            let traced_report = traced.build(&p).unwrap();

            prop_assert!(plain_report.trace.is_none());
            prop_assert!(traced_report.trace.is_some());
            prop_assert_eq!(
                to_bytes(&plain_report.program),
                to_bytes(&traced_report.program),
                "image diverged at commit {}", commit
            );
            prop_assert_eq!(
                decisions(&plain_report),
                decisions(&traced_report),
                "build decisions diverged at commit {}", commit
            );
            let (plain_state, plain_cache) = persisted_bytes(&plain, &dir, "plain");
            let (traced_state, traced_cache) = persisted_bytes(&traced, &dir, "traced");
            prop_assert_eq!(plain_state, traced_state, "state diverged at commit {}", commit);
            prop_assert_eq!(plain_cache, traced_cache, "fn-cache diverged at commit {}", commit);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
