//! Differential correctness harness for the warm build daemon.
//!
//! The daemon's whole value is serving builds from memory — engine,
//! function cache, CAS handle, and per-function dormancy stamps resident —
//! so the thing to prove is that *warmth never changes an answer*. The
//! suite holds warm serves to three differentials:
//!
//! 1. **Warm daemon ≡ warm in-process oracle, byte for byte.** An oracle
//!    [`Builder`] replays the same edit script with the same durable-op
//!    sequence as the daemon's session. Image, dormancy-state, IR-cache
//!    bytes, and the report's rebuild decisions must all match after every
//!    commit — across `--jobs` values and across separate-but-equivalent
//!    CAS stores.
//! 2. **Warm daemon ≡ cold CLI sessions on outputs.** A fresh-builder cold
//!    session (one `minicc build --stateful --fn-cache` equivalent) of the
//!    same tree must produce the identical image, and a cold session must
//!    *accept* the daemon's state directory as-is (zero recovered files).
//!    Full state-byte identity is deliberately not asserted here: a cold
//!    build re-executes every function task and ingests fresh traces into
//!    the dormancy bookkeeping, while a warm engine validates without
//!    ingesting — same decisions, different history counters.
//! 3. **Across kill + restart.** A restarted daemon starts a fresh engine
//!    over the committed snapshot, exactly like a cold build does — so
//!    there the *full* byte identity (state and cache included) must hold
//!    against a cold lineage forked from the same snapshot.
//!
//! Concurrency, admission control (typed busy/timeout, queue bounds),
//! session confinement, flag-keyed session recycling, protocol rejection,
//! and warm depcheck audits (clean serves, seeded frozen-stamp lie caught)
//! ride along. Tests prefixed `quick_` form the `ci.sh --quick` subset.

use sfcc::{Compiler, Config, Durability};
use sfcc_buildsys::serve::BuildService;
use sfcc_buildsys::{BuildReport, Builder, DepMutations, Project};
use sfcc_daemon::{
    roundtrip, Daemon, DaemonHandle, DaemonOptions, ErrorKind, Reply, Request, Service,
};
use sfcc_faultfs::CommitDir;
use sfcc_trace::json;
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

// ─── scratch + project plumbing ───

fn tmproot(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfcc-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(dir: &Path) {
    let _ = fs::remove_dir_all(dir);
}

/// Writes `p` as the complete tree at `dir` (stale `.mc` modules removed —
/// `write_to_dir` alone would leave deleted modules behind).
fn write_tree(dir: &Path, p: &Project) {
    fs::create_dir_all(dir).unwrap();
    for dirent in fs::read_dir(dir).unwrap() {
        let path = dirent.unwrap().path();
        if path.extension().is_some_and(|e| e == "mc") {
            fs::remove_file(&path).unwrap();
        }
    }
    p.write_to_dir(dir).unwrap();
}

fn fixture(files: &[(&str, &str)]) -> Project {
    let mut p = Project::new();
    for (name, src) in files {
        p.set_file((*name).to_string(), (*src).to_string());
    }
    p
}

fn fixture_v1() -> Project {
    fixture(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

fn fixture_v2() -> Project {
    fixture(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 3; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for dirent in fs::read_dir(src).unwrap() {
        let dirent = dirent.unwrap();
        let to = dst.join(dirent.file_name());
        if dirent.path().is_dir() {
            copy_tree(&dirent.path(), &to);
        } else {
            fs::copy(dirent.path(), &to).unwrap();
        }
    }
}

// ─── daemon plumbing ───

fn start_daemon(root: &Path, configure: impl FnOnce(&mut DaemonOptions)) -> DaemonHandle {
    start_daemon_with(root, configure, BuildService::factory())
}

fn start_daemon_with(
    root: &Path,
    configure: impl FnOnce(&mut DaemonOptions),
    factory: sfcc_daemon::ServiceFactory,
) -> DaemonHandle {
    let mut options = DaemonOptions::new(root);
    options.socket = root.join("daemon.sock");
    configure(&mut options);
    Daemon::bind(options, factory).expect("bind daemon").spawn()
}

const WARM_FLAGS: &[&str] = &["--stateful", "--fn-cache"];

fn args_of(base: &[&str], extra: &[String]) -> Vec<String> {
    base.iter()
        .map(|s| s.to_string())
        .chain(extra.iter().cloned())
        .collect()
}

fn request(cmd: &str, dir: &Path, args: &[String]) -> Request {
    Request {
        cmd: cmd.to_string(),
        dir: Some(dir.display().to_string()),
        module: None,
        out: None,
        args: args.to_vec(),
        prog_args: Vec::new(),
    }
}

fn must_ok(socket: &Path, req: &Request) -> Reply {
    let reply = roundtrip(socket, req).expect("daemon transport");
    assert!(reply.ok, "request `{}` failed: {}", req.cmd, reply.raw);
    reply
}

fn must_err(socket: &Path, req: &Request) -> (ErrorKind, String) {
    let reply = roundtrip(socket, req).expect("daemon transport");
    assert!(
        !reply.ok,
        "request `{}` unexpectedly ok: {}",
        req.cmd, reply.raw
    );
    reply.error.expect("failed replies carry a typed error")
}

// ─── artifacts + oracle ───

/// Every byte a build leaves behind, plus the report's decision fields
/// (wall-clock excluded — it is the one legitimately nondeterministic
/// report field).
#[derive(PartialEq, Debug)]
struct Artifacts {
    image: Vec<u8>,
    state: Vec<u8>,
    cache: Vec<u8>,
    decisions: String,
}

fn image_path(dir: &Path) -> PathBuf {
    dir.with_extension("sbx")
}

/// The rebuild decisions of the persisted report: per-module rebuilt
/// flags, pass-outcome totals, query hit/miss counts, state generation.
fn decisions(dir: &Path) -> String {
    let text = fs::read_to_string(dir.join(".sfcc-report.json")).unwrap();
    let doc = json::parse(&text).unwrap();
    let mut out = String::new();
    for module in doc.get("modules").unwrap().as_arr().unwrap() {
        out.push_str(&format!(
            "{}={};",
            module.get("name").unwrap().as_str().unwrap(),
            module.get("rebuilt").unwrap().as_bool().unwrap(),
        ));
    }
    let query = doc.get("query").unwrap();
    out.push_str(&format!(
        "gen={};hits={};misses={}",
        doc.get("state_generation").unwrap().as_u64().unwrap(),
        query.get("hits").unwrap().as_u64().unwrap(),
        query.get("misses").unwrap().as_u64().unwrap(),
    ));
    out
}

fn artifacts(dir: &Path) -> Artifacts {
    let cd = CommitDir::new(&dir.join(".sfcc-state"));
    let manifest = cd.read_manifest().unwrap().expect("committed manifest");
    Artifacts {
        image: fs::read(image_path(dir)).unwrap(),
        state: cd.load_entry(manifest.entry("state").unwrap()).unwrap(),
        cache: cd.load_entry(manifest.entry("ircache").unwrap()).unwrap(),
        decisions: decisions(dir),
    }
}

fn warm_config(dir: &Path, jobs: usize, cas: Option<&Path>) -> Config {
    let mut config = Config::stateful()
        .with_state_path(dir.join(".sfcc-state"))
        .with_function_cache()
        .with_jobs(jobs);
    if let Some(cas) = cas {
        config = config.with_cas_path(cas.to_path_buf());
    }
    config
}

/// The in-process warm oracle: a persistent [`Builder`] replaying the
/// daemon session's exact durable-op sequence (build → save state → write
/// report → write image) against its own project directory.
struct Oracle {
    dir: PathBuf,
    builder: Builder,
}

impl Oracle {
    fn new(dir: &Path, jobs: usize, cas: Option<&Path>) -> Oracle {
        Oracle {
            dir: dir.to_path_buf(),
            builder: Builder::new(Compiler::new(warm_config(dir, jobs, cas))).with_jobs(jobs),
        }
    }

    fn build(&mut self) -> Artifacts {
        let p = Project::from_dir(&self.dir).unwrap();
        let mut report = self.builder.build(&p).unwrap();
        report.state_generation = self.builder.compiler().save_state().unwrap();
        fs::write(self.dir.join(".sfcc-report.json"), report.to_json()).unwrap();
        sfcc_backend::image::save_with(&report.program, &image_path(&self.dir), Durability::Fast)
            .unwrap();
        artifacts(&self.dir)
    }
}

/// One *cold* session: a fresh builder, engine empty — the in-process
/// equivalent of one `minicc build --stateful --fn-cache` invocation.
fn cold_session(dir: &Path, jobs: usize) -> BuildReport {
    let mut builder = Builder::new(Compiler::new(warm_config(dir, jobs, None))).with_jobs(jobs);
    let p = Project::from_dir(dir).unwrap();
    let mut report = builder.build(&p).unwrap();
    report.state_generation = builder.compiler().save_state().unwrap();
    fs::write(dir.join(".sfcc-report.json"), report.to_json()).unwrap();
    sfcc_backend::image::save_with(&report.program, &image_path(dir), Durability::Fast).unwrap();
    report
}

/// Drives `commits` edit-script steps against a warm daemon and the warm
/// oracle simultaneously, asserting full byte identity after every commit.
fn differential_run(tag: &str, seed: u64, jobs: usize, commits: usize, cas: bool) {
    let root = tmproot(tag);
    let warm_dir = root.join("warm");
    let oracle_dir = root.join("oracle");
    let (warm_cas, oracle_cas) = if cas {
        (Some(root.join("cas-warm")), Some(root.join("cas-oracle")))
    } else {
        (None, None)
    };

    let mut model = generate_model(&GeneratorConfig::small(seed));
    let mut script = EditScript::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    write_tree(&warm_dir, &model.render());
    write_tree(&oracle_dir, &model.render());

    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    let mut extra = Vec::new();
    if let Some(cas) = &warm_cas {
        extra.push("--cas".to_string());
        extra.push(cas.display().to_string());
    }
    extra.push("--jobs".to_string());
    extra.push(jobs.to_string());
    let args = args_of(WARM_FLAGS, &extra);
    let mut oracle = Oracle::new(&oracle_dir, jobs, oracle_cas.as_deref());

    for commit in 0..=commits {
        if commit > 0 {
            script.commit(&mut model);
            let p = model.render();
            write_tree(&warm_dir, &p);
            write_tree(&oracle_dir, &p);
        }
        must_ok(&socket, &request("build", &warm_dir, &args));
        let warm = artifacts(&warm_dir);
        let want = oracle.build();
        assert_eq!(
            warm.image, want.image,
            "commit {commit}: warm image diverges from oracle (seed {seed}, jobs {jobs})"
        );
        assert_eq!(
            warm.state, want.state,
            "commit {commit}: warm dormancy state diverges (seed {seed}, jobs {jobs})"
        );
        assert_eq!(
            warm.cache, want.cache,
            "commit {commit}: warm IR cache diverges (seed {seed}, jobs {jobs})"
        );
        assert_eq!(
            warm.decisions, want.decisions,
            "commit {commit}: warm rebuild decisions diverge (seed {seed}, jobs {jobs})"
        );
    }

    // The warm `ir` serve must match the oracle's store-reassembled IR.
    let module = "main";
    let mut ir_req = request("ir", &warm_dir, &args);
    ir_req.module = Some(module.to_string());
    let reply = must_ok(&socket, &ir_req);
    let warm_ir = reply
        .body
        .get("ir")
        .and_then(|v| v.as_str())
        .expect("ir reply carries text")
        .to_string();
    let oracle_ir = sfcc_ir::module_to_string(&oracle.builder.module_ir(module).unwrap());
    // Both sides build once more inside the comparison window; rebuild the
    // oracle first so its store is as fresh as the daemon's.
    assert_eq!(warm_ir, oracle_ir, "warm ir serve diverges (seed {seed})");

    handle.shutdown();
    cleanup(&root);
}

// ─── 1. warm vs oracle byte identity ───

#[test]
fn quick_warm_daemon_matches_warm_oracle_byte_for_byte() {
    differential_run("oracle-q", 7, 1, 3, false);
}

#[test]
fn warm_daemon_matches_oracle_across_jobs_and_seeds() {
    for seed in [11, 12] {
        for jobs in [1, 8] {
            differential_run(&format!("oracle-{seed}-{jobs}"), seed, jobs, 5, false);
        }
    }
}

#[test]
fn warm_daemon_matches_oracle_with_cas_warm_stores() {
    differential_run("oracle-cas", 21, 2, 4, true);
}

// ─── 2. warm vs cold CLI sessions ───

#[test]
fn quick_cold_build_accepts_warm_daemon_state_dir() {
    let root = tmproot("cold-accept");
    let warm_dir = root.join("warm");
    let mut model = generate_model(&GeneratorConfig::small(3));
    let mut script = EditScript::new(99);
    write_tree(&warm_dir, &model.render());

    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    let args = args_of(WARM_FLAGS, &[]);
    for _ in 0..3 {
        must_ok(&socket, &request("build", &warm_dir, &args));
        script.commit(&mut model);
        write_tree(&warm_dir, &model.render());
    }
    must_ok(&socket, &request("build", &warm_dir, &args));
    let warm = artifacts(&warm_dir);
    handle.shutdown();

    // Fork the daemon's on-disk world and run a cold session over it: the
    // state dir must be accepted as-is (nothing recovered, nothing
    // quarantined) and the image must come out byte-identical.
    let cold_dir = root.join("cold");
    copy_tree(&warm_dir, &cold_dir);
    let report = cold_session(&cold_dir, 1);
    assert_eq!(
        report.recovered_files, 0,
        "cold build rejected the daemon's state dir"
    );
    assert!(report.quarantined.is_empty());
    let cold = artifacts(&cold_dir);
    assert_eq!(
        warm.image, cold.image,
        "cold rebuild of the daemon's tree produced a different image"
    );
    cleanup(&root);
}

#[test]
fn warm_run_serve_matches_cold_vm_results() {
    let root = tmproot("run-diff");
    let warm_dir = root.join("warm");
    let cold_dir = root.join("cold");
    write_tree(&warm_dir, &fixture_v1());
    write_tree(&cold_dir, &fixture_v1());

    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    let args = args_of(WARM_FLAGS, &[]);
    for (version, expected) in [(fixture_v1(), 43), (fixture_v2(), 45)] {
        write_tree(&warm_dir, &version);
        write_tree(&cold_dir, &version);
        let mut run_req = request("run", &warm_dir, &args);
        run_req.prog_args = vec![21];
        let reply = must_ok(&socket, &run_req);
        let warm_result = match reply.body.get("return") {
            Some(json::Value::Num(n)) => *n as i64,
            other => panic!("run reply carries no return value: {other:?}"),
        };
        let report = cold_session(&cold_dir, 1);
        let cold_out = sfcc_backend::run(
            &report.program,
            "main.main",
            &[21],
            sfcc_backend::VmOptions::default(),
        )
        .unwrap();
        assert_eq!(warm_result, expected);
        assert_eq!(cold_out.return_value, Some(expected));
    }
    handle.shutdown();
    cleanup(&root);
}

// ─── 3. kill + restart ───

#[test]
fn quick_restarted_daemon_first_build_matches_cold_lineage() {
    let root = tmproot("restart");
    let warm_dir = root.join("warm");
    let mut model = generate_model(&GeneratorConfig::small(17));
    let mut script = EditScript::new(17);
    write_tree(&warm_dir, &model.render());

    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    let args = args_of(WARM_FLAGS, &[]);
    must_ok(&socket, &request("build", &warm_dir, &args));
    script.commit(&mut model);
    write_tree(&warm_dir, &model.render());
    must_ok(&socket, &request("build", &warm_dir, &args));
    // Kill the daemon (graceful path; the crash matrix in
    // integration_crash.rs covers mid-commit kills op by op).
    handle.shutdown();

    // Fork the committed snapshot into a cold lineage, apply the same next
    // edit to both, and compare the restarted daemon's first build against
    // the cold session byte for byte: both start a fresh engine over the
    // identical snapshot, so even the dormancy-history bytes must agree.
    let cold_dir = root.join("cold");
    copy_tree(&warm_dir, &cold_dir);
    fs::copy(image_path(&warm_dir), image_path(&cold_dir)).unwrap();
    script.commit(&mut model);
    let p = model.render();
    write_tree(&warm_dir, &p);
    write_tree(&cold_dir, &p);

    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    must_ok(&socket, &request("build", &warm_dir, &args));
    let warm = artifacts(&warm_dir);
    cold_session(&cold_dir, 1);
    let cold = artifacts(&cold_dir);
    assert_eq!(warm.image, cold.image, "restart: image diverges from cold");
    assert_eq!(
        warm.state, cold.state,
        "restart: dormancy state diverges from cold"
    );
    assert_eq!(
        warm.cache, cold.cache,
        "restart: IR cache diverges from cold"
    );
    assert_eq!(
        warm.decisions, cold.decisions,
        "restart: rebuild decisions diverge from cold"
    );
    handle.shutdown();
    cleanup(&root);
}

// ─── concurrency + admission control ───

#[test]
fn concurrent_clients_on_distinct_projects_never_bleed() {
    let root = tmproot("conc");
    let handle = start_daemon(&root, |options| {
        options.max_active = 2;
        options.max_queued = 32;
    });
    let socket = handle.socket();
    let args = args_of(WARM_FLAGS, &[]);

    let threads: Vec<_> = (0..3)
        .map(|i| {
            let root = root.clone();
            let socket = socket.clone();
            let args = args.clone();
            std::thread::spawn(move || {
                let warm_dir = root.join(format!("warm{i}"));
                let oracle_dir = root.join(format!("oracle{i}"));
                let mut model = generate_model(&GeneratorConfig::small(31 + i));
                let mut script = EditScript::new(100 + i);
                let mut oracle = Oracle::new(&oracle_dir, 1, None);
                for commit in 0..3 {
                    script.commit(&mut model);
                    let p = model.render();
                    write_tree(&warm_dir, &p);
                    write_tree(&oracle_dir, &p);
                    let mut req = request("build", &warm_dir, &args);
                    req.args.push("--jobs".to_string());
                    req.args.push("1".to_string());
                    must_ok(&socket, &req);
                    let warm = artifacts(&warm_dir);
                    let want = oracle.build();
                    assert_eq!(
                        warm, want,
                        "client {i} commit {commit}: warm serve diverged — cross-session bleed?"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
    cleanup(&root);
}

/// A service that sleeps, for driving the admission gate deterministically.
struct Sleepy(Duration);

impl Service for Sleepy {
    fn handle(&mut self, _request: &Request) -> Result<String, String> {
        std::thread::sleep(self.0);
        Ok("\"slept\":true".to_string())
    }
    fn snapshot(&mut self) -> Result<(), String> {
        Ok(())
    }
}

#[test]
fn quick_overload_returns_typed_busy_and_timeout_never_hangs() {
    let root = tmproot("overload");
    for i in 0..3 {
        fs::create_dir_all(root.join(format!("p{i}"))).unwrap();
    }
    let handle = start_daemon_with(
        &root,
        |options| {
            options.max_active = 1;
            options.max_queued = 1;
            options.request_timeout = Duration::from_millis(300);
        },
        Box::new(|_, _| Ok(Box::new(Sleepy(Duration::from_millis(900))))),
    );
    let socket = handle.socket();

    // Occupy the single worker slot...
    let holder = {
        let socket = socket.clone();
        let root = root.clone();
        std::thread::spawn(move || must_ok(&socket, &request("build", &root.join("p0"), &[])))
    };
    std::thread::sleep(Duration::from_millis(150));
    // ...then fill the one queue slot with a request that must time out...
    let queued = {
        let socket = socket.clone();
        let root = root.clone();
        std::thread::spawn(move || must_err(&socket, &request("build", &root.join("p1"), &[])))
    };
    std::thread::sleep(Duration::from_millis(100));
    // ...and overflow: the third concurrent request is rejected instantly.
    let started = std::time::Instant::now();
    let (kind, message) = must_err(&socket, &request("build", &root.join("p2"), &[]));
    assert_eq!(
        kind,
        ErrorKind::Busy,
        "overflow must be a typed busy: {message}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "busy rejection must be immediate, not a hang"
    );
    let (kind, message) = queued.join().unwrap();
    assert_eq!(
        kind,
        ErrorKind::Timeout,
        "queued request must surface a typed timeout: {message}"
    );
    holder.join().unwrap();

    let stats = must_ok(&socket, &Request::bare("stats"));
    let daemon = stats.body.get("daemon").unwrap();
    assert!(daemon.get("busy").unwrap().as_u64().unwrap() >= 1);
    assert!(daemon.get("timeouts").unwrap().as_u64().unwrap() >= 1);
    handle.shutdown();
    cleanup(&root);
}

#[test]
fn quick_projects_outside_the_root_are_rejected_typed() {
    let root = tmproot("confine");
    let outside = tmproot("confine-outside");
    write_tree(&outside.join("p"), &fixture_v1());
    let handle = start_daemon(&root, |_| {});
    let (kind, _) = must_err(
        &handle.socket(),
        &request("build", &outside.join("p"), &args_of(WARM_FLAGS, &[])),
    );
    assert_eq!(kind, ErrorKind::OutsideRoot);
    handle.shutdown();
    cleanup(&root);
    cleanup(&outside);
}

#[test]
fn sessions_recycle_cleanly_when_flags_change() {
    let root = tmproot("recycle");
    let dir = root.join("p");
    write_tree(&dir, &fixture_v1());
    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    must_ok(&socket, &request("build", &dir, &args_of(WARM_FLAGS, &[])));
    // Different flag signature → the session snapshots and restarts cold;
    // the serve must still succeed and leave consistent artifacts.
    let o1 = args_of(&["--stateful", "--fn-cache", "-O1"], &[]);
    must_ok(&socket, &request("build", &dir, &o1));
    let stats = must_ok(&socket, &Request::bare("stats"));
    let created = stats
        .body
        .get("daemon")
        .unwrap()
        .get("sessions_created")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        created >= 2,
        "flag change must recycle the session, got {created}"
    );
    let _ = artifacts(&dir);
    handle.shutdown();
    cleanup(&root);
}

// ─── protocol rejection (in-process; the CLI contract rides in
//     crates/buildsys/tests/cli.rs) ───

#[test]
fn quick_malformed_requests_get_typed_errors_not_hangs() {
    use std::io::Write as _;
    let root = tmproot("malformed");
    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();

    // Valid frame, invalid JSON.
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    sfcc_daemon::protocol::write_frame(&mut stream, b"not json").unwrap();
    let payload = sfcc_daemon::protocol::read_frame(&mut stream)
        .unwrap()
        .unwrap();
    let reply = Reply::parse(String::from_utf8(payload).unwrap()).unwrap();
    assert_eq!(reply.error.unwrap().0, ErrorKind::Malformed);

    // Valid JSON, unknown command.
    let (kind, _) = must_err(&socket, &Request::bare("frobnicate"));
    assert_eq!(kind, ErrorKind::Malformed);

    // Hostile length prefix: rejected before allocation, connection closed.
    let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let answer = sfcc_daemon::protocol::read_frame(&mut stream).unwrap();
    if let Some(payload) = answer {
        let reply = Reply::parse(String::from_utf8(payload).unwrap()).unwrap();
        assert_eq!(reply.error.unwrap().0, ErrorKind::Malformed);
    }

    // The daemon survives all of the above.
    must_ok(&socket, &Request::bare("ping"));
    handle.shutdown();
    cleanup(&root);
}

// ─── warm depcheck audits ───

#[test]
fn quick_warm_depcheck_is_clean_and_a_frozen_stamp_lie_is_caught() {
    // Honest daemon: warm serves audit clean.
    let root = tmproot("depcheck-clean");
    let dir = root.join("p");
    write_tree(&dir, &fixture_v1());
    let handle = start_daemon(&root, |_| {});
    let socket = handle.socket();
    let args = args_of(WARM_FLAGS, &[]);
    must_ok(&socket, &request("build", &dir, &args));
    write_tree(&dir, &fixture_v2());
    must_ok(&socket, &request("build", &dir, &args));
    let reply = must_ok(&socket, &request("depcheck", &dir, &args));
    assert_eq!(
        reply.body.get("clean").and_then(|v| v.as_bool()),
        Some(true),
        "warm serves must audit clean: {}",
        reply.raw
    );
    handle.shutdown();
    cleanup(&root);

    // Lying daemon: a frozen source stamp makes the engine serve stale
    // results after an edit; the warm depcheck audit must catch it.
    let root = tmproot("depcheck-lie");
    let dir = root.join("p");
    write_tree(&dir, &fixture_v1());
    let handle = start_daemon_with(
        &root,
        |_| {},
        Box::new(|dir, args| {
            Ok(Box::new(BuildService::new_with(
                dir,
                args,
                DepMutations::new().freeze_stamp("src:lib"),
            )?))
        }),
    );
    let socket = handle.socket();
    let args = args_of(WARM_FLAGS, &[]);
    must_ok(&socket, &request("build", &dir, &args));
    write_tree(&dir, &fixture_v2());
    let reply = must_ok(&socket, &request("depcheck", &dir, &args));
    assert_eq!(
        reply.body.get("clean").and_then(|v| v.as_bool()),
        Some(false),
        "the frozen-stamp lie escaped the warm audit: {}",
        reply.raw
    );
    handle.shutdown();
    cleanup(&root);
}
