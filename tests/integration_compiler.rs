//! Cross-crate integration tests: front end → driver → backend → VM.

use sfcc::{Compiler, Config, Mode, OptLevel, SkipPolicy};
use sfcc_backend::{link_objects, run, CodeObject, VmOptions};
use sfcc_frontend::ModuleEnv;

fn run_main(object: &CodeObject, args: &[i64]) -> i64 {
    let program = link_objects(std::slice::from_ref(object)).unwrap();
    run(&program, "main.main", args, VmOptions::default())
        .unwrap()
        .return_value
        .unwrap()
}

#[test]
fn whole_program_compiles_and_runs() {
    let src = "
const SCALE: int = 3;
fn tri(n: int) -> int {
    let s: int = 0;
    for (let i: int = 1; i <= n; i = i + 1) { s = s + i; }
    return s;
}
fn main(n: int) -> int { return tri(n) * SCALE; }";
    let mut compiler = Compiler::new(Config::stateless().with_verification());
    let out = compiler.compile("main", src, &ModuleEnv::new()).unwrap();
    assert_eq!(run_main(&out.object, &[4]), 30);
    assert_eq!(run_main(&out.object, &[0]), 0);
}

#[test]
fn o0_and_o2_agree_on_observable_behaviour() {
    let src = "
fn collatz_steps(n: int) -> int {
    let x: int = n;
    let steps: int = 0;
    while (x != 1) {
        if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
        steps = steps + 1;
        print(x);
    }
    return steps;
}
fn main(n: int) -> int { return collatz_steps(n + 1); }";
    let mut o0 = Compiler::new(
        Config::stateless()
            .with_opt_level(OptLevel::O0)
            .with_verification(),
    );
    let mut o2 = Compiler::new(Config::stateless().with_verification());
    let slow = o0.compile("main", src, &ModuleEnv::new()).unwrap();
    let fast = o2.compile("main", src, &ModuleEnv::new()).unwrap();
    for n in [1, 5, 11, 26] {
        let pa = link_objects(std::slice::from_ref(&slow.object)).unwrap();
        let pb = link_objects(std::slice::from_ref(&fast.object)).unwrap();
        let ra = run(&pa, "main.main", &[n], VmOptions::default()).unwrap();
        let rb = run(&pb, "main.main", &[n], VmOptions::default()).unwrap();
        assert_eq!(ra.prints, rb.prints, "n={n}");
        assert_eq!(ra.return_value, rb.return_value, "n={n}");
        assert!(rb.executed <= ra.executed, "O2 should not be slower: n={n}");
    }
}

#[test]
fn every_skip_policy_preserves_behaviour() {
    let v1 = "
fn mix(a: int, b: int) -> int { return (a ^ b) * 3 + (a & b); }
fn main(n: int) -> int {
    let acc: int = 0;
    for (let i: int = 0; i < n; i = i + 1) { acc = acc + mix(i, n); }
    return acc;
}";
    let v2 = v1.replace("* 3", "* 5");
    let env = ModuleEnv::new();

    let mut reference = Compiler::new(Config::stateless().with_verification());
    let want = reference.compile("main", &v2, &env).unwrap();

    for policy in [
        SkipPolicy::PreviousBuild,
        SkipPolicy::Consecutive(2),
        SkipPolicy::AlwaysSkipKnown,
    ] {
        let mut c = Compiler::new(Config::stateless().with_policy(policy).with_verification());
        c.compile("main", v1, &env).unwrap();
        c.compile("main", v1, &env).unwrap(); // build streaks
        let got = c.compile("main", &v2, &env).unwrap();
        for n in [0, 3, 9] {
            assert_eq!(
                run_main(&got.object, &[n]),
                run_main(&want.object, &[n]),
                "policy {policy:?}, n={n}"
            );
        }
    }
}

#[test]
fn batch_compilation_matches_sequential() {
    let sources: Vec<(String, String)> = (0..6)
        .map(|i| {
            (
                format!("mod{i}"),
                format!("fn f(x: int) -> int {{ return x * {} + {i}; }}", i + 2),
            )
        })
        .collect();
    let env = ModuleEnv::new();

    let mut seq = Compiler::new(Config::stateful().with_verification());
    let seq_outs: Vec<_> = sources
        .iter()
        .map(|(name, src)| seq.compile(name, src, &env).unwrap())
        .collect();

    let mut par = Compiler::new(Config::stateful().with_verification());
    let units: Vec<(&str, &str, &ModuleEnv)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str(), &env))
        .collect();
    let par_outs = par.compile_batch(&units, true);

    for (a, b) in seq_outs.iter().zip(&par_outs) {
        let b = b.as_ref().unwrap();
        assert_eq!(a.object, b.object, "objects must be identical");
    }
    assert_eq!(
        seq.state().function_count(),
        par.state().function_count(),
        "both sessions tracked the same functions"
    );
}

#[test]
fn mode_reporting_is_accurate() {
    let c = Compiler::new(Config::stateful());
    assert!(c.config().mode.is_stateful());
    assert_eq!(c.config().mode, Mode::Stateful(SkipPolicy::PreviousBuild));
    let c = Compiler::new(Config::stateless());
    assert!(!c.config().mode.is_stateful());
}

#[test]
fn skipping_never_fires_for_changed_signatures() {
    // Renaming a function breaks the name-keyed record chain: the renamed
    // function is "new" and must run everything.
    let v1 =
        "fn helper(x: int) -> int { return x + 1; }\nfn main(n: int) -> int { return helper(n); }";
    let v2 =
        "fn assist(x: int) -> int { return x + 1; }\nfn main(n: int) -> int { return assist(n); }";
    let env = ModuleEnv::new();
    let mut c = Compiler::new(Config::stateful().with_verification());
    c.compile("main", v1, &env).unwrap();
    let out = c.compile("main", v2, &env).unwrap();
    // `main` changed (callee name) and may skip; `assist` is new and may not.
    let assist = out
        .trace
        .functions
        .iter()
        .find(|f| f.function == "assist")
        .unwrap();
    assert_eq!(
        assist.count(sfcc_passes::PassOutcome::Skipped),
        0,
        "new function must not inherit skips"
    );
}

#[test]
fn deep_recursion_is_contained() {
    let src = "
fn down(n: int) -> int {
    if (n <= 0) { return 0; }
    return down(n - 1) + 1;
}
fn main(n: int) -> int { return down(n); }";
    let mut c = Compiler::new(Config::stateless().with_verification());
    let out = c.compile("main", src, &ModuleEnv::new()).unwrap();
    let program = link_objects(std::slice::from_ref(&out.object)).unwrap();
    // Within limits it works…
    let ok = run(&program, "main.main", &[100], VmOptions::default()).unwrap();
    assert_eq!(ok.return_value, Some(100));
    // …and beyond the depth limit it fails cleanly instead of crashing.
    let err = run(&program, "main.main", &[100_000], VmOptions::default()).unwrap_err();
    assert!(matches!(err, sfcc_backend::VmError::StackOverflow));
}
