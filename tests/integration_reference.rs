//! The strongest correctness anchor in the repository: generated projects
//! executed by the *reference interpreter* (tree-walking, AST-level, shares
//! nothing with the backend) must behave identically to the fully
//! compiled, optimized, stateful pipeline.

use sfcc::{Compiler, Config, OptLevel, SkipPolicy};
use sfcc_backend::{run as vm_run, VmError, VmOptions};
use sfcc_buildsys::{Builder, DepGraph};
use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv, ModuleInterface};
use sfcc_refinterp::{Machine, RefError, RefOptions};
use sfcc_workload::{generate_model, EditScript, GeneratorConfig, ProjectModel};

/// Type-checks a rendered project into a reference machine.
fn reference_machine(model: &ProjectModel) -> Machine {
    let project = model.render();
    let graph = DepGraph::build(&project).expect("generated projects have clean graphs");
    let mut env = ModuleEnv::new();
    let mut checked_modules = Vec::new();
    for name in graph.topo_order() {
        let mut diags = Diagnostics::new();
        let checked = parse_and_check(name, project.file(name).unwrap(), &env, &mut diags)
            .expect("generated modules are valid");
        env.insert(name.clone(), ModuleInterface::of(&checked.ast));
        checked_modules.push(checked);
    }
    Machine::new(checked_modules)
}

/// Compares one run: reference vs VM, including trap kinds.
fn compare(machine: &Machine, report: &sfcc_buildsys::BuildReport, arg: i64, ctx: &str) {
    let want = machine.run("main", "main", &[arg], RefOptions::default());
    let got = vm_run(&report.program, "main.main", &[arg], VmOptions::default());
    match (want, got) {
        (Ok(want), Ok(got)) => {
            assert_eq!(want.prints, got.prints, "{ctx}, arg {arg}");
            assert_eq!(want.return_value, got.return_value, "{ctx}, arg {arg}");
        }
        (Err(re), Err(ve)) => {
            // Trap kinds must correspond.
            let matches = matches!(
                (&re, &ve),
                (RefError::ArithmeticTrap, VmError::ArithmeticTrap)
                    | (RefError::OutOfBounds { .. }, VmError::OutOfBounds { .. })
                    | (RefError::StackOverflow, VmError::StackOverflow)
                    | (RefError::OutOfFuel, VmError::OutOfFuel)
            );
            assert!(matches, "{ctx}, arg {arg}: ref {re:?} vs vm {ve:?}");
        }
        (want, got) => panic!("{ctx}, arg {arg}: ref {want:?} vs vm {got:?}"),
    }
}

#[test]
fn reference_matches_compiled_across_seeds_and_levels() {
    for seed in [11u64, 22, 33, 44] {
        let model = generate_model(&GeneratorConfig::small(seed));
        let machine = reference_machine(&model);
        for (label, cfg) in [
            ("O0", Config::stateless().with_opt_level(OptLevel::O0)),
            ("O1", Config::stateless().with_opt_level(OptLevel::O1)),
            ("O2", Config::stateless()),
        ] {
            let mut builder = Builder::new(Compiler::new(cfg));
            let report = builder.build(&model.render()).unwrap();
            for arg in [0, 5, 19] {
                compare(&machine, &report, arg, &format!("seed {seed}, {label}"));
            }
        }
    }
}

#[test]
fn reference_matches_stateful_pipeline_through_history() {
    let config = GeneratorConfig::small(606);
    let mut model = generate_model(&config);
    let mut script = EditScript::new(17);
    let mut builder = Builder::new(Compiler::new(
        Config::stateless()
            .with_policy(SkipPolicy::PreviousBuild)
            .with_function_cache(),
    ));
    builder.build(&model.render()).unwrap();

    for commit in 1..=8 {
        script.commit(&mut model);
        let report = builder.build(&model.render()).unwrap();
        let machine = reference_machine(&model);
        for arg in [1, 8] {
            compare(&machine, &report, arg, &format!("commit {commit}"));
        }
    }
}

#[test]
fn reference_matches_medium_project() {
    let model = generate_model(&GeneratorConfig::medium(77));
    let machine = reference_machine(&model);
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    let report = builder.build(&model.render()).unwrap();
    for arg in [0, 3, 13, 42] {
        compare(&machine, &report, arg, "medium");
    }
}
