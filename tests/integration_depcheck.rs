//! Dependency-soundness matrix for `depcheck`.
//!
//! The invariant under test: **the incremental engine's declared
//! dependencies and the build's actual resource accesses agree, and any
//! disagreement is flagged before the byte-identity oracle can tell the
//! difference**. Clean builds — sequential, parallel, stateful, and the
//! committed demo project — must produce zero findings; every seeded lie
//! (`DepMutations`) must produce exactly the expected finding with task and
//! resource provenance; a frozen input stamp must surface as a stale serve
//! on the very build whose output went wrong.

use sfcc::{Compiler, Config};
use sfcc_backend::{run, VmOptions};
use sfcc_buildsys::{
    validate_report_json, Builder, DepFindingKind, DepMutations, DepcheckReport, Project,
};

fn project(files: &[(&str, &str)]) -> Project {
    let mut p = Project::new();
    for (name, src) in files {
        p.set_file((*name).to_string(), (*src).to_string());
    }
    p
}

/// Three modules exercising every task kind: per-module imports, interface,
/// frontend, lower, optimize, codegen, plus the singleton graph and link.
fn project_v1() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

/// `project_v1` with `base` edited — main.main(21) becomes 64 instead of 43.
fn project_v2() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 3; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

/// One cold depcheck-instrumented build of `project_v1` with `mutations`
/// injected, returning its analysis.
fn depcheck_build(mutations: DepMutations) -> DepcheckReport {
    let mut builder = Builder::new(Compiler::new(Config::stateless()))
        .with_depcheck()
        .with_dep_mutations(mutations);
    let report = builder.build(&project_v1()).unwrap();
    report.depcheck.expect("depcheck was enabled")
}

#[test]
fn quick_clean_build_has_zero_findings_cold_and_warm() {
    let mut builder = Builder::new(Compiler::new(Config::stateless())).with_depcheck();
    let p = project_v1();

    // Cold: every task kind executes and its declared inputs must match its
    // accesses exactly.
    let cold = builder.build(&p).unwrap().depcheck.unwrap();
    assert!(
        cold.is_clean(),
        "cold build must be clean:\n{}",
        cold.render()
    );
    assert!(cold.tasks_checked > 0, "the audit must have seen tasks");
    assert!(cold.accesses > 0, "the audit must have seen accesses");

    // Warm no-op: nothing executes; every store-served task passes the
    // stamp audit.
    let warm = builder.build(&p).unwrap().depcheck.unwrap();
    assert!(
        warm.is_clean(),
        "warm build must be clean:\n{}",
        warm.render()
    );
    assert!(warm.tasks_checked > 0, "served tasks must still be audited");
}

#[test]
fn clean_parallel_stateful_build_has_zero_findings() {
    // Task attribution must survive the work-stealing pool and the stateful
    // skip/cache machinery: same zero-findings bar with jobs=4, dormancy
    // skipping, and the function cache all on.
    let config = Config::stateful().with_function_cache();
    let mut builder = Builder::new(Compiler::new(config))
        .with_depcheck()
        .with_jobs(4);
    let p = project_v1();
    for label in ["cold", "warm"] {
        let dc = builder.build(&p).unwrap().depcheck.unwrap();
        assert!(
            dc.is_clean(),
            "{label} parallel stateful build must be clean:\n{}",
            dc.render()
        );
    }
}

#[test]
fn committed_demo_project_depchecks_clean() {
    // The acceptance bar for `minicc depcheck demo`, as a test: cold build
    // plus no-op rebuild of the hand-written demo project, zero findings.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../demo");
    let p = Project::from_dir(&dir).expect("demo directory exists");
    let mut builder = Builder::new(Compiler::new(Config::stateless())).with_depcheck();
    let mut merged = builder.build(&p).unwrap().depcheck.unwrap();
    merged.merge(builder.build(&p).unwrap().depcheck.unwrap());
    assert!(
        merged.is_clean(),
        "demo project must depcheck clean:\n{}",
        merged.render()
    );
}

#[test]
fn quick_seeded_missing_dep_is_caught_for_every_task_kind() {
    // Input-carrying tasks lie by *dropping* a declaration they need. In
    // the function-grained taxonomy the raw inputs are per-module source
    // (imports, parse), the manifest (graph), and the *per-function*
    // dormancy stamp (optimizefn).
    let dropped = [
        ("imports(base)", "src:base"),
        ("parse(base)", "src:base"),
        ("graph", "manifest"),
        ("optimizefn(base::g)", "state:base::g"),
    ];
    for (task, input) in dropped {
        let dc = depcheck_build(DepMutations::new().drop_dep(task, input));
        assert_eq!(
            dc.findings.len(),
            1,
            "dropping {input} from {task} must yield exactly one finding:\n{}",
            dc.render()
        );
        let f = &dc.findings[0];
        assert_eq!(f.kind, DepFindingKind::MissingDep, "{task}");
        assert_eq!(f.task, task);
        assert_eq!(f.resource, input);
    }

    // ...input-free tasks (the derivation chain from parse to link declares
    // only Task deps) lie by *accessing* a resource they never declare —
    // including every per-function kind.
    let ghosts = [
        ("interface(base)", "ghost:iface"),
        ("modcheck(base)", "ghost:level"),
        ("fnast(base::g)", "ghost:ast"),
        ("signature(base::g)", "ghost:sig"),
        ("checkfn(base::g)", "ghost:checked"),
        ("lowerfn(base::g)", "ghost:ir"),
        ("codegen(base)", "ghost:obj"),
        ("link", "ghost:image"),
    ];
    for (task, resource) in ghosts {
        let dc = depcheck_build(DepMutations::new().phantom_access(task, resource));
        assert_eq!(
            dc.findings.len(),
            1,
            "phantom access {resource} by {task} must yield exactly one finding:\n{}",
            dc.render()
        );
        let f = &dc.findings[0];
        assert_eq!(f.kind, DepFindingKind::MissingDep, "{task}");
        assert_eq!(f.task, task);
        assert_eq!(f.resource, resource);
    }
}

#[test]
fn quick_seeded_redundant_dep_is_caught_for_every_task_kind() {
    let tasks = [
        "imports(base)",
        "parse(base)",
        "interface(base)",
        "graph",
        "modcheck(base)",
        "fnast(base::g)",
        "signature(base::g)",
        "checkfn(base::g)",
        "lowerfn(base::g)",
        "optimizefn(base::g)",
        "codegen(base)",
        "link",
    ];
    for task in tasks {
        let dc = depcheck_build(DepMutations::new().phantom_dep(task, "phantom:seeded"));
        assert_eq!(
            dc.findings.len(),
            1,
            "phantom dep on {task} must yield exactly one finding:\n{}",
            dc.render()
        );
        let f = &dc.findings[0];
        assert_eq!(f.kind, DepFindingKind::RedundantDep, "{task}");
        assert_eq!(f.task, task);
        assert_eq!(f.resource, "phantom:seeded");
    }
}

#[test]
fn frozen_stamp_surfaces_as_stale_serve_on_the_wrong_build() {
    // A frozen input stamp is the canonical silent wrong build: the edit to
    // `base` never invalidates its dependents, so the store serves the old
    // program. Depcheck must flag the stale serve on exactly the build whose
    // bytes went wrong.
    let mut lying = Builder::new(Compiler::new(Config::stateless()))
        .with_depcheck()
        .with_dep_mutations(DepMutations::new().freeze_stamp("src:base"));
    let mut honest = Builder::new(Compiler::new(Config::stateless()));

    // Build 1: the frozen stamp equals the raw stamp, so nothing is stale
    // yet and the audit is clean.
    let first = lying.build(&project_v1()).unwrap();
    assert!(first.depcheck.unwrap().is_clean());

    // Build 2 after the edit: invalidation is suppressed.
    let stale = lying.build(&project_v2()).unwrap();
    let dc = stale.depcheck.unwrap();
    assert!(
        dc.count(DepFindingKind::StaleServe) > 0,
        "suppressed invalidation must surface as stale serves:\n{}",
        dc.render()
    );
    assert!(
        dc.findings
            .iter()
            .all(|f| f.kind == DepFindingKind::StaleServe && f.resource == "src:base"),
        "every finding must point at the frozen input:\n{}",
        dc.render()
    );

    // The flagged build really is wrong: it still computes v1's answer
    // while an honest build of v2 computes the new one.
    let lied = run(&stale.program, "main.main", &[21], VmOptions::default()).unwrap();
    assert_eq!(
        lied.return_value,
        Some(43),
        "the stale serve kept v1's output"
    );
    let truth = honest.build(&project_v2()).unwrap();
    let out = run(&truth.program, "main.main", &[21], VmOptions::default()).unwrap();
    assert_eq!(out.return_value, Some(64));
}

#[test]
fn quick_depcheck_counters_always_present_in_report_json() {
    // Satellite regression: the depcheck block must exist — zeroed, not
    // absent — on reports from builds that never enabled the audit, so
    // `validate_report_json` holds on every exit path.
    let mut plain = Builder::new(Compiler::new(Config::stateless()));
    let report = plain.build(&project_v1()).unwrap();
    let json = report.to_json();
    validate_report_json(&json).expect("plain report must match the schema");
    assert!(
        json.contains("\"depcheck\":{\"enabled\":false,\"missing\":0,\"redundant\":0,"),
        "{json}"
    );

    // And with the audit on plus seeded findings, the same schema holds and
    // the findings serialize with full provenance.
    let mut audited = Builder::new(Compiler::new(Config::stateless()))
        .with_depcheck()
        .with_dep_mutations(DepMutations::new().drop_dep("graph", "manifest"));
    let report = audited.build(&project_v1()).unwrap();
    let json = report.to_json();
    validate_report_json(&json).expect("audited report must match the schema");
    assert!(
        json.contains("\"depcheck\":{\"enabled\":true,\"missing\":1,"),
        "{json}"
    );
    assert!(
        json.contains("{\"kind\":\"missing-dep\",\"task\":\"graph\",\"resource\":\"manifest\","),
        "{json}"
    );
}

#[test]
fn recovery_build_report_json_still_validates() {
    // The other error path of satellite 3: a build that recovers from
    // quarantined state must still emit schema-valid JSON with both the
    // recovery counters and the (zeroed) depcheck block present.
    let dir = std::env::temp_dir().join(format!(
        "sfcc-depcheck-recovery-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join(".sfcc-state");
    std::fs::write(&state, b"garbage, not a state file").unwrap();

    let config = Config::stateful().with_state_path(&state);
    let mut builder = Builder::new(Compiler::new(config));
    let report = builder.build(&project_v1()).unwrap();
    assert!(
        report.recovered_files > 0,
        "the garbage state must quarantine"
    );
    let json = report.to_json();
    validate_report_json(&json).expect("recovery report must match the schema");
    assert!(
        json.contains("\"recovery\":{\"recovered_files\":"),
        "{json}"
    );
    assert!(json.contains("\"depcheck\":{\"enabled\":false,"), "{json}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quick_cas_enabled_audit_stays_clean_cold_and_warm() {
    // Satellite: the shared artifact store routes every read and write
    // through its own task scope, and serves are audited via the
    // `cas:module::function` stamp channel — so attaching a store must
    // never cost a finding: not untracked I/O on the cold (publishing)
    // build, not a stale serve on the warm (fully served) one.
    let dir = std::env::temp_dir().join(format!(
        "sfcc-depcheck-cas-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let config = || Config::stateless().with_cas_path(&dir);
    let mut cold = Builder::new(Compiler::new(config())).with_depcheck();
    let dc = cold.build(&project_v1()).unwrap().depcheck.unwrap();
    assert!(
        dc.is_clean(),
        "publishing through the store must stay clean:\n{}",
        dc.render()
    );

    // A fresh builder over the warm store: every function is served from
    // the shared store and the serve stamps must all audit honest.
    let mut warm = Builder::new(Compiler::new(config())).with_depcheck();
    let dc = warm.build(&project_v1()).unwrap().depcheck.unwrap();
    assert!(
        dc.is_clean(),
        "store-served build must stay clean:\n{}",
        dc.render()
    );
    let stats = warm.compiler().cas_stats().unwrap();
    assert!(
        stats.hits > 0,
        "the warm build must actually be served: {stats:?}"
    );

    // The report's cas block reflects the serves and still validates.
    let report = Builder::new(Compiler::new(config()))
        .build(&project_v1())
        .unwrap();
    let json = report.to_json();
    validate_report_json(&json).unwrap();
    assert!(
        json.contains("\"cas\":{\"enabled\":true,\"hits\":"),
        "{json}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quick_rogue_io_outside_any_dependency_channel_is_flagged() {
    // Untracked-I/O regression seed: a task that touches the durable I/O
    // layer on a path no dependency channel tracks must be flagged, with
    // the task and path in the finding. This pins the audit that exempts
    // the store's own scope — the exemption must not widen past `cas`.
    let tasks = ["link", "codegen(base)", "optimizefn(base::g)"];
    for task in tasks {
        let dc =
            depcheck_build(DepMutations::new().rogue_io(task, "/nonexistent/sfcc-rogue-probe"));
        assert_eq!(
            dc.findings.len(),
            1,
            "rogue I/O by {task} must yield exactly one finding:\n{}",
            dc.render()
        );
        let f = &dc.findings[0];
        assert_eq!(f.kind, DepFindingKind::UntrackedIo, "{task}");
        assert_eq!(f.task, task);
        assert!(
            f.resource.contains("sfcc-rogue-probe"),
            "the finding must name the path: {f:?}"
        );
    }
}
