//! The soundness property at the heart of the reproduction, exercised at
//! scale: replaying an entire commit history, the stateful compiler's
//! programs behave exactly like the stateless compiler's on every commit.

use sfcc::{Compiler, Config, SkipPolicy};
use sfcc_backend::{run, VmOptions};
use sfcc_buildsys::Builder;
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};

/// Replays `commits` commits, checking behavioural equivalence of the two
/// compilers' outputs after every single build.
fn check_history(config: GeneratorConfig, edit_seed: u64, commits: usize) {
    let mut model_a = generate_model(&config);
    let mut script_a = EditScript::new(edit_seed);
    let mut baseline = Builder::new(Compiler::new(Config::stateless()));

    let mut model_b = generate_model(&config);
    let mut script_b = EditScript::new(edit_seed);
    let mut stateful = Builder::new(Compiler::new(
        Config::stateless().with_policy(SkipPolicy::PreviousBuild),
    ));

    let mut total_skipped = 0usize;
    for n in 0..=commits {
        if n > 0 {
            script_a.commit(&mut model_a);
            script_b.commit(&mut model_b);
        }
        let ra = baseline.build(&model_a.render()).unwrap();
        let rb = stateful.build(&model_b.render()).unwrap();
        total_skipped += rb.outcome_totals().2;

        for arg in [0, 2, 9] {
            let oa = run(&ra.program, "main.main", &[arg], VmOptions::default());
            let ob = run(&rb.program, "main.main", &[arg], VmOptions::default());
            match (oa, ob) {
                (Ok(oa), Ok(ob)) => {
                    assert_eq!(oa.prints, ob.prints, "commit {n}, arg {arg}");
                    assert_eq!(oa.return_value, ob.return_value, "commit {n}, arg {arg}");
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "commit {n}, arg {arg}"),
                (a, b) => panic!("divergence at commit {n}, arg {arg}: {a:?} vs {b:?}"),
            }
        }
    }
    assert!(
        total_skipped > 0,
        "the stateful compiler never skipped anything"
    );
}

#[test]
fn equivalence_small_project_long_history() {
    check_history(GeneratorConfig::small(101), 11, 15);
}

#[test]
fn equivalence_second_seed() {
    check_history(GeneratorConfig::small(202), 13, 12);
}

#[test]
fn equivalence_call_heavy() {
    let mut config = GeneratorConfig::small(303);
    config.callees_per_function = (2, 5);
    check_history(config, 17, 10);
}

#[test]
fn equivalence_under_rewrite_heavy_edits() {
    // Rewrites maximize dormancy-prediction misses; behaviour must still
    // be identical (mispredictions cost quality, never correctness).
    let config = GeneratorConfig::small(404);
    let mut model_a = generate_model(&config);
    let mut model_b = generate_model(&config);
    let mut sa = EditScript::only(5, sfcc_workload::EditKind::RewriteBody);
    let mut sb = EditScript::only(5, sfcc_workload::EditKind::RewriteBody);

    let mut baseline = Builder::new(Compiler::new(Config::stateless()));
    let mut stateful = Builder::new(Compiler::new(
        Config::stateless().with_policy(SkipPolicy::PreviousBuild),
    ));
    baseline.build(&model_a.render()).unwrap();
    stateful.build(&model_b.render()).unwrap();

    for n in 1..=8 {
        sa.commit(&mut model_a);
        sb.commit(&mut model_b);
        let ra = baseline.build(&model_a.render()).unwrap();
        let rb = stateful.build(&model_b.render()).unwrap();
        let oa = run(&ra.program, "main.main", &[6], VmOptions::default()).unwrap();
        let ob = run(&rb.program, "main.main", &[6], VmOptions::default()).unwrap();
        assert_eq!(oa.prints, ob.prints, "commit {n}");
        assert_eq!(oa.return_value, ob.return_value, "commit {n}");
    }
}

#[test]
fn quality_gap_stays_bounded() {
    // Even with skipping, dynamic cost should stay close to the baseline's.
    let config = GeneratorConfig::small(505);
    let mut model_a = generate_model(&config);
    let mut model_b = generate_model(&config);
    let mut sa = EditScript::new(19);
    let mut sb = EditScript::new(19);

    let mut baseline = Builder::new(Compiler::new(Config::stateless()));
    let mut stateful = Builder::new(Compiler::new(
        Config::stateless().with_policy(SkipPolicy::PreviousBuild),
    ));
    baseline.build(&model_a.render()).unwrap();
    stateful.build(&model_b.render()).unwrap();
    for _ in 0..10 {
        sa.commit(&mut model_a);
        sb.commit(&mut model_b);
    }
    let ra = baseline.build(&model_a.render()).unwrap();
    let rb = stateful.build(&model_b.render()).unwrap();
    let oa = run(&ra.program, "main.main", &[9], VmOptions::default()).unwrap();
    let ob = run(&rb.program, "main.main", &[9], VmOptions::default()).unwrap();
    let gap = (ob.executed as f64 - oa.executed as f64) / oa.executed.max(1) as f64;
    assert!(
        gap < 0.10,
        "quality gap too large: {gap:.3} ({} vs {})",
        oa.executed,
        ob.executed
    );
}
