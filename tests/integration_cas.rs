//! Soundness matrix for the shared content-addressed artifact store
//! (`sfcc-cas`).
//!
//! The invariant under test: **a shared store may only ever change *where*
//! optimized IR comes from, never *what* it is**. Two distinct projects
//! built under identical configuration hit each other's artifacts
//! byte-identically; any single key component changed — function
//! fingerprint, pass pipeline, flag digest, backend version — forces a
//! miss; a seeded key-dropping lie (`DepMutations::drop_flag_from_key`)
//! produces a stale serve that depcheck flags on the very build it
//! happens; racing builders from separate processes never corrupt the
//! store; eviction under a tight budget costs recompiles, never wrong
//! hits; and a crash at every durable op during a publish leaves the store
//! fsck-clean. Tests prefixed `quick_` form the `ci.sh --quick` sweep.

use sfcc::{Compiler, Config};
use sfcc_backend::{disasm_program, run, VmOptions};
use sfcc_buildsys::{
    validate_report_json, BuildReport, Builder, DepFindingKind, DepMutations, Project,
};
use sfcc_faultfs::{self as ffs, Fault, FaultPlan};
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sfcc-cas-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(dir: &Path) {
    let _ = fs::remove_dir_all(dir);
}

fn project(files: &[(&str, &str)]) -> Project {
    let mut p = Project::new();
    for (name, src) in files {
        p.set_file((*name).to_string(), (*src).to_string());
    }
    p
}

/// Three modules, one function each: the canonical fixture.
fn project_v1() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

/// A *different* project that shares `base` (and its one function) with
/// `project_v1` verbatim but has its own entry point.
fn project_other() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "main",
            "import base;\nfn main(n: int) -> int { return base::g(n) + 7; }",
        ),
    ])
}

/// `project_v1` with `base` edited: every function fingerprint downstream
/// of `g` changes.
fn project_v1_edit() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2 + 5; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

/// Builds `p` with a fresh compiler under `config`, returning the builder
/// (for stats) and the report.
fn build(config: Config, p: &Project, jobs: usize) -> (Builder, BuildReport) {
    let mut builder = Builder::new(Compiler::new(config)).with_jobs(jobs);
    let report = builder.build(p).unwrap();
    (builder, report)
}

/// The byte-level identity of a build: the disassembly of the linked
/// program, which covers every function body the store could have served.
fn fingerprint_of(report: &BuildReport) -> String {
    disasm_program(&report.program)
}

fn main_of(report: &BuildReport, arg: i64) -> i64 {
    run(&report.program, "main.main", &[arg], VmOptions::default())
        .unwrap()
        .return_value
        .unwrap()
}

// ---------------------------------------------------------------------------
// Cross-project sharing
// ---------------------------------------------------------------------------

#[test]
fn quick_two_projects_share_artifacts_byte_identically() {
    let store = tmpdir("share");

    // Reference: `project_other` built with no store attached.
    let (_, reference) = build(
        Config::stateless().with_function_cache(),
        &project_other(),
        1,
    );

    // Project A warms the store.
    let (a, _) = build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    let stats = a.compiler().cas_stats().unwrap();
    assert!(stats.publishes > 0, "a cold build must publish: {stats:?}");
    assert_eq!(stats.hits, 0, "{stats:?}");

    // Project B — a different project sharing `base::g` — hits A's artifact.
    let (b, report) = build(
        Config::stateless().with_cas_path(&store),
        &project_other(),
        1,
    );
    let stats = b.compiler().cas_stats().unwrap();
    assert!(
        stats.hits > 0,
        "the shared function must hit across projects: {stats:?}"
    );

    // The served artifact must be invisible at the byte level.
    assert_eq!(fingerprint_of(&report), fingerprint_of(&reference));
    assert_eq!(main_of(&report, 21), 49);

    // The store itself must audit sound: nothing quarantined, manifest
    // intact. Replaced-generation debris (shared commits never GC; see
    // `CommitDir::commit_shared`) is swept on the first pass, after which
    // the audit must be fully clean.
    let fsck = sfcc_cas::fsck(&store).unwrap();
    assert!(
        fsck.quarantined.is_empty() && !fsck.repaired_manifest,
        "{fsck:?}"
    );
    assert!(sfcc_cas::fsck(&store).unwrap().clean());
    cleanup(&store);
}

#[test]
fn quick_same_project_full_hit_on_second_session() {
    let store = tmpdir("rehit");
    let (_, first) = build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    let (b, second) = build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    let stats = b.compiler().cas_stats().unwrap();
    assert_eq!(
        stats.misses, 0,
        "a warm store must serve everything: {stats:?}"
    );
    assert!(stats.hits >= 3, "{stats:?}");
    assert_eq!(stats.publishes, 0, "nothing new to publish: {stats:?}");
    assert_eq!(fingerprint_of(&first), fingerprint_of(&second));
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Key discipline: every component changed forces a miss
// ---------------------------------------------------------------------------

#[test]
fn quick_every_key_component_forces_a_miss() {
    let store = tmpdir("keymiss");
    build(Config::stateless().with_cas_path(&store), &project_v1(), 1);

    // (fn) Edited source: the edited function's fingerprint changes, so it
    // must miss and republish. Its unchanged dependents keep their context
    // fingerprints (fine-grained cutoff) and legitimately still hit — the
    // oracle is byte-identity with a store-free build of the edit.
    let (_, reference) = build(
        Config::stateless().with_function_cache(),
        &project_v1_edit(),
        1,
    );
    let (c, report) = build(
        Config::stateless().with_cas_path(&store),
        &project_v1_edit(),
        1,
    );
    let stats = c.compiler().cas_stats().unwrap();
    assert!(stats.misses >= 1, "the edited fn must miss: {stats:?}");
    assert!(
        stats.publishes >= 1,
        "the edited fn must republish: {stats:?}"
    );
    assert_eq!(fingerprint_of(&report), fingerprint_of(&reference));

    // Each remaining component gets a fresh store so the previous probe's
    // publishes cannot mask it.
    for (label, config) in [
        (
            "pipeline",
            Config::stateless()
                .with_cas_path(&store)
                .with_opt_level(sfcc::OptLevel::O1),
        ),
        (
            "flags",
            Config::stateless()
                .with_cas_path(&store)
                .with_verification(),
        ),
        (
            "backend",
            Config::stateless()
                .with_cas_path(&store)
                .with_cas_backend_version(2),
        ),
    ] {
        let (c, _) = build(config, &project_v1(), 1);
        let stats = c.compiler().cas_stats().unwrap();
        assert_eq!(
            stats.hits, 0,
            "component `{label}` must key the store: {stats:?}"
        );
        assert!(stats.misses > 0, "component `{label}`: {stats:?}");
    }

    // Control: the matching configuration still hits.
    let (c, _) = build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    assert!(c.compiler().cas_stats().unwrap().hits >= 3);
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

#[test]
fn quick_report_schema_pins_the_cas_block() {
    let store = tmpdir("schema");
    let (_, with_cas) = build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    let json = with_cas.to_json();
    validate_report_json(&json).unwrap();
    assert!(
        json.contains("\"cas\":{\"enabled\":true"),
        "an attached store must surface in the report: {json}"
    );

    // Without a store the block is present, zeroed, and still validates.
    let (_, without) = build(Config::stateless(), &project_v1(), 1);
    let json = without.to_json();
    validate_report_json(&json).unwrap();
    assert!(json.contains("\"cas\":{\"enabled\":false"));
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Seeded key-dropping lies: depcheck flags the stale serve (satellite 1)
// ---------------------------------------------------------------------------

/// Seeds the store through a builder whose key derivation drops
/// `component`, then rebuilds under a configuration differing only in that
/// component (or, for `fn`, the same configuration — dropping the function
/// fingerprint already makes distinct functions collide). The under-keyed
/// lookup cross-serves, and the depcheck stamp audit must flag it as a
/// stale serve on that very build.
fn stale_serve_matrix(component: &str, seed_config: Config, probe_config: Config) {
    let store = tmpdir(&format!("lie-{component}"));
    let drops = DepMutations::new().drop_flag_from_key(component);

    let mut seeder = Builder::new(Compiler::new(seed_config.with_cas_path(&store)))
        .with_dep_mutations(drops.clone());
    seeder.build(&project_v1()).unwrap();

    let mut probe = Builder::new(Compiler::new(probe_config.with_cas_path(&store)))
        .with_depcheck()
        .with_dep_mutations(drops);
    let report = probe.build(&project_v1()).unwrap();
    let stats = probe.compiler().cas_stats().unwrap();
    assert!(
        stats.hits > 0,
        "the under-keyed store must cross-serve for `{component}`: {stats:?}"
    );
    let depcheck = report.depcheck.expect("depcheck was enabled");
    let stale: Vec<_> = depcheck
        .findings
        .iter()
        .filter(|f| f.kind == DepFindingKind::StaleServe && f.resource.starts_with("cas:"))
        .collect();
    assert!(
        !stale.is_empty(),
        "dropping `{component}` from the key must surface as a stale serve, got:\n{}",
        depcheck.render()
    );
    cleanup(&store);
}

#[test]
fn quick_dropped_fn_component_is_flagged_as_stale_serve() {
    // Same configuration both sides: with the function fingerprint dropped,
    // `base::g`, `lib::f`, and `main::main` all collide on one key.
    stale_serve_matrix("fn", Config::stateless(), Config::stateless());
}

#[test]
fn dropped_pipeline_component_is_flagged_as_stale_serve() {
    stale_serve_matrix(
        "pipeline",
        Config::stateless(),
        Config::stateless().with_opt_level(sfcc::OptLevel::O1),
    );
}

#[test]
fn dropped_flags_component_is_flagged_as_stale_serve() {
    stale_serve_matrix(
        "flags",
        Config::stateless(),
        Config::stateless().with_verification(),
    );
}

#[test]
fn dropped_backend_component_is_flagged_as_stale_serve() {
    stale_serve_matrix(
        "backend",
        Config::stateless(),
        Config::stateless().with_cas_backend_version(2),
    );
}

#[test]
fn honest_keys_survive_the_same_depcheck_audit() {
    // Control for the matrix above: the same differing-configuration
    // rebuild *without* the key-dropping lie misses instead of
    // cross-serving, and the audit stays clean.
    let store = tmpdir("honest");
    build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    let mut probe = Builder::new(Compiler::new(
        Config::stateless()
            .with_cas_path(&store)
            .with_opt_level(sfcc::OptLevel::O1),
    ))
    .with_depcheck();
    let report = probe.build(&project_v1()).unwrap();
    assert_eq!(probe.compiler().cas_stats().unwrap().hits, 0);
    let depcheck = report.depcheck.unwrap();
    assert!(depcheck.is_clean(), "{}", depcheck.render());
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Concurrent multi-process access
// ---------------------------------------------------------------------------

/// Hidden worker: one racing builder process. Gated on `SFCC_CAS_RACE_DIR`
/// so a normal test run passes through it instantly; the race test below
/// re-execs this binary with the variable set.
#[test]
fn race_worker_entry() {
    let Ok(store) = std::env::var("SFCC_CAS_RACE_DIR") else {
        return;
    };
    let seed: u64 = std::env::var("SFCC_CAS_RACE_SEED")
        .unwrap()
        .parse()
        .unwrap();
    // Alternate project shapes so publishes and hits race each other.
    let p = if seed.is_multiple_of(2) {
        project_v1()
    } else {
        project_other()
    };
    let (_, report) = build(
        Config::stateless().with_cas_path(PathBuf::from(&store)),
        &p,
        2,
    );
    let expected = if seed.is_multiple_of(2) { 43 } else { 49 };
    assert_eq!(main_of(&report, 21), expected);
}

#[test]
fn racing_builder_processes_never_corrupt_the_store() {
    let store = tmpdir("race");
    let exe = std::env::current_exe().unwrap();
    let children: Vec<_> = (0..4u64)
        .map(|seed| {
            std::process::Command::new(&exe)
                .args(["race_worker_entry", "--exact", "--test-threads=1"])
                .env("SFCC_CAS_RACE_DIR", &store)
                .env("SFCC_CAS_RACE_SEED", seed.to_string())
                .spawn()
                .unwrap()
        })
        .collect();
    for mut child in children {
        let status = child.wait().unwrap();
        assert!(status.success(), "a racing builder failed: {status:?}");
    }

    // Whatever interleaving happened, nothing in the store may be corrupt:
    // no quarantined artifact, no manifest repair. Losing publishers may
    // leave orphaned generation files — benign debris the audit sweeps —
    // after which the store must be fully clean.
    let fsck = sfcc_cas::fsck(&store).unwrap();
    assert!(
        fsck.quarantined.is_empty() && !fsck.repaired_manifest,
        "racing builders corrupted the store: {fsck:?}"
    );
    let second = sfcc_cas::fsck(&store).unwrap();
    assert!(second.clean(), "audit did not converge: {second:?}");

    // ...and serve byte-identical artifacts to a fresh consumer.
    let (_, reference) = build(Config::stateless().with_function_cache(), &project_v1(), 1);
    let (c, report) = build(Config::stateless().with_cas_path(&store), &project_v1(), 1);
    assert!(c.compiler().cas_stats().unwrap().hits > 0);
    assert_eq!(fingerprint_of(&report), fingerprint_of(&reference));
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

#[test]
fn quick_eviction_under_a_tight_budget_never_produces_a_wrong_hit() {
    let store = tmpdir("evict");
    let (_, reference) = build(Config::stateless().with_function_cache(), &project_v1(), 1);

    // A budget below one artifact forces the store to evict everything it
    // publishes; the discipline under test is that it evicts, misses, and
    // recompiles — never serves a stale or partial entry.
    let (a, _) = build(
        Config::stateless()
            .with_cas_path(&store)
            .with_cas_budget(64),
        &project_v1(),
        1,
    );
    let stats = a.compiler().cas_stats().unwrap();
    assert!(stats.evictions > 0, "{stats:?}");
    assert!(stats.bytes <= 64, "the budget must hold: {stats:?}");

    let (b, report) = build(
        Config::stateless()
            .with_cas_path(&store)
            .with_cas_budget(64),
        &project_v1(),
        1,
    );
    let stats = b.compiler().cas_stats().unwrap();
    assert_eq!(stats.hits, 0, "evicted keys must miss: {stats:?}");
    assert_eq!(fingerprint_of(&report), fingerprint_of(&reference));
    assert_eq!(main_of(&report, 21), 43);

    // Sound after eviction: nothing quarantined, manifest intact; the
    // first pass may sweep replaced-generation debris, then fully clean.
    let fsck = sfcc_cas::fsck(&store).unwrap();
    assert!(
        fsck.quarantined.is_empty() && !fsck.repaired_manifest,
        "{fsck:?}"
    );
    assert!(sfcc_cas::fsck(&store).unwrap().clean());
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Crash safety
// ---------------------------------------------------------------------------

#[test]
fn crash_at_every_op_during_cas_publish_leaves_the_store_fsck_clean() {
    let p = project_v1();
    let (_, reference) = build(Config::stateless().with_function_cache(), &p, 1);
    let want = fingerprint_of(&reference);

    // Record the durable-op trace of one cold CAS session; every op in it
    // belongs to the store (the build itself is stateless).
    let n = {
        let dir = tmpdir("crash-rec");
        let rec = ffs::record();
        build(Config::stateless().with_cas_path(&dir), &p, 1);
        let n = rec.take().len() as u64;
        drop(rec);
        cleanup(&dir);
        n
    };
    assert!(
        n >= 5,
        "a publish must perform several durable ops, got {n}"
    );

    // K = n + 1 is the fault-free boundary trial.
    for k in 1..=n + 1 {
        let store = tmpdir(&format!("crash-k{k}"));
        {
            let _g = ffs::install(FaultPlan::single(Fault::CrashAt(k)));
            // The build itself must survive the store's death: artifacts
            // come from local computation when the store cannot serve.
            let mut builder =
                Builder::new(Compiler::new(Config::stateless().with_cas_path(&store)));
            let report = builder.build(&p).unwrap();
            assert_eq!(
                fingerprint_of(&report),
                want,
                "a store crash at op {k} leaked into the output"
            );
        }
        // First audit repairs whatever the crash left; the second must
        // find nothing — repair converges.
        sfcc_cas::fsck(&store).unwrap();
        let second = sfcc_cas::fsck(&store).unwrap();
        assert!(
            second.clean(),
            "fsck did not converge after op {k}: {second:?}"
        );

        // A clean session against the repaired store stays byte-identical.
        let (_, report) = build(Config::stateless().with_cas_path(&store), &p, 1);
        assert_eq!(fingerprint_of(&report), want, "after crash at op {k}");
        cleanup(&store);
    }
}

// ---------------------------------------------------------------------------
// Jobs invariance over a shared store (satellite: wave-boundary insert race)
// ---------------------------------------------------------------------------

#[test]
fn quick_jobs_invariance_over_a_partially_warm_store() {
    // Seed the store with v1, then build the *edited* project: some
    // functions hit the store, the edited chain computes locally, and the
    // two paths race at wave boundaries under --jobs. Every jobs value
    // must produce byte-identical output.
    let store = tmpdir("jobs");
    build(Config::stateless().with_cas_path(&store), &project_v1(), 1);

    let (_, no_cas) = build(
        Config::stateless().with_function_cache(),
        &project_v1_edit(),
        1,
    );
    let want = fingerprint_of(&no_cas);

    for jobs in [1, 2, 8] {
        let (c, report) = build(
            Config::stateless().with_cas_path(&store).with_jobs(jobs),
            &project_v1_edit(),
            jobs,
        );
        assert_eq!(
            fingerprint_of(&report),
            want,
            "jobs={jobs} diverged over the shared store"
        );
        let stats = c.compiler().cas_stats().unwrap();
        assert!(
            stats.hits + stats.misses > 0,
            "jobs={jobs} never consulted the store: {stats:?}"
        );
    }
    cleanup(&store);
}
