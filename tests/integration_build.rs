//! Cross-crate integration tests: workload → build system → stateful
//! compiler, including state persistence across builder sessions.

use sfcc::{Compiler, Config, SkipPolicy};
use sfcc_backend::{run, VmOptions};
use sfcc_buildsys::{Builder, Project};
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};

#[test]
fn generated_project_builds_and_runs() {
    let model = generate_model(&GeneratorConfig::small(5));
    let mut builder = Builder::new(Compiler::new(Config::stateless().with_verification()));
    let report = builder.build(&model.render()).unwrap();
    assert_eq!(report.rebuilt_count(), model.modules.len());
    let out = run(&report.program, "main.main", &[3], VmOptions::default()).unwrap();
    assert!(out.executed > 0);
}

#[test]
fn commit_replay_rebuilds_minimally() {
    let mut model = generate_model(&GeneratorConfig::small(8));
    let mut script = EditScript::new(2);
    let mut builder = Builder::new(Compiler::new(Config::stateful().with_verification()));
    builder.build(&model.render()).unwrap();

    for _ in 0..10 {
        let commit = script.commit(&mut model);
        let report = builder.build(&model.render()).unwrap();
        // A body edit rebuilds exactly the edited module; an interface
        // change (add-fn) additionally rebuilds dependents.
        assert!(report.rebuilt_count() >= 1, "commit {commit:?}");
        assert!(
            report.module(&commit.module).unwrap().rebuilt,
            "commit {commit:?}"
        );
        if commit.kind != sfcc_workload::EditKind::AddFunction {
            assert_eq!(
                report.rebuilt_count(),
                1,
                "body edit must stay local: {commit:?}"
            );
        }
    }
}

#[test]
fn state_survives_builder_sessions_on_disk() {
    let dir = std::env::temp_dir().join(format!("sfcc-it-build-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let state_path = dir.join("state.bin");

    let mut model = generate_model(&GeneratorConfig::small(77));
    let mut script = EditScript::new(4);

    // Session 1: full build, persist.
    {
        let mut builder = Builder::new(Compiler::new(
            Config::stateful()
                .with_state_path(&state_path)
                .with_verification(),
        ));
        builder.build(&model.render()).unwrap();
        builder.compiler().save_state().unwrap();
    }

    // Session 2: fresh process-equivalent, same state dir — skipping works
    // on the first incremental build.
    {
        let mut builder = Builder::new(Compiler::new(
            Config::stateful()
                .with_state_path(&state_path)
                .with_verification(),
        ));
        script.commit(&mut model);
        let report = builder.build(&model.render()).unwrap();
        let (_, _, skipped) = report.outcome_totals();
        assert!(skipped > 0, "persisted state must enable skipping");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_state_degrades_to_cold_start() {
    let dir = std::env::temp_dir().join(format!("sfcc-it-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let state_path = dir.join("state.bin");
    std::fs::write(&state_path, b"not a state file at all").unwrap();

    let compiler = Compiler::new(Config::stateful().with_state_path(&state_path));
    assert!(compiler.state_load_error().is_some());
    let mut builder = Builder::new(compiler);
    let model = generate_model(&GeneratorConfig::small(3));
    let report = builder.build(&model.render()).unwrap();
    let (_, _, skipped) = report.outcome_totals();
    assert_eq!(skipped, 0, "cold start must not skip");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn project_round_trips_through_directory() {
    let dir = std::env::temp_dir().join(format!("sfcc-it-dir-{}", std::process::id()));
    let model = generate_model(&GeneratorConfig::small(13));
    let project = model.render();
    project.write_to_dir(&dir).unwrap();
    let loaded = Project::from_dir(&dir).unwrap();
    assert_eq!(project, loaded);

    // The loaded-from-disk project builds identically.
    let mut a = Builder::new(Compiler::new(Config::stateless()));
    let mut b = Builder::new(Compiler::new(Config::stateless()));
    let ra = a.build(&project).unwrap();
    let rb = b.build(&loaded).unwrap();
    let oa = run(&ra.program, "main.main", &[5], VmOptions::default()).unwrap();
    let ob = run(&rb.program, "main.main", &[5], VmOptions::default()).unwrap();
    assert_eq!(oa.return_value, ob.return_value);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_and_sequential_stateful_builds_agree() {
    let mut model = generate_model(&GeneratorConfig::small(31));
    let mut script = EditScript::new(6);
    let policy = SkipPolicy::PreviousBuild;

    let mut seq = Builder::new(Compiler::new(Config::stateless().with_policy(policy)));
    let mut par =
        Builder::new(Compiler::new(Config::stateless().with_policy(policy))).with_parallelism();

    for _ in 0..4 {
        let project = model.render();
        let ra = seq.build(&project).unwrap();
        let rb = par.build(&project).unwrap();
        let oa = run(&ra.program, "main.main", &[7], VmOptions::default()).unwrap();
        let ob = run(&rb.program, "main.main", &[7], VmOptions::default()).unwrap();
        assert_eq!(oa.prints, ob.prints);
        assert_eq!(oa.return_value, ob.return_value);
        script.commit(&mut model);
    }
}

#[test]
fn committed_demo_project_builds_and_runs() {
    // The hand-written project in demo/ must stay green.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../demo");
    let project = Project::from_dir(&dir).expect("demo directory exists");
    assert_eq!(project.len(), 3);
    let mut builder = Builder::new(Compiler::new(Config::stateful().with_verification()));
    let report = builder.build(&project).unwrap();
    let out = run(&report.program, "main.main", &[5], VmOptions::default()).unwrap();
    assert_eq!(out.return_value, Some(824));
    assert_eq!(out.prints.len(), 20);

    // And the stateful rebuild skips.
    builder.clear_cache();
    let again = builder.build(&project).unwrap();
    assert!(again.outcome_totals().2 > 0);
}
