//! Function-granularity cross-module dependencies, end to end.
//!
//! The invariant under test: **demand flows per function**. A body edit in
//! a wide module re-executes exactly one function's pipeline; a signature
//! edit re-demands exactly the functions that call it — in the edited
//! module's importers as well as locally — and nothing else. And however
//! narrow the re-execution, the linked image stays byte-identical to a
//! from-scratch build, at every `--jobs` value.

use sfcc::{Compiler, Config};
use sfcc_backend::image::to_bytes;
use sfcc_buildsys::{Builder, Project};
use std::fmt::Write as _;

/// A `wide` module with `n` functions `f0..f{n-1}`, a `consumer` module
/// with one caller `g{i}` per wide function, and a `main` entry.
fn wide_project(n: usize) -> Project {
    let mut wide = String::new();
    let mut consumer = String::from("import wide;\n");
    for i in 0..n {
        let _ = writeln!(wide, "fn f{i}(x: int) -> int {{ return x + {i}; }}");
        let _ = writeln!(
            consumer,
            "fn g{i}(x: int) -> int {{ return wide::f{i}(x) * 2; }}"
        );
    }
    let mut p = Project::new();
    p.set_file("wide".into(), wide);
    p.set_file("consumer".into(), consumer);
    p.set_file(
        "main".into(),
        "import consumer;\nfn main(n: int) -> int { return consumer::g0(n); }".into(),
    );
    p
}

/// `wide_project(n)` after a body-only edit of `wide::f7`.
fn with_body_edit(n: usize) -> Project {
    let mut p = wide_project(n);
    let src = p.file("wide").unwrap().replace(
        "fn f7(x: int) -> int { return x + 7; }",
        "fn f7(x: int) -> int { return x + 700; }",
    );
    p.set_file("wide".into(), src);
    p
}

/// `wide_project(n)` after a signature edit of `wide::f7` plus the matching
/// call-site fix in `consumer::g7` — the realistic atomic cross-module edit.
fn with_signature_edit(n: usize) -> Project {
    let mut p = wide_project(n);
    let wide = p.file("wide").unwrap().replace(
        "fn f7(x: int) -> int { return x + 7; }",
        "fn f7(x: int, y: int) -> int { return x + y; }",
    );
    p.set_file("wide".into(), wide);
    let consumer = p.file("consumer").unwrap().replace(
        "fn g7(x: int) -> int { return wide::f7(x) * 2; }",
        "fn g7(x: int) -> int { return wide::f7(x, 7) * 2; }",
    );
    p.set_file("consumer".into(), consumer);
    p
}

fn clean_image(p: &Project) -> Vec<u8> {
    let mut fresh = Builder::new(Compiler::new(Config::stateless()));
    to_bytes(&fresh.build(p).unwrap().program)
}

#[test]
fn body_edit_in_wide_module_reexecutes_one_functions_pipeline() {
    const N: usize = 32;
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    builder.build(&wide_project(N)).unwrap();
    let p = with_body_edit(N);
    let report = builder.build(&p).unwrap();

    // Exactly one function's pipeline ran: f7's checkfn, lowerfn, and
    // optimizefn. The other 31 wide functions — and all of consumer and
    // main — were spared by per-function fingerprint cutoff.
    assert_eq!(report.fngrain.fn_tasks_executed, 3);
    let executed = &report.query.executed;
    for t in [
        "checkfn(wide::f7)",
        "lowerfn(wide::f7)",
        "optimizefn(wide::f7)",
    ] {
        assert!(executed.iter().any(|e| e == t), "{t} missing: {executed:?}");
    }
    for t in executed {
        // fnast(wide::*) legitimately re-extracts for every function after
        // the re-parse — those unchanged fingerprints are the cutoff — but
        // no *pipeline* kind may touch any function except f7.
        if t.starts_with("checkfn(") || t.starts_with("lowerfn(") || t.starts_with("optimizefn(") {
            assert!(
                t.contains("wide::f7"),
                "untouched function re-executed: {t}"
            );
        }
        assert!(!t.contains("(consumer"), "consumer task ran: {t}");
        assert!(!t.contains("(main"), "main task ran: {t}");
    }
    // No signature re-extraction at all: a body edit leaves every
    // signature fingerprint untouched.
    assert_eq!(report.fngrain.signature_misses, 0);
    assert!(report.module("wide").unwrap().rebuilt);
    assert!(!report.module("consumer").unwrap().rebuilt);
    assert!(!report.module("main").unwrap().rebuilt);

    assert_eq!(to_bytes(&report.program), clean_image(&p));
}

#[test]
fn signature_edit_reexecutes_true_dependents_only() {
    const N: usize = 32;
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    builder.build(&wide_project(N)).unwrap();
    let p = with_signature_edit(N);
    let report = builder.build(&p).unwrap();

    let executed = &report.query.executed;
    // The edited function and its one true dependent re-ran...
    for t in ["optimizefn(wide::f7)", "checkfn(consumer::g7)"] {
        assert!(executed.iter().any(|e| e == t), "{t} missing: {executed:?}");
    }
    // ...and no other function's pipeline did — not the 31 sibling wide
    // functions, not the 31 sibling consumers pinned to other signatures.
    for t in executed {
        if t.starts_with("checkfn(") || t.starts_with("lowerfn(") || t.starts_with("optimizefn(") {
            assert!(
                t.contains("wide::f7") || t.contains("consumer::g7"),
                "untouched function re-executed: {t}"
            );
        }
    }
    // The interface-hash cliff is dead: the other consumers' signature
    // pins all validated. (signature(wide::*) re-executes — the interface
    // changed — but only f7's fingerprint changes.)
    assert!(report.fngrain.signature_hits > 0 || report.fngrain.cutoff_saved > 0);
    assert!(!report.module("main").unwrap().rebuilt);

    assert_eq!(to_bytes(&report.program), clean_image(&p));
}

#[test]
fn fngrain_incremental_builds_are_byte_identical_across_jobs() {
    const N: usize = 16;
    let edits: [fn(usize) -> Project; 3] = [wide_project, with_body_edit, with_signature_edit];

    // Replay the same edit sequence at several --jobs values; images,
    // rebuild counts, and the executed-task *sets* must all agree.
    type Replay = (Vec<Vec<u8>>, Vec<Vec<String>>);
    let mut replays: Vec<Replay> = Vec::new();
    for jobs in [1usize, 4, 8] {
        let mut builder = Builder::new(Compiler::new(Config::stateless())).with_jobs(jobs);
        let mut images = Vec::new();
        let mut tasks = Vec::new();
        for make in &edits {
            let report = builder.build(&make(N)).unwrap();
            images.push(to_bytes(&report.program));
            let mut executed = report.query.executed.clone();
            executed.sort();
            tasks.push(executed);
        }
        replays.push((images, tasks));
    }
    for (images, tasks) in &replays[1..] {
        assert_eq!(images, &replays[0].0, "images diverged across --jobs");
        assert_eq!(tasks, &replays[0].1, "task sets diverged across --jobs");
    }
    // And each step matches a from-scratch build of the same sources.
    for (step, make) in edits.iter().enumerate() {
        assert_eq!(replays[0].0[step], clean_image(&make(N)), "step {step}");
    }
}

#[test]
fn stateful_fngrain_replay_is_deterministic_across_jobs() {
    // Same discipline under dormancy skipping and the function cache: the
    // builds may legally differ from stateless ones, but must be identical
    // across --jobs (the frozen-state snapshot plus wave-batched restricted
    // runs make skip decisions demand-order independent).
    const N: usize = 16;
    let edits: [fn(usize) -> Project; 3] = [wide_project, with_body_edit, with_signature_edit];
    let mut images: Vec<Vec<Vec<u8>>> = Vec::new();
    for jobs in [1usize, 4] {
        let config = Config::stateful().with_function_cache();
        let mut builder = Builder::new(Compiler::new(config)).with_jobs(jobs);
        let mut per_step = Vec::new();
        for make in &edits {
            let report = builder.build(&make(N)).unwrap();
            per_step.push(to_bytes(&report.program));
        }
        images.push(per_step);
    }
    assert_eq!(
        images[0], images[1],
        "stateful builds diverged across --jobs"
    );
}
