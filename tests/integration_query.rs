//! End-to-end properties of the demand-driven query engine behind the
//! builder: incremental builds must be *byte-identical* to from-scratch
//! builds under arbitrary edit histories, the engine's hit/miss accounting
//! must show early cutoff doing its job, and structural regressions (an
//! edit that closes an import cycle) must surface as ordinary diagnostics.

use proptest::prelude::*;
use sfcc::{Compiler, Config};
use sfcc_backend::image::to_bytes;
use sfcc_buildsys::{Builder, Project};
use sfcc_workload::{generate_model, EditScript, GeneratorConfig};

fn project(files: &[(&str, &str)]) -> Project {
    let mut p = Project::new();
    for (name, src) in files {
        p.set_file(name.to_string(), src.to_string());
    }
    p
}

fn three_module_project() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

/// A from-scratch build of `p` with a fresh compiler and empty query store.
fn clean_image(p: &Project) -> Vec<u8> {
    let mut fresh = Builder::new(Compiler::new(Config::stateless()));
    to_bytes(&fresh.build(p).unwrap().program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness of memoization: whatever the edit history, the image an
    /// incremental builder links is byte-for-byte the image a from-scratch
    /// build of the same sources produces. (Stateless mode — stateful
    /// skipping trades bytes for behavioural equivalence, which
    /// `integration_equivalence` covers.)
    #[test]
    fn incremental_builds_are_byte_identical_to_clean_builds(seed in any::<u64>()) {
        let config = GeneratorConfig::small(seed % 1000);
        let mut model = generate_model(&config);
        let mut script = EditScript::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut incremental = Builder::new(Compiler::new(Config::stateless()));

        for commit in 0..5usize {
            if commit > 0 {
                script.commit(&mut model);
            }
            let p = model.render();
            let inc = to_bytes(&incremental.build(&p).unwrap().program);
            prop_assert_eq!(inc, clean_image(&p), "commit {}", commit);
        }
    }
}

#[test]
fn interface_edit_reexecutes_dependents_tasks_with_cutoff() {
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    let mut p = three_module_project();
    let first = builder.build(&p).unwrap();
    // Cold build: every task is a miss, nothing hits.
    assert_eq!(first.query.hits, 0);
    assert!(first.query.misses > 0);

    // Interface edit: base exports one more function. Under function-grained
    // dependencies lib's pin is on signature(base::g) alone — unchanged — so
    // only lib's cheap module-check re-derives (and fingerprints
    // identically); no per-function task of lib, nothing of main.
    p.set_file(
        "base".into(),
        "fn g(x: int) -> int { return x * 2; }\nfn extra() -> int { return 7; }".into(),
    );
    let report = builder.build(&p).unwrap();
    let executed = &report.query.executed;
    assert!(
        executed.iter().any(|t| t == "signature(base::g)"),
        "{executed:?}"
    );
    assert!(
        executed.iter().any(|t| t == "modcheck(lib)"),
        "{executed:?}"
    );
    assert!(
        !executed.iter().any(|t| t.contains("lib::")),
        "{executed:?}"
    );
    assert!(
        !executed.iter().any(|t| t == "codegen(lib)"),
        "{executed:?}"
    );
    assert!(
        !executed
            .iter()
            .any(|t| t.ends_with("(main)") || t.contains("main::")),
        "{executed:?}"
    );
    assert!(report.query.hits > 0);
    assert_eq!(report.query.misses, executed.len() as u64);

    // And the linked image is exactly what a clean build would produce.
    assert_eq!(to_bytes(&report.program), clean_image(&p));
}

#[test]
fn body_edit_hits_everything_but_the_edited_module() {
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    let mut p = three_module_project();
    builder.build(&p).unwrap();
    p.set_file(
        "base".into(),
        "fn g(x: int) -> int { return x * 7; }".into(),
    );
    let report = builder.build(&p).unwrap();
    // No task of lib or main executes; only base's tasks (module-level and
    // per-function alike) and the link.
    assert!(
        report
            .query
            .executed
            .iter()
            .all(|t| t.contains("(base") || t == "link"),
        "{:?}",
        report.query.executed
    );
    assert_eq!(to_bytes(&report.program), clean_image(&p));
}

#[test]
fn edit_that_closes_an_import_cycle_is_reported_like_a_clean_build() {
    let mut builder = Builder::new(Compiler::new(Config::stateless()));
    let mut p = project(&[
        ("a", "fn f() -> int { return 1; }"),
        ("b", "import a;\nfn g() -> int { return a::f(); }"),
    ]);
    builder.build(&p).unwrap();

    // The edit makes the import relation cyclic. The incremental build must
    // terminate (no demand-loop hang, no stack overflow) with the exact
    // diagnostic a from-scratch build emits.
    p.set_file(
        "a".into(),
        "import b;\nfn f() -> int { return b::g(); }".into(),
    );
    let incremental_err = builder.build(&p).unwrap_err().to_string();
    assert_eq!(incremental_err, "import cycle: a -> b -> a");

    let mut fresh = Builder::new(Compiler::new(Config::stateless()));
    let clean_err = fresh.build(&p).unwrap_err().to_string();
    assert_eq!(incremental_err, clean_err);

    // Undoing the edit recovers with the memoized store intact: the
    // restored sources match what was memoized before the failed build, so
    // *nothing* recompiles, and the image still matches a clean build.
    p.set_file("a".into(), "fn f() -> int { return 1; }".into());
    let report = builder.build(&p).unwrap();
    assert_eq!(report.rebuilt_count(), 0);
    assert_eq!(to_bytes(&report.program), clean_image(&p));
}
