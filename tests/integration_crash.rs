//! Crash-consistency matrix for the compiler's persistent state.
//!
//! The invariant under test: **a crash, torn write, or silent corruption at
//! any point may cost a cold start, never a wrong build**. The harness
//! records the durable-op trace of one builder session (load state → build →
//! commit state + IR cache → write image), then replays the session with a
//! deterministic fault injected at every operation index (`sfcc-faultfs`),
//! reruns cleanly, and asserts the recovered state, cache, and image are
//! *byte-identical* to a reference trajectory that never crashed. Because
//! the manifest rename is the single commit point, every trial must land on
//! exactly one of two references: all-old (crash before the rename) or
//! all-new (crash after).
//!
//! Satellites ride along: racing builders sharing one state directory,
//! durability-mode fsync verification, exhaustive truncation and bit-flip
//! decoding sweeps, recovery counters in the JSON build report, and
//! fsck-based debris collection. Tests prefixed `quick_` form the
//! `ci.sh --quick` crash-consistency sweep.

use proptest::prelude::*;
use sfcc::{persist, Compiler, Config, Durability, FunctionCache};
use sfcc_backend::VmOptions;
use sfcc_buildsys::serve::BuildService;
use sfcc_buildsys::{BuildReport, Builder, Project};
use sfcc_daemon::{roundtrip, Daemon, DaemonHandle, DaemonOptions, Request, Service};
use sfcc_faultfs::{self as ffs, CommitDir, Fault, FaultPlan, OpKind};
use sfcc_state::statefile;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

const STATE_BASE: &str = ".sfcc-state";
const IMAGE_NAME: &str = "out.sbx";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sfcc-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(dir: &Path) {
    let _ = fs::remove_dir_all(dir);
}

fn project(files: &[(&str, &str)]) -> Project {
    let mut p = Project::new();
    for (name, src) in files {
        p.set_file((*name).to_string(), (*src).to_string());
    }
    p
}

fn project_v1() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 1; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

/// `project_v1` with an edited `lib` — main.main(21) becomes 45 instead
/// of 43.
fn project_v2() -> Project {
    project(&[
        ("base", "fn g(x: int) -> int { return x * 2; }"),
        (
            "lib",
            "import base;\nfn f(x: int) -> int { return base::g(x) + 3; }",
        ),
        (
            "main",
            "import lib;\nfn main(n: int) -> int { return lib::f(n); }",
        ),
    ])
}

fn state_base(dir: &Path) -> PathBuf {
    dir.join(STATE_BASE)
}

/// One full builder session against `dir`: load persistent state, build,
/// commit state + cache through the manifest protocol, write the program
/// image. Mirrors one `minicc build --stateful --fn-cache` invocation.
fn run_session(dir: &Path, p: &Project, durability: Durability) -> Result<BuildReport, String> {
    let config = Config::stateful()
        .with_state_path(state_base(dir))
        .with_function_cache()
        .with_durability(durability);
    let mut builder = Builder::new(Compiler::new(config));
    let report = builder.build(p).map_err(|e| e.to_string())?;
    builder.compiler().save_state().map_err(|e| e.to_string())?;
    sfcc_backend::image::save_with(&report.program, &dir.join(IMAGE_NAME), durability)
        .map_err(|e| e.to_string())?;
    Ok(report)
}

/// The committed manifest generation at `dir` (0 when none). A crashed
/// directory must always have an absent-or-valid manifest, never a torn one.
fn generation(dir: &Path) -> u64 {
    CommitDir::new(&state_base(dir))
        .read_manifest()
        .expect("manifest must be absent or valid after a crash, never torn")
        .map(|m| m.generation)
        .unwrap_or(0)
}

/// The logical durable artifacts of a directory, independent of physical
/// generation-file names.
#[derive(PartialEq)]
struct Snapshot {
    state: Vec<u8>,
    cache: Vec<u8>,
    image: Vec<u8>,
}

fn snapshot(dir: &Path) -> Snapshot {
    let cd = CommitDir::new(&state_base(dir));
    let m = cd
        .read_manifest()
        .unwrap()
        .expect("a completed session must have committed a manifest");
    Snapshot {
        state: cd
            .load_entry(m.entry(persist::STATE_LOGICAL).unwrap())
            .unwrap(),
        cache: cd
            .load_entry(m.entry(persist::CACHE_LOGICAL).unwrap())
            .unwrap(),
        image: fs::read(dir.join(IMAGE_NAME)).unwrap(),
    }
}

fn assert_snapshots_eq(got: &Snapshot, want: &Snapshot, label: &str) {
    assert_eq!(got.state, want.state, "state bytes diverge: {label}");
    assert_eq!(got.cache, want.cache, "cache bytes diverge: {label}");
    assert_eq!(got.image, want.image, "image bytes diverge: {label}");
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for dirent in fs::read_dir(src).unwrap() {
        let dirent = dirent.unwrap();
        fs::copy(dirent.path(), dst.join(dirent.file_name())).unwrap();
    }
}

/// Records the per-session durable-op traces of running `projects` in
/// sequence against one fresh scratch directory. Op indices within each
/// trace are 1-based *relative to the session start* (`enumerate` position
/// + 1), matching how an installed plan counts them.
fn recorded_ops(
    projects: &[&Project],
    durability: Durability,
    tag: &str,
) -> Vec<Vec<ffs::OpRecord>> {
    let dir = tmpdir(tag);
    let rec = ffs::record();
    let mut logs = Vec::new();
    for p in projects {
        run_session(&dir, p, durability).unwrap();
        logs.push(rec.take());
    }
    drop(rec);
    cleanup(&dir);
    logs
}

/// References for a cold-start trial: the artifacts after one clean session
/// (`f1`, the all-old outcome) and after two (`f2`, the all-new outcome).
struct ColdRefs {
    f1: Snapshot,
    f2: Snapshot,
}

fn cold_references(durability: Durability, tag: &str) -> ColdRefs {
    let p = project_v1();
    let f1_dir = tmpdir(&format!("{tag}-f1"));
    run_session(&f1_dir, &p, durability).unwrap();
    let f1 = snapshot(&f1_dir);
    cleanup(&f1_dir);

    let f2_dir = tmpdir(&format!("{tag}-f2"));
    run_session(&f2_dir, &p, durability).unwrap();
    run_session(&f2_dir, &p, durability).unwrap();
    let f2 = snapshot(&f2_dir);
    cleanup(&f2_dir);
    ColdRefs { f1, f2 }
}

/// The crash-point harness: enumerate every durable op of a cold session,
/// crash at each, rerun cleanly, and demand byte-identity with the
/// matching never-crashed reference.
fn cold_crash_matrix(durability: Durability) {
    let p = project_v1();
    let label = durability.label();
    let refs = cold_references(durability, &format!("cold-{label}"));
    let logs = recorded_ops(&[&p], durability, &format!("cold-rec-{label}"));
    let n = logs[0].len() as u64;
    assert!(
        n >= 8,
        "a session must perform several durable ops, got {n}"
    );

    // K = n + 1 is the fault-free boundary trial.
    for k in 1..=n + 1 {
        let dir = tmpdir(&format!("cold-{label}-k{k}"));
        {
            let _g = ffs::install(FaultPlan::single(Fault::CrashAt(k)));
            let _ = run_session(&dir, &p, durability);
        }
        let committed = generation(&dir) > 0;
        let report = run_session(&dir, &p, durability)
            .unwrap_or_else(|e| panic!("recovery session failed after crash at op {k}: {e}"));
        assert_eq!(
            report.recovered_files, 0,
            "a clean crash must not look like corruption (op {k})"
        );
        let want = if committed { &refs.f2 } else { &refs.f1 };
        assert_snapshots_eq(
            &snapshot(&dir),
            want,
            &format!("{label} crash at op {k}, committed={committed}"),
        );
        cleanup(&dir);
    }
}

#[test]
fn quick_cold_crash_matrix_fast() {
    cold_crash_matrix(Durability::Fast);
}

#[test]
fn cold_crash_matrix_durable() {
    cold_crash_matrix(Durability::Durable);
}

#[test]
fn warm_crash_matrix_fast() {
    let d = Durability::Fast;
    let v1 = project_v1();
    let v2 = project_v2();

    // Seed: one clean v1 session; trials crash an *incremental* v2 session.
    let seed = tmpdir("warm-seed");
    run_session(&seed, &v1, d).unwrap();
    let seed_gen = generation(&seed);

    let w2_dir = tmpdir("warm-w2");
    copy_dir(&seed, &w2_dir);
    run_session(&w2_dir, &v2, d).unwrap();
    let w2 = snapshot(&w2_dir);
    cleanup(&w2_dir);

    let w3_dir = tmpdir("warm-w3");
    copy_dir(&seed, &w3_dir);
    run_session(&w3_dir, &v2, d).unwrap();
    run_session(&w3_dir, &v2, d).unwrap();
    let w3 = snapshot(&w3_dir);
    cleanup(&w3_dir);

    let n = {
        let dir = tmpdir("warm-rec");
        copy_dir(&seed, &dir);
        let rec = ffs::record();
        run_session(&dir, &v2, d).unwrap();
        let n = rec.take().len() as u64;
        drop(rec);
        cleanup(&dir);
        n
    };
    assert!(
        n >= 8,
        "a warm session must perform several durable ops, got {n}"
    );

    for k in 1..=n + 1 {
        let dir = tmpdir(&format!("warm-k{k}"));
        copy_dir(&seed, &dir);
        {
            let _g = ffs::install(FaultPlan::single(Fault::CrashAt(k)));
            let _ = run_session(&dir, &v2, d);
        }
        let committed = generation(&dir) > seed_gen;
        let report = run_session(&dir, &v2, d)
            .unwrap_or_else(|e| panic!("recovery failed after warm crash at op {k}: {e}"));
        assert_eq!(report.recovered_files, 0, "op {k}");
        let want = if committed { &w3 } else { &w2 };
        assert_snapshots_eq(
            &snapshot(&dir),
            want,
            &format!("warm crash at op {k}, committed={committed}"),
        );
        cleanup(&dir);
    }
    cleanup(&seed);
}

#[test]
fn torn_write_matrix_fast() {
    let d = Durability::Fast;
    let p = project_v1();
    let refs = cold_references(d, "torn");
    let logs = recorded_ops(&[&p], d, "torn-rec");
    let writes: Vec<u64> = logs[0]
        .iter()
        .enumerate()
        .filter(|(_, r)| r.kind == OpKind::Write)
        .map(|(i, _)| i as u64 + 1)
        .collect();
    assert!(
        writes.len() >= 4,
        "a cold session writes two generations, a manifest, and an image"
    );

    for &k in &writes {
        for keep in [0usize, 1, 17] {
            let dir = tmpdir(&format!("torn-k{k}-b{keep}"));
            {
                let _g = ffs::install(FaultPlan::single(Fault::TornAt { op: k, keep }));
                let _ = run_session(&dir, &p, d);
            }
            let committed = generation(&dir) > 0;
            run_session(&dir, &p, d).unwrap_or_else(|e| {
                panic!("recovery failed after torn write at op {k} keep {keep}: {e}")
            });
            let want = if committed { &refs.f2 } else { &refs.f1 };
            assert_snapshots_eq(
                &snapshot(&dir),
                want,
                &format!("torn write at op {k} keep {keep}, committed={committed}"),
            );
            cleanup(&dir);
        }
    }
}

#[test]
fn bitflip_read_matrix_never_accepts_corrupt_data() {
    let d = Durability::Fast;
    let v1 = project_v1();
    let seed = tmpdir("flip-seed");
    run_session(&seed, &v1, d).unwrap();

    let reads: Vec<u64> = {
        let dir = tmpdir("flip-rec");
        copy_dir(&seed, &dir);
        let rec = ffs::record();
        run_session(&dir, &v1, d).unwrap();
        let log = rec.take();
        drop(rec);
        cleanup(&dir);
        log.iter()
            .enumerate()
            .filter(|(_, r)| r.kind == OpKind::Read)
            .map(|(i, _)| i as u64 + 1)
            .collect()
    };
    assert!(
        reads.len() >= 3,
        "a warm session reads at least manifest, state, and cache"
    );

    for &k in &reads {
        for bit in [0u64, 8 * 9 + 3, 8 * 40 + 6] {
            let dir = tmpdir(&format!("flip-k{k}-b{bit}"));
            copy_dir(&seed, &dir);
            let report = {
                let _g = ffs::install(FaultPlan::single(Fault::BitflipAt { op: k, bit }));
                run_session(&dir, &v1, d).unwrap_or_else(|e| {
                    panic!("silent corruption must degrade, not fail (op {k} bit {bit}): {e}")
                })
            };
            // The build never consumed the flipped data as valid: the
            // program behaves exactly like an uncorrupted build.
            let out = sfcc_backend::run(&report.program, "main.main", &[21], VmOptions::default())
                .unwrap();
            assert_eq!(out.return_value, Some(43), "op {k} bit {bit}");
            // And the session recommitted a fully healthy directory.
            let clean = run_session(&dir, &v1, d).unwrap();
            assert_eq!(clean.recovered_files, 0, "op {k} bit {bit}");
            let out = sfcc_backend::run(&clean.program, "main.main", &[21], VmOptions::default())
                .unwrap();
            assert_eq!(out.return_value, Some(43), "op {k} bit {bit}");
            cleanup(&dir);
        }
    }
    cleanup(&seed);
}

/// Byte streams of the durable formats from a warm two-session run, for
/// decode-hardening sweeps.
struct RawArtifacts {
    state: Vec<u8>,
    cache: Vec<u8>,
    manifest: Vec<u8>,
    image: Vec<u8>,
}

fn reference_artifacts() -> &'static RawArtifacts {
    static ARTS: OnceLock<RawArtifacts> = OnceLock::new();
    ARTS.get_or_init(|| {
        let dir = tmpdir("refbytes");
        run_session(&dir, &project_v1(), Durability::Fast).unwrap();
        run_session(&dir, &project_v1(), Durability::Fast).unwrap();
        let cd = CommitDir::new(&state_base(&dir));
        let m = cd.read_manifest().unwrap().unwrap();
        let state = cd
            .load_entry(m.entry(persist::STATE_LOGICAL).unwrap())
            .unwrap();
        let cache = cd
            .load_entry(m.entry(persist::CACHE_LOGICAL).unwrap())
            .unwrap();
        let manifest = fs::read(cd.manifest_path()).unwrap();
        let image = fs::read(dir.join(IMAGE_NAME)).unwrap();
        cleanup(&dir);
        RawArtifacts {
            state,
            cache,
            manifest,
            image,
        }
    })
}

#[test]
fn quick_truncation_at_every_byte_boundary_errors() {
    let RawArtifacts { state, cache, .. } = reference_artifacts();
    for cut in 0..state.len() {
        assert!(
            statefile::from_bytes(&state[..cut]).is_err(),
            "truncated state (cut {cut}) must not decode"
        );
    }
    for cut in 0..cache.len() {
        assert!(
            FunctionCache::from_bytes(&cache[..cut]).is_err(),
            "truncated cache (cut {cut}) must not decode"
        );
    }
}

#[test]
fn single_bitflips_on_disk_never_decode() {
    let RawArtifacts {
        state,
        cache,
        manifest,
        image,
    } = reference_artifacts();
    for i in 0..state.len() {
        let mut b = state.clone();
        b[i] ^= 1 << (i % 8);
        assert!(
            statefile::from_bytes(&b).is_err(),
            "state flip at byte {i} accepted as valid"
        );
    }
    for i in 0..cache.len() {
        let mut b = cache.clone();
        b[i] ^= 1 << (i % 8);
        assert!(
            FunctionCache::from_bytes(&b).is_err(),
            "cache flip at byte {i} accepted as valid"
        );
    }
    for i in 0..image.len() {
        let mut b = image.clone();
        b[i] ^= 1 << (i % 8);
        assert!(
            sfcc_backend::image::from_bytes(&b).is_err(),
            "image flip at byte {i} accepted as valid"
        );
    }
    // The manifest decoder is only reachable through a CommitDir.
    let dir = tmpdir("flip-manifest");
    let cd = CommitDir::new(&state_base(&dir));
    for i in 0..manifest.len() {
        let mut b = manifest.clone();
        b[i] ^= 1 << (i % 8);
        fs::write(cd.manifest_path(), &b).unwrap();
        assert!(
            cd.read_manifest().is_err(),
            "manifest flip at byte {i} accepted as valid"
        );
    }
    cleanup(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Beyond the exhaustive boundary sweeps: random *combinations* of a
    /// truncation and a bit flip must still never decode.
    #[test]
    fn random_truncate_and_flip_never_decodes(seed in any::<u64>()) {
        let RawArtifacts { state, cache, .. } = reference_artifacts();
        let cut = 1 + (seed as usize) % (state.len() - 1);
        let mut b = state[..cut].to_vec();
        let j = ((seed >> 17) as usize) % b.len();
        b[j] ^= 1 << ((seed >> 40) % 8);
        prop_assert!(statefile::from_bytes(&b).is_err());

        let cut = 1 + ((seed >> 9) as usize) % (cache.len() - 1);
        let mut b = cache[..cut].to_vec();
        let j = ((seed >> 23) as usize) % b.len();
        b[j] ^= 1 << ((seed >> 33) % 8);
        prop_assert!(FunctionCache::from_bytes(&b).is_err());
    }
}

#[test]
fn truncated_files_recover_through_the_builder() {
    let RawArtifacts { state, cache, .. } = reference_artifacts();
    let d = Durability::Fast;
    let v1 = project_v1();

    // Legacy layout: plain truncated state + cache files, no manifest.
    // Cut points are per-file so both files are genuinely damaged.
    let cuts = |len: usize| [1, len / 2, len - 1];
    for (scut, ccut) in cuts(state.len()).into_iter().zip(cuts(cache.len())) {
        let cut = scut;
        let dir = tmpdir(&format!("trunc-legacy-{cut}"));
        fs::write(state_base(&dir), &state[..scut]).unwrap();
        fs::write(
            persist::legacy_cache_path(&state_base(&dir)),
            &cache[..ccut],
        )
        .unwrap();
        let report = run_session(&dir, &v1, d).unwrap();
        assert_eq!(report.recovered_files, 2, "cut {cut}");
        assert_eq!(report.quarantined.len(), 2, "cut {cut}");
        let clean = run_session(&dir, &v1, d).unwrap();
        assert_eq!(clean.recovered_files, 0, "cut {cut}");
        cleanup(&dir);
    }

    // Manifest layout: truncate one committed generation file.
    let dir = tmpdir("trunc-entry");
    run_session(&dir, &v1, d).unwrap();
    let cd = CommitDir::new(&state_base(&dir));
    let m = cd.read_manifest().unwrap().unwrap();
    let spath = cd.entry_path(m.entry(persist::STATE_LOGICAL).unwrap());
    let bytes = fs::read(&spath).unwrap();
    fs::write(&spath, &bytes[..bytes.len() / 2]).unwrap();
    let report = run_session(&dir, &v1, d).unwrap();
    assert_eq!(report.recovered_files, 1);
    assert!(report.quarantined[0].ends_with(".corrupt"));
    cleanup(&dir);
}

#[test]
fn quick_recovery_counters_surface_in_json_report() {
    let d = Durability::Fast;
    let v1 = project_v1();
    let dir = tmpdir("counters");
    run_session(&dir, &v1, d).unwrap();

    // Corrupt both committed entries on disk.
    let cd = CommitDir::new(&state_base(&dir));
    let m = cd.read_manifest().unwrap().unwrap();
    for logical in [persist::STATE_LOGICAL, persist::CACHE_LOGICAL] {
        fs::write(cd.entry_path(m.entry(logical).unwrap()), b"garbage").unwrap();
    }
    let report = run_session(&dir, &v1, d).unwrap();
    assert_eq!(report.recovered_files, 2);
    assert_eq!(report.quarantined.len(), 2);
    assert!(report.quarantined.iter().all(|q| q.ends_with(".corrupt")));
    let json = report.to_json();
    assert!(
        json.contains("\"recovery\":{\"recovered_files\":2,\"quarantined\":["),
        "{json}"
    );
    assert!(json.contains(".corrupt"), "{json}");

    // The recovery session recommitted healthy state: the next build is
    // fully incremental again — warm state, no recovery, dormant skipping.
    let next = run_session(&dir, &v1, d).unwrap();
    assert_eq!(next.recovered_files, 0);
    assert!(next
        .to_json()
        .contains("\"recovery\":{\"recovered_files\":0,\"quarantined\":[]}"));
    let (_, _, skipped) = next.outcome_totals();
    assert!(skipped > 0, "warm rebuild must skip dormant pass slots");
    cleanup(&dir);
}

#[test]
fn racing_builders_share_a_state_directory_safely() {
    let dir = tmpdir("race");
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let dir = dir.clone();
            std::thread::spawn(move || {
                let p = project_v1();
                for _ in 0..3 {
                    run_session(&dir, &p, Durability::Fast).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Quiescent: the surviving manifest is valid and both artifacts load
    // without a single recovery event — losers' generations are merely
    // orphaned, never half-published.
    let loaded = persist::load(&state_base(&dir), true, true);
    assert!(loaded.db_error.is_none(), "{:?}", loaded.events);
    assert!(loaded.events.is_empty(), "{:?}", loaded.events);

    // fsck reclaims the orphaned generations; a re-check is clean, and the
    // next session still builds a correct program from the shared state.
    let report = persist::fsck(&state_base(&dir), &[dir.join(IMAGE_NAME)]).unwrap();
    assert!(report.quarantined.is_empty(), "{report:?}");
    assert!(persist::fsck(&state_base(&dir), &[]).unwrap().clean());
    let final_report = run_session(&dir, &project_v1(), Durability::Fast).unwrap();
    assert_eq!(final_report.recovered_files, 0);
    let out = sfcc_backend::run(
        &final_report.program,
        "main.main",
        &[21],
        VmOptions::default(),
    )
    .unwrap();
    assert_eq!(out.return_value, Some(43));
    cleanup(&dir);
}

#[test]
fn quick_durable_mode_emits_sync_points_fast_does_not() {
    let p = project_v1();
    let fast_dir = tmpdir("dur-fast");
    let rec = ffs::record();
    run_session(&fast_dir, &p, Durability::Fast).unwrap();
    let fast_ops = rec.take();
    let durable_dir = tmpdir("dur-durable");
    run_session(&durable_dir, &p, Durability::Durable).unwrap();
    let durable_ops = rec.take();
    drop(rec);

    assert!(
        fast_ops
            .iter()
            .all(|r| r.kind != OpKind::SyncFile && r.kind != OpKind::SyncDir),
        "fast mode must not fsync"
    );
    let sync_files = durable_ops
        .iter()
        .filter(|r| r.kind == OpKind::SyncFile)
        .count();
    let sync_dirs = durable_ops
        .iter()
        .filter(|r| r.kind == OpKind::SyncDir)
        .count();
    // Both generation files, the manifest temp, and the image temp are
    // synced; the manifest and image renames are each followed by a
    // directory sync.
    assert!(
        sync_files >= 4,
        "durable mode fsyncs data files, got {sync_files}"
    );
    assert!(
        sync_dirs >= 2,
        "durable mode fsyncs directories, got {sync_dirs}"
    );
    cleanup(&fast_dir);
    cleanup(&durable_dir);
}

#[test]
fn transient_enospc_and_rename_failures_keep_the_directory_consistent() {
    let d = Durability::Fast;
    let p = project_v1();
    let refs = cold_references(d, "transient");
    for spec in [
        "enospc:5",
        "fail:6",
        "fail-rename:1",
        "fail-rename:2",
        "enospc:8",
    ] {
        let dir = tmpdir(&format!("transient-{}", spec.replace(':', "-")));
        {
            let _g = ffs::install(FaultPlan::parse(spec).unwrap());
            let _ = run_session(&dir, &p, d);
        }
        let committed = generation(&dir) > 0;
        run_session(&dir, &p, d).unwrap_or_else(|e| panic!("recovery failed after `{spec}`: {e}"));
        let want = if committed { &refs.f2 } else { &refs.f1 };
        assert_snapshots_eq(
            &snapshot(&dir),
            want,
            &format!("transient `{spec}`, committed={committed}"),
        );
        cleanup(&dir);
    }
}

#[test]
fn fsck_reclaims_crash_debris_and_quarantines_bad_images() {
    let d = Durability::Fast;
    let p = project_v1();
    let dir = tmpdir("fsck-debris");

    // Crash at the first rename: both generation files and the manifest
    // temp are already on disk, referenced by nothing.
    let logs = recorded_ops(&[&p], d, "fsck-rec");
    let k = logs[0]
        .iter()
        .enumerate()
        .find(|(_, r)| r.kind == OpKind::Rename)
        .map(|(i, _)| i as u64 + 1)
        .expect("a session must rename at least the manifest");
    {
        let _g = ffs::install(FaultPlan::single(Fault::CrashAt(k)));
        let _ = run_session(&dir, &p, d);
    }
    let report = persist::fsck(&state_base(&dir), &[]).unwrap();
    assert!(
        report.removed.len() >= 3,
        "crash debris must be collected: {report:?}"
    );
    assert!(persist::fsck(&state_base(&dir), &[]).unwrap().clean());

    // A corrupt image is quarantined by fsck.
    run_session(&dir, &p, d).unwrap();
    let image = dir.join(IMAGE_NAME);
    let mut bytes = fs::read(&image).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    fs::write(&image, &bytes).unwrap();
    let report = persist::fsck(&state_base(&dir), std::slice::from_ref(&image)).unwrap();
    assert_eq!(report.quarantined.len(), 1, "{report:?}");
    assert!(!image.exists(), "corrupt image must be moved aside");
    cleanup(&dir);
}

// ---------------------------------------------------------------------------
// Shared artifact store (sfcc-cas) fault matrix
// ---------------------------------------------------------------------------

/// One stateless builder session against a shared artifact store at
/// `store`. Every durable op the session performs belongs to the store, so
/// op indices map directly onto the CAS publish/lookup protocol.
fn cas_session(store: &Path, p: &Project) -> Result<BuildReport, String> {
    let mut builder = Builder::new(Compiler::new(
        Config::stateless().with_cas_path(store.to_path_buf()),
    ));
    builder.build(p).map_err(|e| e.to_string())
}

fn assert_runs_43(report: &BuildReport, label: &str) {
    let out = sfcc_backend::run(&report.program, "main.main", &[21], VmOptions::default())
        .unwrap_or_else(|e| panic!("{label}: program does not run: {e:?}"));
    assert_eq!(out.return_value, Some(43), "{label}");
}

#[test]
fn quick_cas_bitflip_reads_are_quarantined_never_served() {
    let p = project_v1();
    let store = tmpdir("cas-flip-seed");
    cas_session(&store, &p).unwrap();

    // Record the read ops of a warm session: manifest, artifacts, recency.
    let reads: Vec<u64> = {
        let rec = ffs::record();
        cas_session(&store, &p).unwrap();
        let log = rec.take();
        drop(rec);
        log.iter()
            .enumerate()
            .filter(|(_, r)| r.kind == OpKind::Read)
            .map(|(i, _)| i as u64 + 1)
            .collect()
    };
    assert!(
        reads.len() >= 2,
        "a warm store session reads at least the manifest and an artifact"
    );

    for &k in &reads {
        for bit in [0u64, 8 * 9 + 3] {
            let dir = tmpdir(&format!("cas-flip-k{k}-b{bit}"));
            copy_dir(&store, &dir);
            let report = {
                let _g = ffs::install(FaultPlan::single(Fault::BitflipAt { op: k, bit }));
                cas_session(&dir, &p).unwrap_or_else(|e| {
                    panic!("store corruption must degrade, not fail (op {k} bit {bit}): {e}")
                })
            };
            // The flipped bytes were never accepted: checksum or manifest
            // validation rejected them and the build recompiled locally.
            assert_runs_43(&report, &format!("cas flip op {k} bit {bit}"));
            // The store remains auditable; repair converges.
            sfcc_cas::fsck(&dir).unwrap();
            assert!(sfcc_cas::fsck(&dir).unwrap().clean(), "op {k} bit {bit}");
            let clean = cas_session(&dir, &p).unwrap();
            assert_runs_43(&clean, &format!("post-repair op {k} bit {bit}"));
            cleanup(&dir);
        }
    }
    cleanup(&store);
}

#[test]
fn cas_enospc_at_every_op_degrades_to_local_compilation() {
    let p = project_v1();
    let n = {
        let dir = tmpdir("cas-enospc-rec");
        let rec = ffs::record();
        cas_session(&dir, &p).unwrap();
        let n = rec.take().len() as u64;
        drop(rec);
        cleanup(&dir);
        n
    };
    assert!(n >= 5, "a cold store session performs several ops, got {n}");

    for k in 1..=n {
        let store = tmpdir(&format!("cas-enospc-k{k}"));
        let report = {
            let _g = ffs::install(FaultPlan::single(Fault::EnospcAt(k)));
            cas_session(&store, &p)
                .unwrap_or_else(|e| panic!("ENOSPC at op {k} must not fail the build: {e}"))
        };
        assert_runs_43(&report, &format!("enospc op {k}"));
        sfcc_cas::fsck(&store).unwrap();
        assert!(sfcc_cas::fsck(&store).unwrap().clean(), "op {k}");
        let clean = cas_session(&store, &p).unwrap();
        assert_runs_43(&clean, &format!("post-enospc op {k}"));
        cleanup(&store);
    }
}

#[test]
fn quick_cas_fsck_quarantines_tampered_artifacts() {
    let p = project_v1();
    let store = tmpdir("cas-tamper");
    cas_session(&store, &p).unwrap();

    // Flip one byte in the middle of every published artifact file.
    let mut tampered = 0;
    for dirent in fs::read_dir(&store).unwrap() {
        let path = dirent.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with(".sfcc-cas.a") {
            continue;
        }
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        tampered += 1;
    }
    assert!(tampered >= 3, "the session must have published artifacts");

    // fsck detects every tampered artifact through its checksum +
    // provenance validation, moves it aside, and repairs the manifest.
    let report = sfcc_cas::fsck(&store).unwrap();
    assert_eq!(
        report.quarantined.len(),
        tampered,
        "every tampered artifact must be quarantined: {report:?}"
    );
    assert!(report.repaired_manifest, "{report:?}");
    assert!(sfcc_cas::fsck(&store).unwrap().clean());

    // The repaired store serves nothing stale: a rebuild misses, recompiles
    // locally, republishes, and runs correctly.
    let clean = cas_session(&store, &p).unwrap();
    assert_runs_43(&clean, "post-tamper rebuild");
    cleanup(&store);
}

// ---------------------------------------------------------------------------
// Warm build daemon (`minicc serve`) crash rows
// ---------------------------------------------------------------------------

/// Runs a warm [`BuildService`] session with a fault plan installed on the
/// daemon's connection thread for the span of each request — faultfs plans
/// are thread-local, so a plan installed on the test thread would never
/// reach the daemon. Once a crash fault fires, the wrapper also refuses
/// the shutdown snapshot: the simulated daemon died at op `k` and never
/// got the chance to snapshot.
struct FaultySession {
    inner: BuildService,
    plan: FaultPlan,
    ops: Arc<Mutex<u64>>,
    crashed: bool,
}

impl Service for FaultySession {
    fn handle(&mut self, request: &Request) -> Result<String, String> {
        let guard = ffs::install(self.plan.clone());
        let result = self.inner.handle(request);
        *self.ops.lock().unwrap() = guard.ops_so_far();
        self.crashed = self.crashed || guard.crashed();
        result
    }

    fn snapshot(&mut self) -> Result<(), String> {
        if self.crashed {
            return Ok(());
        }
        self.inner.snapshot()
    }
}

fn faulty_daemon(root: &Path, plan: FaultPlan) -> (DaemonHandle, Arc<Mutex<u64>>) {
    let ops = Arc::new(Mutex::new(0u64));
    let factory_ops = ops.clone();
    let mut options = DaemonOptions::new(root);
    options.socket = root.join("daemon.sock");
    let handle = Daemon::bind(
        options,
        Box::new(move |dir, args| {
            Ok(Box::new(FaultySession {
                inner: BuildService::new(dir, args)?,
                plan: plan.clone(),
                ops: factory_ops.clone(),
                crashed: false,
            }))
        }),
    )
    .expect("bind daemon")
    .spawn();
    (handle, ops)
}

/// One warm `build` request against the daemon at `socket`, writing the
/// image where [`run_session`] does so the [`snapshot`] comparison applies.
fn daemon_build(socket: &Path, dir: &Path) -> Result<(), String> {
    let request = Request {
        cmd: "build".to_string(),
        dir: Some(dir.display().to_string()),
        module: None,
        out: Some(dir.join(IMAGE_NAME).display().to_string()),
        args: ["--stateful", "--fn-cache", "--jobs", "1"]
            .map(String::from)
            .to_vec(),
        prog_args: Vec::new(),
    };
    let reply = roundtrip(socket, &request)?;
    if reply.ok {
        Ok(())
    } else {
        Err(reply.raw)
    }
}

/// Crash the daemon at every durable op of a served incremental build; a
/// cold rebuild must always recover to one of the two no-crash references,
/// byte for byte — the same invariant the cold/warm matrices above demand
/// of CLI sessions. (References come from plain cold sessions:
/// `tests/integration_serve.rs` proves a served build leaves byte-identical
/// artifacts, so `run_session` doubles as the reference generator.)
#[test]
fn quick_daemon_serve_crash_matrix_fast() {
    let d = Durability::Fast;
    let v1 = project_v1();
    let v2 = project_v2();

    let seed = tmpdir("dserve-seed");
    run_session(&seed, &v1, d).unwrap();
    let seed_gen = generation(&seed);

    let w2_dir = tmpdir("dserve-w2");
    copy_dir(&seed, &w2_dir);
    run_session(&w2_dir, &v2, d).unwrap();
    let w2 = snapshot(&w2_dir);
    cleanup(&w2_dir);

    let w3_dir = tmpdir("dserve-w3");
    copy_dir(&seed, &w3_dir);
    run_session(&w3_dir, &v2, d).unwrap();
    run_session(&w3_dir, &v2, d).unwrap();
    let w3 = snapshot(&w3_dir);
    cleanup(&w3_dir);

    // Count the durable ops of one daemon-served incremental build.
    let n = {
        let root = tmpdir("dserve-rec");
        let dir = root.join("p");
        copy_dir(&seed, &dir);
        v2.write_to_dir(&dir).unwrap();
        let (handle, ops) = faulty_daemon(&root, FaultPlan::none());
        daemon_build(&handle.socket(), &dir).unwrap();
        handle.shutdown();
        let n = *ops.lock().unwrap();
        cleanup(&root);
        n
    };
    assert!(
        n >= 8,
        "a served build must perform several durable ops, got {n}"
    );

    for k in 1..=n + 1 {
        let root = tmpdir(&format!("dserve-k{k}"));
        let dir = root.join("p");
        copy_dir(&seed, &dir);
        v2.write_to_dir(&dir).unwrap();
        let (handle, _) = faulty_daemon(&root, FaultPlan::single(Fault::CrashAt(k)));
        let _ = daemon_build(&handle.socket(), &dir);
        handle.shutdown(); // snapshot suppressed when the crash fired

        let committed = generation(&dir) > seed_gen;
        let report = run_session(&dir, &v2, d)
            .unwrap_or_else(|e| panic!("recovery failed after daemon crash at op {k}: {e}"));
        assert_eq!(
            report.recovered_files, 0,
            "a daemon crash must not look like corruption (op {k})"
        );
        let want = if committed { &w3 } else { &w2 };
        assert_snapshots_eq(
            &snapshot(&dir),
            want,
            &format!("daemon crash at op {k}, committed={committed}"),
        );
        cleanup(&root);
    }
    cleanup(&seed);
}

/// A served build whose state commit fails leaves the session dirty; the
/// graceful-shutdown snapshot must retry and land the *completed* build's
/// state — byte-identical to a session that never hit the fault.
#[test]
fn quick_daemon_shutdown_snapshot_retries_a_failed_state_commit() {
    let d = Durability::Fast;
    let refs = cold_references(d, "dserve-dirty");
    let root = tmpdir("dserve-dirty");
    let dir = root.join("p");
    fs::create_dir_all(&dir).unwrap();
    project_v1().write_to_dir(&dir).unwrap();

    // The first rename of a cold served build is the state-commit manifest
    // rename: failing it makes the request error *after* the engine ran.
    let (handle, _) = faulty_daemon(&root, FaultPlan::parse("fail-rename:1").unwrap());
    let err = daemon_build(&handle.socket(), &dir)
        .expect_err("the served build must surface the failed state commit");
    assert!(err.contains("cannot save state"), "{err}");
    assert_eq!(
        generation(&dir),
        0,
        "the failed commit must not have published a manifest"
    );

    handle.shutdown();
    assert!(
        generation(&dir) > 0,
        "the shutdown snapshot must commit the dirty session state"
    );
    // The retried commit is the one-clean-session state, byte for byte.
    let cd = CommitDir::new(&state_base(&dir));
    let m = cd.read_manifest().unwrap().unwrap();
    assert_eq!(
        cd.load_entry(m.entry(persist::STATE_LOGICAL).unwrap())
            .unwrap(),
        refs.f1.state,
        "snapshot state diverges from a never-faulted session"
    );
    assert_eq!(
        cd.load_entry(m.entry(persist::CACHE_LOGICAL).unwrap())
            .unwrap(),
        refs.f1.cache,
        "snapshot cache diverges from a never-faulted session"
    );

    // A cold session accepts the snapshot wholesale and lands on the
    // two-session reference: warm pass slots, no recovery, correct output.
    let report = run_session(&dir, &project_v1(), d).unwrap();
    assert_eq!(report.recovered_files, 0);
    let (_, _, skipped) = report.outcome_totals();
    assert!(skipped > 0, "the snapshot state must warm the next session");
    assert_snapshots_eq(&snapshot(&dir), &refs.f2, "post-snapshot cold session");
    let out = sfcc_backend::run(&report.program, "main.main", &[21], VmOptions::default()).unwrap();
    assert_eq!(out.return_value, Some(43));
    cleanup(&root);
}
