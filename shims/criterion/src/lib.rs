//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! No statistics, plots, or baselines: every benchmark runs `sample_size`
//! timed iterations and prints a mean. `--test` (as passed by
//! `cargo bench -- --test`) runs each benchmark body exactly once, which is
//! what CI uses to keep the benches compiling and launching.

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    /// A driver honoring the process arguments (`--test`; everything else,
    /// e.g. cargo's `--bench`, is ignored).
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the iteration count used per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Opens a named group; benchmarks inside it report as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Defines and immediately runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.parent.sample_size,
            self.parent.test_mode,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(id: &str, samples: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: if test_mode { 1 } else { samples as u64 },
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("Testing {id} ... ok");
    } else {
        let mean = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
        println!("{id}: {:.0} ns/iter (n={})", mean, bencher.iters);
    }
}

/// Times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Input-size hint; accepted for API compatibility, not acted on.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut runs = 0u64;
        criterion.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut criterion = Criterion {
            sample_size: 4,
            test_mode: false,
        };
        let mut setups = 0u64;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("probe", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
    }
}
