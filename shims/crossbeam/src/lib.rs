//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! [`thread::scope`] with crossbeam's calling convention, implemented on
//! `std::thread::scope` (no external dependency, no unsafe code).

pub mod thread {
    //! Scoped threads in the `crossbeam::thread` shape.

    use std::any::Any;

    /// Spawns scoped threads and joins them all before returning.
    ///
    /// Unlike `crossbeam`, a panic in an *unjoined* child propagates as a
    /// panic rather than as `Err`; callers that join every handle (as this
    /// workspace does) observe identical behavior.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this implementation (see above).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    /// A handle for spawning threads that may borrow from the enclosing
    /// scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread. The closure receives the scope again, so
        /// children can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Owned permission to join a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result.
        ///
        /// # Errors
        ///
        /// The child thread's panic payload, if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|n| scope.spawn(move |_| n * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn children_can_spawn_siblings() {
        let v = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
