//! Offline stand-in for the slice of `rand` this workspace uses: a
//! deterministic [`rngs::StdRng`] (splitmix64), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] helpers `gen`, `gen_bool`, and `gen_range` over integer
//! ranges.
//!
//! Not cryptographic and not statistically rigorous (modulo bias is
//! accepted): the workload generator only needs stable, well-mixed
//! pseudo-randomness, and determinism per seed is the property the tests
//! rely on.

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from an integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (which must be in `0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform sample of the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Samples a value uniformly from the type's whole domain.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_ints {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from. Blanket-implemented over
/// [`SampleUniform`] element types, which (as in real `rand`) lets type
/// inference flow from the use site into the range's integer literals.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// Integer types with uniform range sampling.
pub trait SampleUniform: Sized {
    /// Uniform in `start..end`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform in `start..=end`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! sample_uniform_ints {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}
sample_uniform_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen();
            let y: u64 = b.gen();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
