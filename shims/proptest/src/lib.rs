//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Random testing without shrinking: each [`proptest!`] test runs its body
//! over `cases` deterministically generated inputs (seeded from the test's
//! path, so runs are reproducible), and the `prop_assert*` macros are plain
//! assertions. The strategy combinators cover exactly the workspace's
//! usage: [`any`], integer ranges, [`Just`], tuples, [`prop_oneof!`],
//! [`Strategy::prop_map`], [`collection::vec`], and simple one-atom regex
//! string patterns (`.{lo,hi}` and `[class]{lo,hi}`).

use std::marker::PhantomData;
use std::rc::Rc;

pub mod test_runner {
    //! The deterministic RNG driving generation.

    /// Splitmix64 generator; [`proptest!`](crate::proptest) seeds one per
    /// test from the test's module path and name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform index in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot choose from an empty set");
            (self.next_u64() % n as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// The strategy producing only the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// The strategy built by [`prop_oneof!`]: one arm, chosen uniformly, per
/// generated value.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the choice from type-erased arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy, i.e. usable with [`any`].
pub trait Arbitrary {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl Strategy for &str {
    type Value = String;

    /// Interprets the string as a simple regex pattern (see [`mod@pattern`]).
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

pub mod pattern {
    //! Simplified regex-pattern string generation.
    //!
    //! Supports exactly one atom — `.` (printable ASCII) or a `[...]`
    //! character class with ranges and `\`-escapes — followed by a
    //! `{lo,hi}` repetition. Anything else falls back to short printable
    //! text, which keeps fuzz tests meaningful without a regex engine.

    use super::test_runner::TestRng;

    /// Generates one string matching (the supported subset of) `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = match parse(pattern) {
            Some(parsed) => parsed,
            None => ((0x20u8..0x7f).map(char::from).collect(), 0, 16),
        };
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }

    fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let (alphabet, next) = match chars.first()? {
            '.' => ((0x20u8..0x7f).map(char::from).collect(), 1),
            '[' => parse_class(&chars)?,
            _ => return None,
        };
        let (lo, hi) = parse_repeat(&chars[next..])?;
        if alphabet.is_empty() || hi < lo {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    /// Parses `[...]` starting at index 0; yields the alphabet and the
    /// index just past the closing bracket.
    fn parse_class(chars: &[char]) -> Option<(Vec<char>, usize)> {
        let mut set: Vec<char> = Vec::new();
        let mut last_literal = false;
        let mut i = 1;
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '\\' {
                set.push(unescape(*chars.get(i + 1)?));
                last_literal = true;
                i += 2;
            } else if chars[i] == '-' && last_literal && chars.get(i + 1).is_some_and(|&n| n != ']')
            {
                // A range: the low end was just pushed; replace it.
                let lo = set.pop()?;
                let hi = if chars[i + 1] == '\\' {
                    i += 1;
                    unescape(*chars.get(i + 1)?)
                } else {
                    chars[i + 1]
                };
                for code in (lo as u32)..=(hi as u32) {
                    set.extend(char::from_u32(code));
                }
                last_literal = false;
                i += 2;
            } else {
                set.push(chars[i]);
                last_literal = true;
                i += 1;
            }
        }
        if i >= chars.len() {
            return None; // Unterminated class.
        }
        Some((set, i + 1))
    }

    /// Parses a full-pattern-consuming `{lo,hi}` suffix.
    fn parse_repeat(chars: &[char]) -> Option<(usize, usize)> {
        let inner: String = match (chars.first(), chars.last()) {
            (Some('{'), Some('}')) if chars.len() >= 2 => {
                chars[1..chars.len() - 1].iter().collect()
            }
            _ => return None,
        };
        let (lo, hi) = inner.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn unescape(c: char) -> char {
        match c {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            other => other,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::test_runner::TestRng;
    use super::Strategy;

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: each element from `element`, length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The customary `use proptest::prelude::*;` import surface.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a of a test's path; the per-test RNG seed.
#[doc(hidden)]
pub fn __seed_of(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion; a plain `assert!` in this implementation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion; a plain `assert_eq!` in this
/// implementation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Defines property tests over generated inputs.
///
/// Supports an optional `#![proptest_config(...)]` header and any number of
/// test functions whose parameters are either `name in strategy` bindings
/// or `name: Type` shorthand for `any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::new(
                $crate::__seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            for _ in 0..__config.cases {
                $crate::__proptest_bind!(__rng $($params)*);
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident $p:pat in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $i:ident : $t:ty) => {
        let $i: $t = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        let strat = (0usize..8, -100i64..100, 1u32..=3);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 8);
            assert!((-100..100).contains(&b));
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = TestRng::new(2);
        let strat = prop_oneof![Just(1u8), Just(2u8), 3u8..=9];
        let mut seen = [false; 10];
        for _ in 0..300 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3..=9].iter().any(|&s| s));
        assert!(!seen[0]);
    }

    #[test]
    fn class_patterns_respect_alphabet_and_length() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = "[a-c\\t\\-x]{1,5}".generate(&mut rng);
            assert!((1..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc\t-x".contains(c)), "{s:?}");
        }
        for _ in 0..100 {
            let s = ".{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(4);
        let strat =
            crate::collection::vec((any::<bool>(), 0u32..5), 2..7).prop_map(|pairs| pairs.len());
        for _ in 0..50 {
            let n = strat.generate(&mut rng);
            assert!((2..7).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: mixed binding forms, bodies that assert.
        #[test]
        fn macro_binds_all_forms(x in 0i64..10, flag: bool, s in ".{0,4}") {
            prop_assert!((0..10).contains(&x));
            let _ = flag;
            prop_assert!(s.len() <= 4);
            prop_assert_eq!(x - x, 0, "x={}", x);
        }
    }

    proptest! {
        /// Default config and a trailing comma in the parameter list.
        #[test]
        fn macro_accepts_trailing_comma(v: u64,) {
            prop_assert_eq!(v ^ v, 0);
        }
    }
}
