#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — exactly what a PR must pass.
#
#   ci.sh          full gate
#   ci.sh --quick  fast crash-consistency sweep only (the `quick_`-prefixed
#                  subset of the fault-injection matrix: cold crash matrix,
#                  truncation boundaries, recovery counters, durability
#                  sync points)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--quick" ]]; then
    cargo test -q -p sfcc --test integration_crash quick_
    exit 0
fi

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check
# Smoke-run the parallel-scaling sweep (writes BENCH_parallel.json).
cargo run -q -p sfcc-bench --release --bin exp_parallel_scaling -- --quick
# Crash-consistency sweep runs inside `cargo test` above; `--quick` reruns
# just the fast subset for tight edit loops.
