#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — exactly what a PR must pass.
#
#   ci.sh          full gate
#   ci.sh --quick  fast sweep only: the `quick_`-prefixed subset of the
#                  fault-injection matrix (cold crash matrix, truncation
#                  boundaries, recovery counters, durability sync points),
#                  of the observability suite (trace well-formedness,
#                  report schema, metrics consistency, CLI contracts), and
#                  of the dependency-soundness suite (clean-build audit,
#                  per-task-kind seeded lies, E15 fuzz matrix), the
#                  function-granularity suite and its E16 gate, the
#                  parallel byte-identity suite and its E13 fan-out
#                  overhead gate, the shared-artifact-store soundness
#                  suite and its E17 sharing gate, the warm-daemon
#                  differential suite and its E18 warm-latency gate,
#                  plus a traced demo build validated with `trace-check`
#                  and a depcheck run over the demo project
set -euo pipefail
cd "$(dirname "$0")"

# Trace smoke: build the demo with --trace into a scratch copy (so the
# checked-in demo/ stays free of .sfcc-report.json), then validate the
# exported trace's schema and span nesting.
trace_smoke() {
    local scratch
    scratch="$(mktemp -d)"
    trap 'rm -rf "$scratch"' RETURN
    cp demo/*.mc "$scratch"/
    cargo run -q -p sfcc-buildsys --bin minicc -- \
        build "$scratch" --trace "$scratch/trace.json" > /dev/null
    cargo run -q -p sfcc-buildsys --bin minicc -- \
        trace-check "$scratch/trace.json"
}

# Depcheck smoke: audit the demo build's dependency soundness in a scratch
# copy; a nonzero exit (findings or build failure) fails the gate.
depcheck_smoke() {
    local scratch
    scratch="$(mktemp -d)"
    trap 'rm -rf "$scratch"' RETURN
    cp demo/*.mc "$scratch"/
    cargo run -q -p sfcc-buildsys --bin minicc -- depcheck "$scratch"
}

if [[ "${1:-}" == "--quick" ]]; then
    cargo test -q -p sfcc --test integration_crash quick_
    cargo test -q -p sfcc --test integration_trace quick_
    cargo test -q -p sfcc --test integration_depcheck quick_
    cargo test -q -p sfcc-buildsys --test cli quick_
    cargo test -q -p sfcc-bench --lib quick_every_mutation_is_caught_before_divergence
    cargo test -q -p sfcc --test integration_fngrain
    cargo test -q -p sfcc-bench --lib quick_one_function_edit_beats_module_grain_five_fold
    cargo test -q -p sfcc --test integration_parallel quick_
    cargo test -q -p sfcc --test integration_cas quick_
    cargo test -q -p sfcc-bench --lib quick_followers_hit_the_shared_surface_byte_identically
    cargo test -q -p sfcc --test integration_serve quick_
    cargo test -q -p sfcc-bench --lib quick_warm_serves_beat_cold_sessions_and_nothing_is_rejected
    # Fan-out overhead smoke: jobs=8 optimize time must stay within 5% of
    # jobs=1 on the single-module sweep (pure overhead on a 1-core host).
    cargo run -q -p sfcc-bench --release --bin exp_parallel_scaling -- --quick --gate-overhead 5
    # Warm-latency smoke: a warm daemon serve of a one-function edit must
    # be at least 3x faster (p50) than an equivalent cold CLI session.
    cargo run -q -p sfcc-bench --release --bin exp_serve_warm -- --quick --gate-speedup 3
    trace_smoke
    depcheck_smoke
    exit 0
fi

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check
trace_smoke
depcheck_smoke
# Smoke-run the parallel-scaling, observability-overhead, and
# dependency-soundness sweeps, plus the function-granularity,
# shared-store, and warm-daemon comparisons (write BENCH_parallel.json /
# BENCH_trace.json / BENCH_depcheck.json / BENCH_fngrain.json /
# BENCH_cas.json / BENCH_serve.json).
cargo run -q -p sfcc-bench --release --bin exp_parallel_scaling -- --quick --gate-overhead 5
cargo run -q -p sfcc-bench --release --bin exp_trace_overhead -- --quick
cargo run -q -p sfcc-bench --release --bin exp_depcheck_fuzz -- --quick
cargo run -q -p sfcc-bench --release --bin exp_fngrain -- --quick
cargo run -q -p sfcc-bench --release --bin exp_cas_sharing -- --quick
cargo run -q -p sfcc-bench --release --bin exp_serve_warm -- --quick --gate-speedup 3
# Crash-consistency and golden-trace sweeps run inside `cargo test` above;
# `--quick` reruns just the fast subsets for tight edit loops.
