#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — exactly what a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check
# Smoke-run the parallel-scaling sweep (writes BENCH_parallel.json).
cargo run -q -p sfcc-bench --release --bin exp_parallel_scaling -- --quick
