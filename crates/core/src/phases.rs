//! The compilation pipeline, one phase at a time.
//!
//! [`Compiler::compile`](crate::Compiler::compile) runs a module through
//! frontend → lowering → optimization → codegen as one unit. Incremental
//! engines want the same phases *individually* — a body-only edit should
//! re-run optimize+codegen without re-running the frontend of anything
//! else — so each phase lives here as a free function over explicit state,
//! and the session type re-exposes them as task-callable methods
//! (`Compiler::phase_*`). `compile` is a composition of these functions;
//! there is exactly one implementation of every phase.

use crate::config::Mode;
use crate::fncache::{context_fingerprints, FunctionCache};
use sfcc_backend::{compile_object, CodeObject};
use sfcc_frontend::{CheckedModule, Diagnostics, ModuleEnv, SourceFile};
use sfcc_passes::{
    run_pipeline, NeverSkip, PassQuery, Pipeline, PipelineTrace, RunOptions, SkipOracle,
};
use sfcc_state::{DbOracle, StateDb};
use std::time::Instant;

use crate::compiler::CompileError;

/// Lexes, parses, and type-checks one module against its import
/// environment. Returns the checked module and the phase's wall time (ns).
///
/// # Errors
///
/// [`CompileError::Frontend`] with rendered diagnostics for malformed
/// source.
pub fn frontend(
    name: &str,
    source: &str,
    env: &ModuleEnv,
) -> Result<(CheckedModule, u64), CompileError> {
    let t = Instant::now();
    let mut diags = Diagnostics::new();
    let checked = sfcc_frontend::parse_and_check(name, source, env, &mut diags);
    let elapsed = t.elapsed().as_nanos() as u64;
    match checked {
        Some(checked) => Ok((checked, elapsed)),
        None => {
            let file = SourceFile::new(format!("{name}.mc"), source);
            Err(CompileError::Frontend {
                rendered: diags.render_all(&file),
                errors: diags.error_count(),
            })
        }
    }
}

/// Lowers a checked module to IR. Returns the IR and the phase's wall time
/// (ns).
pub fn lower(checked: &CheckedModule, env: &ModuleEnv) -> (sfcc_ir::Module, u64) {
    let t = Instant::now();
    let ir = sfcc_ir::lower_module(checked, env);
    (ir, t.elapsed().as_nanos() as u64)
}

/// What [`optimize`] reports alongside the transformed IR.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// Per-pass instrumentation of the pipeline run.
    pub trace: PipelineTrace,
    /// Wall time of the pass pipeline itself (ns).
    pub middle_ns: u64,
    /// Wall time of function-cache bookkeeping (ns).
    pub state_ns: u64,
}

/// An oracle layer that force-skips every slot of cache-hit functions so
/// their (already optimized, swapped-in) bodies pass through untouched.
struct CacheHits<'a> {
    hits: std::collections::HashSet<String>,
    inner: &'a dyn SkipOracle,
}

impl SkipOracle for CacheHits<'_> {
    fn should_skip(&self, query: &PassQuery<'_>) -> bool {
        self.hits.contains(query.function) || self.inner.should_skip(query)
    }
}

/// Runs the optimization pipeline over `ir` in place: function-cache
/// lookup/population (when a cache is supplied), skip-oracle construction
/// from the dormancy state, and the pass pipeline itself. Does **not**
/// ingest the trace — recording dormancy is the caller's (sequenced)
/// responsibility, so this function can run against an immutable state
/// snapshot on worker threads.
pub fn optimize(
    ir: &mut sfcc_ir::Module,
    mode: Mode,
    pipeline: &Pipeline,
    state: &StateDb,
    options: RunOptions,
    mut cache: Option<&mut FunctionCache>,
) -> OptimizeOutcome {
    // Function-cache lookup: swap cached optimized bodies in and mark them
    // so the pipeline skips them entirely.
    let t = Instant::now();
    let mut hits = std::collections::HashSet::new();
    let mut contexts = std::collections::HashMap::new();
    if let Some(cache) = cache.as_deref_mut() {
        contexts = context_fingerprints(ir);
        for func in &mut ir.functions {
            if let Some(&ctx) = contexts.get(&func.name) {
                if let Some(mut cached) = cache.lookup(ctx) {
                    cached.name = func.name.clone();
                    *func = cached;
                    hits.insert(func.name.clone());
                }
            }
        }
    }
    let mut state_ns = t.elapsed().as_nanos() as u64;

    let t = Instant::now();
    let base: Box<dyn SkipOracle> = match mode {
        Mode::Stateless => Box::new(NeverSkip),
        Mode::Stateful(policy) => Box::new(DbOracle::new(state, policy)),
    };
    let trace = if hits.is_empty() {
        run_pipeline(ir, pipeline, base.as_ref(), options)
    } else {
        let oracle = CacheHits {
            hits: hits.clone(),
            inner: base.as_ref(),
        };
        run_pipeline(ir, pipeline, &oracle, options)
    };
    let middle_ns = t.elapsed().as_nanos() as u64;

    // Populate the cache with freshly optimized cacheable functions.
    let t = Instant::now();
    if let Some(cache) = cache {
        for func in &ir.functions {
            if hits.contains(&func.name) {
                continue;
            }
            if let Some(&ctx) = contexts.get(&func.name) {
                cache.insert(ctx, func.clone());
            }
        }
    }
    state_ns += t.elapsed().as_nanos() as u64;

    OptimizeOutcome {
        trace,
        middle_ns,
        state_ns,
    }
}

/// Compiles optimized IR to an object file. Returns the object and the
/// phase's wall time (ns).
///
/// # Errors
///
/// [`CompileError::Backend`] when codegen fails (an internal bug, not bad
/// input).
pub fn codegen(ir: &sfcc_ir::Module) -> Result<(CodeObject, u64), CompileError> {
    let t = Instant::now();
    let object = compile_object(ir).map_err(|e| CompileError::Backend(e.to_string()))?;
    Ok((object, t.elapsed().as_nanos() as u64))
}
