//! The compilation pipeline, one phase at a time.
//!
//! [`Compiler::compile`](crate::Compiler::compile) runs a module through
//! frontend → lowering → optimization → codegen as one unit. Incremental
//! engines want the same phases *individually* — a body-only edit should
//! re-run optimize+codegen without re-running the frontend of anything
//! else — so each phase lives here as a free function over explicit state,
//! and the session type re-exposes them as task-callable methods
//! (`Compiler::phase_*`). `compile` is a composition of these functions;
//! there is exactly one implementation of every phase.

use crate::config::Mode;
use crate::fncache::{context_fingerprints, FunctionCache};
use sfcc_backend::{compile_object, CodeObject};
use sfcc_cas::CasStore;
use sfcc_frontend::{CheckedModule, Diagnostics, ModuleEnv, SourceFile};
use sfcc_ir::{Fingerprint, Function};
use sfcc_passes::{
    run_pipeline, run_pipeline_parallel, NeverSkip, PassQuery, Pipeline, PipelineTrace, RunOptions,
    SkipOracle,
};
use sfcc_pool::{run_indexed, PoolScope};
use sfcc_state::{DbOracle, StateDb};
use std::sync::Arc;
use std::time::Instant;

use crate::compiler::CompileError;

/// Lexes, parses, and type-checks one module against its import
/// environment. Returns the checked module and the phase's wall time (ns).
///
/// # Errors
///
/// [`CompileError::Frontend`] with rendered diagnostics for malformed
/// source.
pub fn frontend(
    name: &str,
    source: &str,
    env: &ModuleEnv,
) -> Result<(CheckedModule, u64), CompileError> {
    let t = Instant::now();
    let mut diags = Diagnostics::new();
    let checked = sfcc_frontend::parse_and_check(name, source, env, &mut diags);
    let elapsed = t.elapsed().as_nanos() as u64;
    match checked {
        Some(checked) => Ok((checked, elapsed)),
        None => {
            let file = SourceFile::new(format!("{name}.mc"), source);
            Err(CompileError::Frontend {
                rendered: diags.render_all(&file),
                errors: diags.error_count(),
            })
        }
    }
}

/// Lowers a checked module to IR. Returns the IR and the phase's wall time
/// (ns).
pub fn lower(checked: &CheckedModule, env: &ModuleEnv) -> (sfcc_ir::Module, u64) {
    let t = Instant::now();
    let ir = sfcc_ir::lower_module(checked, env);
    (ir, t.elapsed().as_nanos() as u64)
}

/// What [`optimize`] reports alongside the transformed IR.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// Per-pass instrumentation of the pipeline run.
    pub trace: PipelineTrace,
    /// Wall time of the pass pipeline itself (ns).
    pub middle_ns: u64,
    /// Wall time of function-cache bookkeeping (ns).
    pub state_ns: u64,
    /// Freshly optimized cacheable functions, keyed by context fingerprint.
    /// [`optimize`] does **not** insert them — the caller applies them at a
    /// deterministic point (module or wave boundary) so cache visibility,
    /// and therefore every downstream trace, is identical for every `--jobs`
    /// value. Apply via [`crate::Compiler::apply_cache_inserts`].
    pub cache_inserts: Vec<(Fingerprint, Function)>,
}

/// An oracle layer that force-skips every slot of cache-hit functions so
/// their (already optimized, swapped-in) bodies pass through untouched.
struct CacheHits<'env> {
    hits: std::collections::HashSet<String>,
    inner: Arc<dyn SkipOracle + Send + Sync + 'env>,
}

impl SkipOracle for CacheHits<'_> {
    fn should_skip(&self, query: &PassQuery<'_>) -> bool {
        self.hits.contains(query.function) || self.inner.should_skip(query)
    }
}

/// Runs the optimization pipeline over `ir` in place: function-cache
/// lookup (when a cache is supplied), skip-oracle construction from the
/// dormancy state, and the pass pipeline itself — on `pool`'s workers at
/// function granularity when one is supplied. Does **not** ingest the trace
/// or populate the cache — recording dormancy and applying
/// [`OptimizeOutcome::cache_inserts`] are the caller's (sequenced)
/// responsibility, so this function can run against immutable state and
/// cache snapshots on worker threads.
#[allow(clippy::too_many_arguments)]
pub fn optimize<'env>(
    ir: &mut sfcc_ir::Module,
    mode: Mode,
    pipeline: &'env Pipeline,
    state: &'env StateDb,
    options: RunOptions,
    cache: Option<&'env FunctionCache>,
    cas: Option<&'env CasStore>,
    pool: Option<&PoolScope<'env>>,
) -> OptimizeOutcome {
    // The dormancy state is a tracked input of the optimize task
    // (`state:m`); this is its actual read, noted for depcheck attribution
    // in both modes — stateless builds consult the state to decide *not*
    // to skip, which is still an observation of it.
    sfcc_faultfs::note_access(&format!("state:{}", ir.name));
    optimize_prenoted(ir, mode, pipeline, state, options, cache, cas, pool)
}

/// [`optimize`] for a *restricted* module (one carrying only the demanded
/// functions' call closure): identical pipeline semantics, but **no**
/// module-level `state:m` access note. Function-grained callers attribute
/// the dormancy-state read per function (`state:m::f`) themselves, inside
/// each function's own task scope — a batch restricted run executes outside
/// any task scope, so a note emitted here would either be unattributed
/// (batched) or mis-attributed to whichever task happened to be active
/// (solo), and depcheck would flag phantom context-function reads.
#[allow(clippy::too_many_arguments)]
pub fn optimize_fn_grained<'env>(
    ir: &mut sfcc_ir::Module,
    mode: Mode,
    pipeline: &'env Pipeline,
    state: &'env StateDb,
    options: RunOptions,
    cache: Option<&'env FunctionCache>,
    cas: Option<&'env CasStore>,
    pool: Option<&PoolScope<'env>>,
) -> OptimizeOutcome {
    optimize_prenoted(ir, mode, pipeline, state, options, cache, cas, pool)
}

/// How a function's pre-pipeline lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LookupHit {
    /// No cached body anywhere: the pipeline must run.
    Miss,
    /// Served by the in-process [`FunctionCache`].
    Local,
    /// Served by the shared artifact store; the local cache gets warmed
    /// with it at the next insert boundary.
    Shared,
}

#[allow(clippy::too_many_arguments)]
fn optimize_prenoted<'env>(
    ir: &mut sfcc_ir::Module,
    mode: Mode,
    pipeline: &'env Pipeline,
    state: &'env StateDb,
    options: RunOptions,
    cache: Option<&'env FunctionCache>,
    cas: Option<&'env CasStore>,
    pool: Option<&PoolScope<'env>>,
) -> OptimizeOutcome {
    // Function-cache lookup: swap cached optimized bodies in and mark them
    // so the pipeline skips them entirely. The shared store (CAS) is the
    // second level: consulted only on a local miss. Lookups never mutate
    // entries (only counters, recency, and referenced bits), so running
    // them concurrently — here and across modules of one wave — cannot
    // change what any module observes.
    let t = Instant::now();
    let mut hits = std::collections::HashSet::new();
    let mut shared_hits = std::collections::HashSet::new();
    let mut contexts = std::collections::HashMap::new();
    if cache.is_some() || cas.is_some() {
        contexts = context_fingerprints(ir);
        let shared_contexts = Arc::new(contexts.clone());
        let module_name = ir.name.clone();
        let marked: Vec<(Function, LookupHit)> = std::mem::take(&mut ir.functions)
            .into_iter()
            .map(|f| (f, LookupHit::Miss))
            .collect();
        let order: Vec<usize> = (0..marked.len()).collect();
        let marked = run_indexed(pool, marked, &order, move |_, (func, hit)| {
            let Some(&ctx) = shared_contexts.get(&func.name) else {
                return;
            };
            if let Some(mut cached) = cache.and_then(|cache| cache.lookup(ctx)) {
                cached.name = func.name.clone();
                *func = cached;
                *hit = LookupHit::Local;
            } else if let Some(served) =
                cas.and_then(|cas| cas.lookup(&module_name, &func.name, ctx))
            {
                *func = served;
                *hit = LookupHit::Shared;
            }
        });
        ir.functions = Vec::with_capacity(marked.len());
        for (func, hit) in marked {
            if hit != LookupHit::Miss {
                hits.insert(func.name.clone());
            }
            if hit == LookupHit::Shared {
                shared_hits.insert(func.name.clone());
            }
            ir.functions.push(func);
        }
    }
    let mut state_ns = t.elapsed().as_nanos() as u64;

    let t = Instant::now();
    let base: Arc<dyn SkipOracle + Send + Sync + 'env> = match mode {
        Mode::Stateless => Arc::new(NeverSkip),
        Mode::Stateful(policy) => Arc::new(DbOracle::new(state, policy)),
    };
    let oracle: Arc<dyn SkipOracle + Send + Sync + 'env> = if hits.is_empty() {
        base
    } else {
        Arc::new(CacheHits {
            hits: hits.clone(),
            inner: base,
        })
    };
    let trace = match pool {
        Some(pool) => run_pipeline_parallel(ir, pipeline, oracle, options, pool),
        None => run_pipeline(ir, pipeline, oracle.as_ref(), options),
    };
    let middle_ns = t.elapsed().as_nanos() as u64;

    // Collect cacheable functions for the caller to insert at the next
    // deterministic boundary: freshly optimized ones, plus shared-store
    // hits (which warm the local cache; re-publishing an existing key is
    // a no-op, the store is content-addressed).
    let t = Instant::now();
    let mut cache_inserts = Vec::new();
    if cache.is_some() || cas.is_some() {
        for func in &ir.functions {
            if hits.contains(&func.name) && !shared_hits.contains(&func.name) {
                continue;
            }
            if let Some(&ctx) = contexts.get(&func.name) {
                cache_inserts.push((ctx, func.clone()));
            }
        }
    }
    state_ns += t.elapsed().as_nanos() as u64;

    OptimizeOutcome {
        trace,
        middle_ns,
        state_ns,
        cache_inserts,
    }
}

/// Compiles optimized IR to an object file. Returns the object and the
/// phase's wall time (ns).
///
/// # Errors
///
/// [`CompileError::Backend`] when codegen fails (an internal bug, not bad
/// input).
pub fn codegen(ir: &sfcc_ir::Module) -> Result<(CodeObject, u64), CompileError> {
    let t = Instant::now();
    let object = compile_object(ir).map_err(|e| CompileError::Backend(e.to_string()))?;
    Ok((object, t.elapsed().as_nanos() as u64))
}
