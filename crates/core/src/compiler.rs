//! The compiler session: front end → lowering → (skippable) pass pipeline →
//! object code, with dormancy recording in stateful mode.

use crate::config::{Config, Mode, OptLevel};
use crate::fncache::{CacheStats, FunctionCache};
use crate::persist::{self, RecoveryEvent};
use crate::phases::{self, OptimizeOutcome};
use sfcc_backend::CodeObject;
use sfcc_cas::{CasStats, CasStore, KeyComponents, ServedStamps, DEFAULT_BACKEND_VERSION};
use sfcc_codec::fnv64;
use sfcc_frontend::{CheckedModule, Diagnostics, ModuleEnv, ModuleInterface, SourceFile};
use sfcc_ir::Fingerprint;
use sfcc_passes::{
    default_pipeline, minimal_pipeline, scalar_pipeline, FunctionTrace, Pipeline, PipelineTrace,
    RunOptions,
};
use sfcc_pool::PoolScope;
use sfcc_state::{statefile, DecodeError, SkipPolicy, StateDb};
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::sync::Mutex;
use std::time::Instant;

/// Wall-clock time per compilation phase, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Lexing, parsing, semantic analysis.
    pub frontend_ns: u64,
    /// AST → IR lowering.
    pub lower_ns: u64,
    /// The optimization pipeline (including skipped-pass bookkeeping).
    pub middle_ns: u64,
    /// Codegen to object code.
    pub backend_ns: u64,
    /// State lookup + ingestion (stateful mode overhead).
    pub state_ns: u64,
}

impl PhaseTimings {
    /// Total across all phases.
    pub fn total_ns(&self) -> u64 {
        self.frontend_ns + self.lower_ns + self.middle_ns + self.backend_ns + self.state_ns
    }
}

/// Everything a successful compilation produces.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The relocatable object code.
    pub object: CodeObject,
    /// The optimized IR (useful for inspection and tests).
    pub ir: sfcc_ir::Module,
    /// The module's exported interface.
    pub interface: ModuleInterface,
    /// Per-pass instrumentation.
    pub trace: PipelineTrace,
    /// Phase timings.
    pub timings: PhaseTimings,
}

impl CompileOutput {
    /// `(active, dormant, skipped)` pass-slot totals.
    pub fn outcome_totals(&self) -> (usize, usize, usize) {
        self.trace.outcome_totals()
    }
}

/// A compilation failure.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The source did not parse or type-check; carries rendered diagnostics.
    Frontend {
        /// Human-readable diagnostics.
        rendered: String,
        /// Number of errors.
        errors: usize,
    },
    /// Code generation failed (indicates an internal bug, not bad input).
    Backend(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend { rendered, errors } => {
                write!(f, "{rendered}\n{errors} error(s)")
            }
            CompileError::Backend(msg) => write!(f, "backend failure: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Extracts a module's interface by parsing only (no type checking). Used by
/// build systems to seed the [`ModuleEnv`] before compiling dependents.
pub fn extract_interface(name: &str, source: &str) -> Result<ModuleInterface, CompileError> {
    let mut diags = Diagnostics::new();
    let ast = sfcc_frontend::parser::parse(name, source, &mut diags);
    if diags.has_errors() {
        let file = SourceFile::new(format!("{name}.mc"), source);
        return Err(CompileError::Frontend {
            rendered: diags.render_all(&file),
            errors: diags.error_count(),
        });
    }
    Ok(ModuleInterface::of(&ast))
}

/// A compiler session.
///
/// A session corresponds to one long-lived compiler process (or one state
/// directory on disk): in stateful mode the dormancy database persists
/// across [`Compiler::compile`] calls and, when
/// [`Config::state_path`] is set, across sessions via
/// [`Compiler::save_state`].
pub struct Compiler {
    config: Config,
    pipeline: Pipeline,
    pipeline_hash: Fingerprint,
    state: StateDb,
    /// A snapshot of `state` taken at build-session start
    /// ([`Compiler::freeze_state`]). While present, skip decisions read the
    /// snapshot and per-function ingests mutate the live database, so no
    /// optimize task can observe a sibling's same-session ingest — skip
    /// decisions become independent of demand order and `--jobs`.
    frozen: Option<StateDb>,
    /// Modules whose build counter was already bumped this frozen session
    /// (per-function ingests bump once per module per session, mirroring the
    /// one bump a whole-module ingest performs).
    session_bumped: HashSet<String>,
    state_load_error: Option<DecodeError>,
    fn_cache: FunctionCache,
    /// The shared content-addressed artifact store, consulted below the
    /// in-process function cache ([`Config::cas_path`]). `None` when
    /// disabled or when opening the store failed (the session degrades to
    /// cache-only; a broken store must never fail a build).
    cas: Option<CasStore>,
    recovery_events: Vec<RecoveryEvent>,
}

impl fmt::Debug for Compiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Compiler")
            .field("mode", &self.config.mode.label())
            .field("functions_tracked", &self.state.function_count())
            .finish()
    }
}

impl Compiler {
    /// Creates a session, loading persisted state when configured.
    pub fn new(config: Config) -> Self {
        let pipeline = match config.opt_level {
            OptLevel::O0 => minimal_pipeline(),
            OptLevel::O1 => scalar_pipeline(),
            OptLevel::O2 => default_pipeline(),
        };
        let pipeline_hash = StateDb::pipeline_hash(&pipeline.slot_names());
        let want_state = config.mode.is_stateful();
        let want_cache = config.function_cache;
        let (state, state_load_error, fn_cache, recovery_events) = match &config.state_path {
            Some(path) if want_state || want_cache => {
                let loaded = persist::load(path, want_state, want_cache);
                (loaded.db, loaded.db_error, loaded.cache, loaded.events)
            }
            _ => (StateDb::new(), None, FunctionCache::new(), Vec::new()),
        };
        let cas = config.cas_path.as_ref().and_then(|dir| {
            // The key's flag digest covers exactly the configuration that
            // changes generated code and is *not* already in the pipeline
            // fingerprint: mode (skip policy) and verification. The opt
            // level selects the pass pipeline, so the pipeline component
            // keys it; cache toggles and job counts are excluded by
            // design — they are proven not to change bytes.
            let flag_repr = format!("mode={};verify={}", config.mode.label(), config.verify_each);
            let components = KeyComponents {
                pipeline: pipeline_hash,
                flags: fnv64(flag_repr.as_bytes()),
                backend: config
                    .cas_backend_version
                    .unwrap_or(DEFAULT_BACKEND_VERSION),
                flag_repr,
                pipeline_repr: pipeline.slot_names().join(","),
            };
            CasStore::open_dir(dir, components, config.durability)
                .ok()
                .map(|mut store| {
                    store.set_budget(config.cas_budget);
                    store
                })
        });
        Compiler {
            config,
            pipeline,
            pipeline_hash,
            state,
            frozen: None,
            session_bumped: HashSet::new(),
            state_load_error,
            fn_cache,
            cas,
            recovery_events,
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Why the last state load fell back to a cold start, if it did.
    pub fn state_load_error(&self) -> Option<DecodeError> {
        self.state_load_error
    }

    /// Every quarantine / cold-start decision taken while loading this
    /// session's persistent state (see [`crate::persist`]).
    pub fn recovery_events(&self) -> &[RecoveryEvent] {
        &self.recovery_events
    }

    /// Read access to the dormancy database.
    pub fn state(&self) -> &StateDb {
        &self.state
    }

    /// Serialized size of the current state (experiment E5).
    pub fn state_bytes(&self) -> Vec<u8> {
        statefile::to_bytes(&self.state)
    }

    /// Names of the pipeline's pass slots.
    pub fn pipeline_slots(&self) -> Vec<&'static str> {
        self.pipeline.slot_names()
    }

    /// Compiles one module, on the configured number of worker threads
    /// ([`Config::jobs`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Frontend`] for malformed source.
    pub fn compile(
        &mut self,
        name: &str,
        source: &str,
        env: &ModuleEnv,
    ) -> Result<CompileOutput, CompileError> {
        let options = RunOptions {
            verify_each: self.config.verify_each,
        };
        let cache = self.config.function_cache.then_some(&self.fn_cache);
        let cas = self.cas.as_ref();
        let mode = self.config.mode;
        let pipeline = &self.pipeline;
        let state = &self.state;
        let jobs = sfcc_pool::effective_jobs(self.config.jobs);
        let (mut output, inserts) = if jobs > 1 {
            sfcc_pool::scope(jobs, |ps| {
                compile_unit(
                    name,
                    source,
                    env,
                    mode,
                    pipeline,
                    state,
                    options,
                    cache,
                    cas,
                    Some(ps),
                )
            })?
        } else {
            compile_unit(
                name, source, env, mode, pipeline, state, options, cache, cas, None,
            )?
        };
        self.apply_cache_inserts(inserts);
        if self.config.mode.is_stateful() {
            let t = Instant::now();
            self.state.ingest(&output.trace, self.pipeline_hash);
            output.timings.state_ns += t.elapsed().as_nanos() as u64;
        }
        Ok(output)
    }

    /// Hit/miss counters of the function-level IR cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.fn_cache.stats()
    }

    /// Publishes the session's cache, dormancy-state, and recovery
    /// telemetry as gauges in `registry` (the build driver calls this once
    /// per build, after compilation finishes).
    pub fn record_metrics(&self, registry: &sfcc_trace::Registry) {
        let cache = self.cache_stats();
        registry.gauge_set("cache.hits", cache.hits);
        registry.gauge_set("cache.misses", cache.misses);
        registry.gauge_set("cache.evictions", cache.evictions);
        registry.gauge_set("cache.entries", cache.entries as u64);
        registry.gauge_set("state.functions", self.state.function_count() as u64);
        registry.gauge_set("state.dormant_slots", self.state.dormant_slot_count());
        registry.gauge_set("state.recorded_skips", self.state.total_recorded_skips());
        registry.gauge_set("recovery.events", self.recovery_events.len() as u64);
        let cas = self.cas_stats().unwrap_or_default();
        registry.gauge_set("cas.enabled", self.cas.is_some() as u64);
        registry.gauge_set("cas.hits", cas.hits);
        registry.gauge_set("cas.misses", cas.misses);
        registry.gauge_set("cas.evictions", cas.evictions);
        registry.gauge_set("cas.publishes", cas.publishes);
        registry.gauge_set("cas.entries", cas.entries);
        registry.gauge_set("cas.bytes", cas.bytes);
    }

    /// The shared artifact store, when the session has one.
    pub fn cas(&self) -> Option<&CasStore> {
        self.cas.as_ref()
    }

    /// Counters of the shared artifact store, when the session has one.
    pub fn cas_stats(&self) -> Option<CasStats> {
        self.cas.as_ref().map(|c| c.stats())
    }

    /// Starts a fresh shared-store session: clears per-session serve
    /// records and refreshes the view of other processes' commits. The
    /// build driver calls this once per build.
    pub fn cas_begin_session(&self) {
        if let Some(cas) = &self.cas {
            cas.begin_session();
        }
    }

    /// Forwards adversarial key-component drops to the shared store (test
    /// hook; see [`CasStore::set_key_drops`]).
    pub fn cas_set_key_drops(&self, components: &[String]) {
        if let Some(cas) = &self.cas {
            cas.set_key_drops(components);
        }
    }

    /// The shared store's serve record for `module::function` this
    /// session, if its lookup hit.
    pub fn cas_served(&self, module: &str, function: &str) -> Option<ServedStamps> {
        self.cas.as_ref().and_then(|c| c.served(module, function))
    }

    /// The honest store-key stamp for a context fingerprint (what a sound
    /// serve record must claim). `None` without a store.
    pub fn cas_honest_stamp(&self, fn_ctx: Fingerprint) -> Option<u64> {
        self.cas.as_ref().map(|c| c.honest_stamp(fn_ctx))
    }

    /// Compiles several independent modules, possibly in parallel.
    ///
    /// Mirrors `make -jN` invoking several compiler processes against one
    /// shared state directory: all units read the *same* state and cache
    /// snapshots (they are independent, so ordering cannot matter), and the
    /// resulting traces and cache entries are applied sequentially, in unit
    /// order, afterwards.
    ///
    /// Module tasks and the function-level tasks they fan out into share
    /// one [`sfcc_pool`] scope sized by [`Config::jobs`] (falling back to
    /// the machine's core count) — no `jobs × functions` oversubscription.
    ///
    /// Units are `(module_name, source, env)` triples; results come back in
    /// the same order.
    pub fn compile_batch(
        &mut self,
        units: &[(&str, &str, &ModuleEnv)],
        parallel: bool,
    ) -> Vec<Result<CompileOutput, CompileError>> {
        if !parallel || units.len() <= 1 {
            return units
                .iter()
                .map(|(name, source, env)| self.compile(name, source, env))
                .collect();
        }

        // Parallel pipelines run against immutable state/cache snapshots.
        let options = RunOptions {
            verify_each: self.config.verify_each,
        };
        let mode = self.config.mode;
        let pipeline = &self.pipeline;
        let state = &self.state;
        let cache = self.config.function_cache.then_some(&self.fn_cache);
        let cas = self.cas.as_ref();
        let jobs = sfcc_pool::effective_jobs(if self.config.jobs > 1 {
            self.config.jobs
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
        type UnitResult =
            Result<(CompileOutput, Vec<(Fingerprint, sfcc_ir::Function)>), CompileError>;
        let slots: Vec<Mutex<Option<UnitResult>>> =
            units.iter().map(|_| Mutex::new(None)).collect();
        sfcc_pool::scope(jobs, |ps| {
            for (i, (name, source, env)) in units.iter().enumerate() {
                let slots = &slots;
                ps.spawn(move |ps| {
                    let r = compile_unit(
                        name,
                        source,
                        env,
                        mode,
                        pipeline,
                        state,
                        options,
                        cache,
                        cas,
                        Some(ps),
                    );
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
            // The scope drains every task before returning.
        });
        let mut results = Vec::with_capacity(units.len());
        for slot in slots {
            let unit = slot.into_inner().unwrap().expect("every unit task ran");
            match unit {
                Ok((output, inserts)) => {
                    self.apply_cache_inserts(inserts);
                    results.push(Ok(output));
                }
                Err(e) => results.push(Err(e)),
            }
        }

        if self.config.mode.is_stateful() {
            for result in results.iter().flatten() {
                self.state.ingest(&result.trace, self.pipeline_hash);
            }
        }
        results
    }

    /// Applies deferred [`crate::OptimizeOutcome::cache_inserts`] to the
    /// session's function cache and publishes them to the shared store (a
    /// no-op when both are disabled). Callers invoke this at a
    /// deterministic boundary — after a module in sequential compilation,
    /// after a wave in the incremental driver — so cache visibility does
    /// not depend on `--jobs`. Local inserts replace same-key entries in
    /// place (byte-identical by the cache-key invariant) and the store
    /// skips already-published keys, so a shared-store hit racing a local
    /// recomputation of the same key converges to identical bytes for
    /// every `--jobs` value.
    pub fn apply_cache_inserts(
        &self,
        inserts: impl IntoIterator<Item = (Fingerprint, sfcc_ir::Function)>,
    ) {
        if !self.config.function_cache && self.cas.is_none() {
            return;
        }
        let inserts: Vec<(Fingerprint, sfcc_ir::Function)> = inserts.into_iter().collect();
        if self.config.function_cache {
            for (key, func) in &inserts {
                self.fn_cache.insert(*key, func.clone());
            }
        }
        if let Some(cas) = &self.cas {
            cas.publish(&inserts);
        }
    }

    /// Persists the state database (and function cache) to the configured
    /// path, atomically: both artifacts become visible together in one
    /// manifest commit (see [`crate::persist`]). Returns the generation
    /// number of the committed manifest, `0` when nothing was saved (no
    /// configured path, or a stateless session without a function cache).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; does nothing (successfully) without a
    /// configured path or in stateless mode.
    pub fn save_state(&self) -> io::Result<u64> {
        if let Some(path) = &self.config.state_path {
            return persist::save(
                path,
                self.config.mode.is_stateful().then_some(&self.state),
                self.config.function_cache.then_some(&self.fn_cache),
                self.config.durability,
            );
        }
        Ok(0)
    }

    /// Drops all accumulated state (for experiments that need a cold start).
    pub fn reset_state(&mut self) {
        self.state = StateDb::new();
    }

    /// Replaces the skip policy, keeping accumulated state (for ablations).
    pub fn set_policy(&mut self, policy: SkipPolicy) {
        self.config.mode = Mode::Stateful(policy);
    }

    // --- Phase-level API (engine tasks) -------------------------------
    //
    // Incremental engines (sfcc-buildsys's query tasks) call the pipeline
    // one phase at a time, so a build can stop as soon as a phase's output
    // fingerprint is unchanged. `compile` composes the same functions.

    /// Phase 1: parse + type-check (engine task `frontend`). Returns the
    /// checked module and the phase's wall time (ns).
    ///
    /// # Errors
    ///
    /// [`CompileError::Frontend`] for malformed source.
    pub fn phase_frontend(
        &self,
        name: &str,
        source: &str,
        env: &ModuleEnv,
    ) -> Result<(CheckedModule, u64), CompileError> {
        phases::frontend(name, source, env)
    }

    /// Phase 2: AST → IR lowering (engine task `lower`). Returns the IR and
    /// the phase's wall time (ns).
    pub fn phase_lower(&self, checked: &CheckedModule, env: &ModuleEnv) -> (sfcc_ir::Module, u64) {
        phases::lower(checked, env)
    }

    /// Phase 3: the (skippable) optimization pipeline (engine task
    /// `optimize`), including function-cache lookup when the session has
    /// one. Fresh cache entries are applied immediately. Does not ingest
    /// the trace — pair with [`Compiler::ingest_trace`].
    pub fn phase_optimize(&self, ir: &sfcc_ir::Module) -> (sfcc_ir::Module, OptimizeOutcome) {
        let (ir, mut outcome) = self.phase_optimize_with(ir, None);
        self.apply_cache_inserts(outcome.cache_inserts.drain(..));
        (ir, outcome)
    }

    /// [`Compiler::phase_optimize`] against immutable session snapshots,
    /// optionally fanning function-level tasks out into `pool`: no
    /// ingestion, no cache population — the returned
    /// [`OptimizeOutcome::cache_inserts`] are the caller's to apply at a
    /// deterministic boundary ([`Compiler::apply_cache_inserts`]). Safe to
    /// call from worker threads compiling independent modules of one wave
    /// in parallel.
    pub fn phase_optimize_with<'env>(
        &'env self,
        ir: &sfcc_ir::Module,
        pool: Option<&PoolScope<'env>>,
    ) -> (sfcc_ir::Module, OptimizeOutcome) {
        let options = RunOptions {
            verify_each: self.config.verify_each,
        };
        let cache = self.config.function_cache.then_some(&self.fn_cache);
        let mut ir = ir.clone();
        let outcome = phases::optimize(
            &mut ir,
            self.config.mode,
            &self.pipeline,
            self.skip_state(),
            options,
            cache,
            self.cas.as_ref(),
            pool,
        );
        (ir, outcome)
    }

    /// [`Compiler::phase_optimize_with`] for a *restricted* module — one
    /// carrying only the call closure of the functions actually demanded
    /// (engine task `optimizefn`). Identical pipeline semantics; the only
    /// difference is depcheck attribution: the state read is noted per
    /// function (`state:m::f`), matching the per-function inputs the
    /// function-grained optimize tasks record.
    pub fn phase_optimize_restricted<'env>(
        &'env self,
        ir: &sfcc_ir::Module,
        pool: Option<&PoolScope<'env>>,
    ) -> (sfcc_ir::Module, OptimizeOutcome) {
        let options = RunOptions {
            verify_each: self.config.verify_each,
        };
        let cache = self.config.function_cache.then_some(&self.fn_cache);
        let mut ir = ir.clone();
        let outcome = phases::optimize_fn_grained(
            &mut ir,
            self.config.mode,
            &self.pipeline,
            self.skip_state(),
            options,
            cache,
            self.cas.as_ref(),
            pool,
        );
        (ir, outcome)
    }

    /// [`Compiler::phase_optimize_with`] on a fresh pool of `jobs` workers
    /// (capped at the function count and the host's available parallelism;
    /// `jobs <= 1` stays on the calling thread). For callers that are not
    /// already inside a pool scope.
    pub fn phase_optimize_jobs(
        &self,
        ir: &sfcc_ir::Module,
        jobs: usize,
    ) -> (sfcc_ir::Module, OptimizeOutcome) {
        let jobs = sfcc_pool::effective_jobs(jobs).min(ir.functions.len().max(1));
        if jobs <= 1 {
            return self.phase_optimize_with(ir, None);
        }
        sfcc_pool::scope(jobs, |ps| self.phase_optimize_with(ir, Some(ps)))
    }

    /// [`Compiler::phase_optimize_restricted`] on a fresh pool of `jobs`
    /// workers (same clamping as [`Compiler::phase_optimize_jobs`]).
    pub fn phase_optimize_restricted_jobs(
        &self,
        ir: &sfcc_ir::Module,
        jobs: usize,
    ) -> (sfcc_ir::Module, OptimizeOutcome) {
        let jobs = sfcc_pool::effective_jobs(jobs).min(ir.functions.len().max(1));
        if jobs <= 1 {
            return self.phase_optimize_restricted(ir, None);
        }
        sfcc_pool::scope(jobs, |ps| self.phase_optimize_restricted(ir, Some(ps)))
    }

    /// The state skip decisions read from: the frozen session snapshot when
    /// one is active ([`Compiler::freeze_state`]), the live database
    /// otherwise.
    fn skip_state(&self) -> &StateDb {
        self.frozen.as_ref().unwrap_or(&self.state)
    }

    /// Freezes a snapshot of the dormancy state for the duration of one
    /// build session. While frozen, optimize phases consult the snapshot for
    /// skip decisions and [`Compiler::ingest_function_trace`] mutates only
    /// the live database — so a function's skip decisions cannot observe a
    /// sibling's (or its own earlier) same-session ingest, regardless of
    /// demand order or `--jobs`. Pair with [`Compiler::thaw_state`].
    pub fn freeze_state(&mut self) {
        self.frozen = Some(self.state.clone());
        self.session_bumped.clear();
    }

    /// Drops the snapshot taken by [`Compiler::freeze_state`]; subsequent
    /// skip decisions read the live (fully ingested) database again.
    pub fn thaw_state(&mut self) {
        self.frozen = None;
        self.session_bumped.clear();
    }

    /// Folds one pipeline trace into the dormancy state (stateful mode;
    /// a no-op otherwise). Returns the time spent (ns).
    pub fn ingest_trace(&mut self, trace: &PipelineTrace) -> u64 {
        if !self.config.mode.is_stateful() {
            return 0;
        }
        let t = Instant::now();
        self.state.ingest(trace, self.pipeline_hash);
        t.elapsed().as_nanos() as u64
    }

    /// Folds one *function's* trace into the dormancy state (stateful mode;
    /// a no-op otherwise), leaving every sibling record untouched. The
    /// module's build counter is bumped once per frozen session — the first
    /// per-function ingest for a module performs the same single bump a
    /// whole-module [`Compiler::ingest_trace`] would, so streak/window
    /// bookkeeping is identical either way. Returns the time spent (ns).
    pub fn ingest_function_trace(&mut self, module: &str, ftrace: &FunctionTrace) -> u64 {
        if !self.config.mode.is_stateful() {
            return 0;
        }
        let t = Instant::now();
        if self.session_bumped.insert(module.to_string()) {
            self.state.bump_build_counter(module);
        }
        self.state
            .ingest_function(module, ftrace, self.pipeline_hash);
        t.elapsed().as_nanos() as u64
    }

    /// Garbage-collects per-function dormancy records of `module`: drops
    /// every record whose function name fails `keep` (deleted or renamed
    /// functions). The build driver calls this after a successful build with
    /// the module's current roster.
    pub fn retain_state_functions(&mut self, module: &str, keep: impl FnMut(&str) -> bool) {
        self.state.retain_functions(module, keep);
    }

    /// Phase 4: optimized IR → object code (engine task `codegen`). Returns
    /// the object and the phase's wall time (ns).
    ///
    /// # Errors
    ///
    /// [`CompileError::Backend`] when codegen fails.
    pub fn phase_codegen(&self, ir: &sfcc_ir::Module) -> Result<(CodeObject, u64), CompileError> {
        phases::codegen(ir)
    }

    /// A deterministic stamp of everything that steers skip decisions for
    /// `module`: the mode (policy), the pipeline, and the module's dormancy
    /// records. Incremental engines record this as a tracked input of the
    /// optimize task, so stale skip state invalidates exactly the modules
    /// it would affect.
    pub fn state_stamp(&self, module: &str) -> u64 {
        let mut repr = format!(
            "mode={};pipeline={:x};",
            self.config.mode.label(),
            self.pipeline_hash.0
        );
        if self.config.mode.is_stateful() {
            match self.state.module(module) {
                Some(state) => repr.push_str(&format!("state={:x}", state.content_stamp())),
                None => repr.push_str("state=absent"),
            }
        }
        fnv64(repr.as_bytes())
    }

    /// Per-function variant of [`Compiler::state_stamp`]: a deterministic
    /// stamp of everything that steers skip decisions for one function —
    /// mode, pipeline, and *that function's* dormancy record only. Always
    /// reads the live database: the function-grained optimize task records
    /// this stamp immediately after its own ingest, and sibling ingests
    /// never touch the record, so the stamp the next session recomputes at
    /// validation time matches byte for byte unless the record itself
    /// changed.
    pub fn state_stamp_fn(&self, module: &str, function: &str) -> u64 {
        let mut repr = format!(
            "mode={};pipeline={:x};",
            self.config.mode.label(),
            self.pipeline_hash.0
        );
        if self.config.mode.is_stateful() {
            match self.state.function_stamp(module, function) {
                Some(stamp) => repr.push_str(&format!("state={stamp:x}")),
                None => repr.push_str("state=absent"),
            }
        }
        fnv64(repr.as_bytes())
    }
}

/// Compiles one module end to end against immutable state/cache snapshots
/// (no ingestion, no cache population — fresh cache entries are returned
/// for the caller to apply), by composing the phase functions of
/// [`crate::phases`].
#[allow(clippy::too_many_arguments)]
fn compile_unit<'env>(
    name: &str,
    source: &str,
    env: &ModuleEnv,
    mode: Mode,
    pipeline: &'env Pipeline,
    state: &'env StateDb,
    options: RunOptions,
    cache: Option<&'env FunctionCache>,
    cas: Option<&'env CasStore>,
    pool: Option<&PoolScope<'env>>,
) -> Result<(CompileOutput, Vec<(Fingerprint, sfcc_ir::Function)>), CompileError> {
    let mut timings = PhaseTimings::default();

    let (checked, frontend_ns) = phases::frontend(name, source, env)?;
    timings.frontend_ns = frontend_ns;
    let interface = checked.interface.clone();

    let (mut ir, lower_ns) = phases::lower(&checked, env);
    timings.lower_ns = lower_ns;

    let outcome = phases::optimize(&mut ir, mode, pipeline, state, options, cache, cas, pool);
    timings.middle_ns = outcome.middle_ns;
    timings.state_ns += outcome.state_ns;

    let (object, backend_ns) = phases::codegen(&ir)?;
    timings.backend_ns = backend_ns;

    Ok((
        CompileOutput {
            object,
            ir,
            interface,
            trace: outcome.trace,
            timings,
        },
        outcome.cache_inserts,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_backend::{link_objects, run as vm_run, VmOptions};

    const SRC_V1: &str = "
fn helper(x: int) -> int { return x * 2 + 1; }
fn main(n: int) -> int {
    let s: int = 0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + helper(i); }
    return s;
}";

    // V2: a small edit inside main (the constant 1 → 2 inside helper call use).
    const SRC_V2: &str = "
fn helper(x: int) -> int { return x * 2 + 1; }
fn main(n: int) -> int {
    let s: int = 2;
    for (let i: int = 0; i < n; i = i + 1) { s = s + helper(i); }
    return s;
}";

    fn run_output(out: &CompileOutput, args: &[i64]) -> Option<i64> {
        let program = link_objects(std::slice::from_ref(&out.object)).unwrap();
        vm_run(&program, "main.main", args, VmOptions::default())
            .unwrap()
            .return_value
    }

    #[test]
    fn stateless_compile_works() {
        let mut c = Compiler::new(Config::stateless().with_verification());
        let out = c.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        assert_eq!(run_output(&out, &[5]), Some(25));
        let (_, _, skipped) = out.outcome_totals();
        assert_eq!(skipped, 0);
    }

    #[test]
    fn stateful_first_build_skips_nothing() {
        let mut c = Compiler::new(Config::stateful().with_verification());
        let out = c.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let (_, _, skipped) = out.outcome_totals();
        assert_eq!(skipped, 0, "cold start must not skip");
        assert!(c.state().function_count() > 0, "state must be recorded");
    }

    #[test]
    fn stateful_rebuild_skips_dormant_passes() {
        let mut c = Compiler::new(Config::stateful().with_verification());
        let first = c.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let second = c.compile("main", SRC_V2, &ModuleEnv::new()).unwrap();
        let (_, dormant_first, _) = first.outcome_totals();
        let (_, _, skipped_second) = second.outcome_totals();
        assert!(skipped_second > 0, "rebuild should skip dormant passes");
        assert!(
            skipped_second <= dormant_first + 2,
            "cannot skip more than was dormant (±policy slack)"
        );
    }

    #[test]
    fn stateful_and_stateless_agree_behaviourally() {
        let mut stateless = Compiler::new(Config::stateless().with_verification());
        let mut stateful = Compiler::new(Config::stateful().with_verification());
        // Warm up state with v1, then compile v2 with skipping active.
        stateful.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let a = stateless
            .compile("main", SRC_V2, &ModuleEnv::new())
            .unwrap();
        let b = stateful.compile("main", SRC_V2, &ModuleEnv::new()).unwrap();
        for n in [0, 1, 7, 20] {
            assert_eq!(run_output(&a, &[n]), run_output(&b, &[n]), "n={n}");
        }
    }

    #[test]
    fn frontend_errors_are_reported() {
        let mut c = Compiler::new(Config::stateless());
        let err = c
            .compile("main", "fn broken( {", &ModuleEnv::new())
            .unwrap_err();
        let CompileError::Frontend { errors, rendered } = err else {
            panic!("{err}")
        };
        assert!(errors > 0);
        assert!(rendered.contains("main.mc"), "{rendered}");
    }

    #[test]
    fn state_persists_across_sessions() {
        let dir = std::env::temp_dir().join(format!("sfcc-core-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");

        let cfg = Config::stateful()
            .with_state_path(&path)
            .with_verification();
        let mut first_session = Compiler::new(cfg.clone());
        first_session
            .compile("main", SRC_V1, &ModuleEnv::new())
            .unwrap();
        first_session.save_state().unwrap();

        let mut second_session = Compiler::new(cfg);
        assert!(second_session.state_load_error().is_none());
        let out = second_session
            .compile("main", SRC_V2, &ModuleEnv::new())
            .unwrap();
        let (_, _, skipped) = out.outcome_totals();
        assert!(skipped > 0, "persisted state should enable skipping");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timings_are_populated() {
        let mut c = Compiler::new(Config::stateful());
        let out = c.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        assert!(out.timings.frontend_ns > 0);
        assert!(out.timings.middle_ns > 0);
        assert!(out.timings.backend_ns > 0);
        assert_eq!(
            out.timings.total_ns(),
            out.timings.frontend_ns
                + out.timings.lower_ns
                + out.timings.middle_ns
                + out.timings.backend_ns
                + out.timings.state_ns
        );
    }

    #[test]
    fn interface_extraction() {
        let iface = extract_interface("m", SRC_V1).unwrap();
        assert!(iface.functions.contains_key("helper"));
        assert!(iface.functions.contains_key("main"));
        assert!(extract_interface("m", "fn bad(").is_err());
    }

    #[test]
    fn o0_pipeline_is_small() {
        let c = Compiler::new(Config::stateless().with_opt_level(OptLevel::O0));
        assert!(c.pipeline_slots().len() <= 3);
    }

    #[test]
    fn opt_levels_are_ordered_and_agree() {
        let o0 = Compiler::new(Config::stateless().with_opt_level(OptLevel::O0));
        let o1 = Compiler::new(Config::stateless().with_opt_level(OptLevel::O1));
        let o2 = Compiler::new(Config::stateless());
        assert!(o0.pipeline_slots().len() < o1.pipeline_slots().len());
        assert!(o1.pipeline_slots().len() < o2.pipeline_slots().len());
        assert!(!o1.pipeline_slots().contains(&"inline"));
        assert!(!o1.pipeline_slots().contains(&"loop-unroll"));

        // All three levels agree behaviourally.
        let src = "fn main(n: int) -> int { let s: int = 0; for (let i: int = 0; i < n; i = i + 1) { s = s + i * 3; } return s; }";
        let mut results = Vec::new();
        for mut c in [o0, o1, o2] {
            let out = c.compile("main", src, &ModuleEnv::new()).unwrap();
            results.push(run_output(&out, &[9]));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn function_cache_hits_on_unchanged_functions() {
        let mut c = Compiler::new(Config::stateful().with_function_cache().with_verification());
        c.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let cold = c.cache_stats();
        assert_eq!(cold.hits, 0);
        assert!(cold.entries > 0);

        // The edit touches main only; helper hits the cache.
        let out = c.compile("main", SRC_V2, &ModuleEnv::new()).unwrap();
        let warm = c.cache_stats();
        assert!(warm.hits >= 1, "{warm:?}");
        // helper's trace is fully skipped.
        let helper = out.trace.function("helper").unwrap();
        assert_eq!(
            helper.count(sfcc_passes::PassOutcome::Skipped),
            helper.records.len()
        );
        assert_eq!(run_output(&out, &[5]), Some(27));
    }

    #[test]
    fn function_cache_preserves_behaviour() {
        let mut plain = Compiler::new(Config::stateless().with_verification());
        let mut cached =
            Compiler::new(Config::stateful().with_function_cache().with_verification());
        cached.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let a = plain.compile("main", SRC_V2, &ModuleEnv::new()).unwrap();
        let b = cached.compile("main", SRC_V2, &ModuleEnv::new()).unwrap();
        for n in [0, 1, 6, 13] {
            assert_eq!(run_output(&a, &[n]), run_output(&b, &[n]), "n={n}");
        }
    }

    #[test]
    fn function_cache_persists_across_sessions() {
        let dir = std::env::temp_dir().join(format!("sfcc-irc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        let cfg = Config::stateful()
            .with_state_path(&path)
            .with_function_cache()
            .with_verification();

        let mut first = Compiler::new(cfg.clone());
        first.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        first.save_state().unwrap();
        assert!(first.cache_stats().entries > 0);

        let mut second = Compiler::new(cfg);
        let out = second.compile("main", SRC_V2, &ModuleEnv::new()).unwrap();
        assert!(second.cache_stats().hits >= 1, "{:?}", second.cache_stats());
        assert_eq!(run_output(&out, &[5]), Some(27));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn callee_edit_invalidates_caller_cache() {
        let v1 = "fn callee(x: int) -> int { return x + 1; }\nfn caller(x: int) -> int { return callee(x) * 2; }";
        let v2 = "fn callee(x: int) -> int { return x + 5; }\nfn caller(x: int) -> int { return callee(x) * 2; }";
        let mut c = Compiler::new(Config::stateful().with_function_cache().with_verification());
        c.compile("m", v1, &ModuleEnv::new()).unwrap();
        let before = c.cache_stats();
        c.compile("m", v2, &ModuleEnv::new()).unwrap();
        let after = c.cache_stats();
        // caller's context changed with the callee's body: no hits at all.
        assert_eq!(after.hits, before.hits, "caller must not hit a stale entry");
    }

    #[test]
    fn shared_store_hits_across_sessions_byte_identically() {
        let dir = std::env::temp_dir().join(format!("sfcc-cas-compiler-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Session A (no local persistence) populates the shared store.
        let mut a = Compiler::new(Config::stateless().with_cas_path(&dir).with_verification());
        let out_a = a.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let stats_a = a.cas_stats().unwrap();
        assert!(stats_a.publishes > 0, "{stats_a:?}");

        // A fresh session (cold local cache) hits the shared store and
        // produces the same bytes as a plain build.
        let mut b = Compiler::new(Config::stateless().with_cas_path(&dir).with_verification());
        let out_b = b.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let stats_b = b.cas_stats().unwrap();
        assert!(stats_b.hits > 0, "{stats_b:?}");
        assert_eq!(out_a.object, out_b.object);
        assert!(b.cas_served("main", "helper").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_store_misses_across_differing_flags() {
        let dir = std::env::temp_dir().join(format!("sfcc-cas-flags-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = Compiler::new(Config::stateless().with_cas_path(&dir));
        a.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        // Same source, different verify flag: the flag digest differs, so
        // every lookup must miss.
        let mut b = Compiler::new(Config::stateless().with_cas_path(&dir).with_verification());
        b.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        let stats = b.cas_stats().unwrap();
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert!(stats.misses > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_state_forgets_everything() {
        let mut c = Compiler::new(Config::stateful());
        c.compile("main", SRC_V1, &ModuleEnv::new()).unwrap();
        assert!(c.state().function_count() > 0);
        c.reset_state();
        assert_eq!(c.state().function_count(), 0);
    }
}
