//! Function-level IR caching — the reproduction's *extension* experiment.
//!
//! Pass skipping (the paper's mechanism) still walks every pass slot of
//! every function. With structural fingerprints there is a stronger move
//! available for functions that are **bit-identical** to a previous
//! compilation *including everything inlining could pull in*: reuse the
//! cached optimized IR and skip the pipeline entirely. This module
//! implements that cache; experiment E12 (`exp_fn_cache`) quantifies it
//! against plain pass skipping.
//!
//! # Cache key
//!
//! A function's optimized IR depends on (a) its own pre-optimization body,
//! (b) the bodies of every *module-local* function transitively reachable
//! through calls (the inliner may splice any of them in), and (c) the
//! pipeline itself. The key is therefore a *context fingerprint*: the
//! function's structural fingerprint combined with its callees' context
//! fingerprints in sorted order; cross-module callees contribute only their
//! qualified name (they are never inlined). Functions on call cycles are
//! conservatively uncacheable.
//!
//! # Concurrency
//!
//! The cache is shared by function-level optimization tasks running on the
//! work-stealing pool, so the entry map is split into [`SHARD_COUNT`]
//! independently locked shards (keyed by the low bits of the fingerprint)
//! and the hit/miss/eviction counters are atomics. All operations take
//! `&self`; a `&FunctionCache` can cross threads freely.
//!
//! # Eviction
//!
//! Each shard holds at most `capacity / SHARD_COUNT` entries and evicts by
//! the *second-chance* (clock) policy: a hit sets the entry's referenced
//! bit; when the shard is full, the oldest entry is either evicted (bit
//! clear) or granted a second pass through the queue (bit set, which is
//! cleared). The referenced bit is set-semantics — concurrent lookups in
//! any order leave the same bit state — so parallel builds keep the
//! deterministic-output guarantee.

use sfcc_codec::{fnv64, DecodeError, Reader, Writer};
use sfcc_faultfs::Durability;
use sfcc_ir::{fingerprint, Fingerprint, Function, Module, Op};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default maximum number of cached functions across all shards.
pub const CACHE_CAP: usize = 8192;

/// Number of independently locked shards (a power of two).
pub const SHARD_COUNT: usize = 16;

/// A cached function body plus its second-chance referenced bit.
#[derive(Debug)]
struct Entry {
    func: Function,
    referenced: bool,
}

/// One lock's worth of the cache: entries plus clock-queue order.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Fingerprint, Entry>,
    order: VecDeque<Fingerprint>,
}

/// The function-level IR cache. Concurrently shareable; see the module
/// docs for the sharding and eviction story.
#[derive(Debug)]
pub struct FunctionCache {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for FunctionCache {
    fn default() -> Self {
        Self::with_capacity(CACHE_CAP)
    }
}

/// Hit/miss counters of a [`FunctionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and later populated the cache).
    pub misses: u64,
    /// Entries evicted by the second-chance policy.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl FunctionCache {
    /// Creates an empty cache with the default capacity ([`CACHE_CAP`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` entries
    /// (rounded up to a multiple of [`SHARD_COUNT`]).
    pub fn with_capacity(capacity: usize) -> Self {
        FunctionCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_cap: capacity.div_ceil(SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(key: Fingerprint) -> usize {
        key.0 as usize & (SHARD_COUNT - 1)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().entries.len())
                .sum(),
        }
    }

    /// Looks up the optimized IR for a context fingerprint, marking the
    /// entry recently used.
    pub fn lookup(&self, key: Fingerprint) -> Option<Function> {
        let mut shard = self.shards[Self::shard_of(key)].lock().unwrap();
        match shard.entries.get_mut(&key) {
            Some(e) => {
                e.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.func.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores optimized IR under a context fingerprint, evicting by
    /// second chance when the target shard is full.
    pub fn insert(&self, key: Fingerprint, optimized: Function) {
        let mut guard = self.shards[Self::shard_of(key)].lock().unwrap();
        let shard = &mut *guard;
        if let Some(e) = shard.entries.get_mut(&key) {
            e.func = optimized;
            return;
        }
        while shard.entries.len() >= self.shard_cap {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            let e = shard
                .entries
                .get_mut(&oldest)
                .expect("order tracks entries");
            if e.referenced {
                e.referenced = false;
                shard.order.push_back(oldest);
            } else {
                shard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                func: optimized,
                referenced: false,
            },
        );
        shard.order.push_back(key);
    }

    /// Serializes the cache: entries are stored as canonical IR text (the
    /// printer/parser round-trip is exact, see `sfcc-ir`'s property tests),
    /// behind the usual magic/version/checksum armor. The on-disk format is
    /// key-sorted and shard-agnostic, so it is independent of both the
    /// shard layout and any concurrent access pattern.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut items: Vec<(u128, String, String)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for (key, e) in &shard.entries {
                items.push((
                    key.0,
                    e.func.name.clone(),
                    sfcc_ir::function_to_string(&e.func),
                ));
            }
        }
        items.sort();
        let mut payload = Writer::new();
        payload.usize(items.len());
        for (key, name, text) in &items {
            payload.u128(*key);
            payload.str(name);
            payload.str(text);
        }
        let payload = payload.into_bytes();
        let mut out = Writer::new();
        out.raw(CACHE_MAGIC);
        out.u32(CACHE_VERSION);
        out.raw(&payload);
        out.u64(fnv64(&payload));
        out.into_bytes()
    }

    /// Deserializes a cache; any malformed input fails (callers cold-start).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for corrupt or version-skewed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < CACHE_MAGIC.len() || &bytes[..CACHE_MAGIC.len()] != CACHE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut r = Reader::new(&bytes[CACHE_MAGIC.len()..]);
        let version = r.u32()?;
        if version != CACHE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let payload_start = bytes.len() - r.remaining();
        let count = r.usize()?;
        if count > r.remaining() {
            return Err(DecodeError::BadLength);
        }
        let cache = FunctionCache::new();
        for _ in 0..count {
            let key = Fingerprint(r.u128()?);
            let name = r.str()?;
            let text = r.str()?;
            let mut func = sfcc_ir::parse_function(&text).map_err(|_| DecodeError::Corrupt)?;
            func.name = name;
            // Place directly, bypassing eviction: a saved cache already
            // respects the capacity it was written with.
            let mut guard = cache.shards[Self::shard_of(key)].lock().unwrap();
            let shard = &mut *guard;
            shard.entries.insert(
                key,
                Entry {
                    func,
                    referenced: false,
                },
            );
            shard.order.push_back(key);
        }
        let payload_end = bytes.len() - r.remaining();
        let declared = r.u64()?;
        if !r.is_done() || fnv64(&bytes[payload_start..payload_end]) != declared {
            return Err(DecodeError::Corrupt);
        }
        Ok(cache)
    }

    /// Writes the cache to `path` atomically (unique temp + rename via the
    /// fault-injectable I/O layer), with no sync points.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with(path, Durability::Fast)
    }

    /// [`FunctionCache::save`] with an explicit [`Durability`] mode.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_with(&self, path: &Path, durability: Durability) -> io::Result<()> {
        sfcc_faultfs::atomic_write(path, &self.to_bytes(), durability)
    }

    /// Loads a cache from `path`; missing or corrupt files cold-start.
    pub fn load_or_default(path: &Path) -> Self {
        match sfcc_faultfs::read(path) {
            Ok(bytes) => Self::from_bytes(&bytes).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }
}

const CACHE_MAGIC: &[u8; 7] = b"SFCCIC\0";
/// Current cache-file format version.
pub const CACHE_VERSION: u32 = 1;

/// Computes the context fingerprint of every cacheable function in a
/// pre-optimization module. Functions involved in (or depending on) local
/// call cycles are absent from the result.
pub fn context_fingerprints(module: &Module) -> HashMap<String, Fingerprint> {
    let local_prefix = format!("{}.", module.name);

    // Per function: sorted local callee names and sorted foreign targets.
    let mut local_callees: HashMap<&str, Vec<String>> = HashMap::new();
    let mut foreign_callees: HashMap<&str, Vec<String>> = HashMap::new();
    for f in &module.functions {
        let mut local: Vec<String> = Vec::new();
        let mut foreign: Vec<String> = Vec::new();
        for (_, iid) in f.iter_insts() {
            if let Op::Call(target) = &f.inst(iid).op {
                match target.strip_prefix(&local_prefix) {
                    Some(name) if module.function(name).is_some() => local.push(name.to_string()),
                    _ => foreign.push(target.clone()),
                }
            }
        }
        local.sort();
        local.dedup();
        foreign.sort();
        foreign.dedup();
        local_callees.insert(&f.name, local);
        foreign_callees.insert(&f.name, foreign);
    }

    let body_fp: HashMap<&str, Fingerprint> = module
        .functions
        .iter()
        .map(|f| (f.name.as_str(), fingerprint(f)))
        .collect();

    // Fixpoint: a function resolves once all its local callees resolved.
    // Anything never resolved sits on (or behind) a call cycle — including
    // self-recursion — and is left out, i.e. uncacheable.
    let mut resolved: HashMap<String, Fingerprint> = HashMap::new();
    loop {
        let mut progressed = false;
        for f in &module.functions {
            if resolved.contains_key(&f.name) {
                continue;
            }
            let local = &local_callees[f.name.as_str()];
            if local.iter().any(|c| c == &f.name) {
                continue; // self-recursive
            }
            if !local.iter().all(|c| resolved.contains_key(c)) {
                continue;
            }
            // Own body, then sorted local callee contexts, then sorted
            // foreign callee names.
            let mut ctx = body_fp[f.name.as_str()];
            for c in local {
                ctx = ctx.combine(resolved[c]);
            }
            for t in &foreign_callees[f.name.as_str()] {
                ctx = ctx.combine(Fingerprint::of_str(t));
            }
            resolved.insert(f.name.clone(), ctx);
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv};

    fn lower(src: &str) -> Module {
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src, &ModuleEnv::new(), &mut d).expect("valid");
        sfcc_ir::lower_module(&checked, &ModuleEnv::new())
    }

    #[test]
    fn leaf_functions_are_cacheable() {
        let m =
            lower("fn a(x: int) -> int { return x + 1; }\nfn b(x: int) -> int { return x * 2; }");
        let ctx = context_fingerprints(&m);
        assert_eq!(ctx.len(), 2);
        assert_ne!(ctx["a"], ctx["b"]);
    }

    #[test]
    fn context_covers_callee_bodies() {
        let v1 = lower("fn callee(x: int) -> int { return x + 1; }\nfn caller(x: int) -> int { return callee(x); }");
        let v2 = lower("fn callee(x: int) -> int { return x + 2; }\nfn caller(x: int) -> int { return callee(x); }");
        let c1 = context_fingerprints(&v1);
        let c2 = context_fingerprints(&v2);
        // The caller's own body is unchanged, but its context must change
        // with the callee's body (the inliner sees it).
        assert_ne!(
            c1["caller"], c2["caller"],
            "callee edit must invalidate caller"
        );
        assert_ne!(c1["callee"], c2["callee"]);
    }

    #[test]
    fn transitive_contexts_propagate() {
        let v1 = lower(
            "fn a(x: int) -> int { return x + 1; }\nfn b(x: int) -> int { return a(x); }\nfn c(x: int) -> int { return b(x); }",
        );
        let v2 = lower(
            "fn a(x: int) -> int { return x + 9; }\nfn b(x: int) -> int { return a(x); }\nfn c(x: int) -> int { return b(x); }",
        );
        let c1 = context_fingerprints(&v1);
        let c2 = context_fingerprints(&v2);
        assert_ne!(c1["c"], c2["c"], "edit two hops away must invalidate");
    }

    #[test]
    fn recursion_is_uncacheable() {
        let m = lower(
            "fn rec(n: int) -> int { if (n < 1) { return 0; } return rec(n - 1); }\nfn user(n: int) -> int { return rec(n); }\nfn free(n: int) -> int { return n; }",
        );
        let ctx = context_fingerprints(&m);
        assert!(!ctx.contains_key("rec"));
        assert!(
            !ctx.contains_key("user"),
            "dependents of cycles are uncacheable too"
        );
        assert!(ctx.contains_key("free"));
    }

    #[test]
    fn mutual_recursion_is_uncacheable() {
        let m = lower(
            "fn even(n: int) -> bool { if (n == 0) { return true; } return odd(n - 1); }\nfn odd(n: int) -> bool { if (n == 0) { return false; } return even(n - 1); }",
        );
        let ctx = context_fingerprints(&m);
        assert!(ctx.is_empty());
    }

    #[test]
    fn foreign_callee_names_matter() {
        let mut d = Diagnostics::new();
        let util_ast =
            sfcc_frontend::parser::parse("util", "fn go(x: int) -> int { return x; }", &mut d);
        let mut env = ModuleEnv::new();
        env.insert("util", sfcc_frontend::ModuleInterface::of(&util_ast));
        let src_a = "import util;\nfn f(x: int) -> int { return util::go(x); }";
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src_a, &env, &mut d).expect("valid");
        let m = sfcc_ir::lower_module(&checked, &env);
        let ctx = context_fingerprints(&m);
        // A foreign call contributes the callee name; still cacheable.
        assert!(ctx.contains_key("f"));
    }

    #[test]
    fn cache_serialization_roundtrips() {
        let cache = FunctionCache::new();
        let f = sfcc_ir::parse_function(
            "fn @helper(i64) -> i64 {\nbb0:\n  v0 = mul i64 p0, 3\n  ret v0\n}",
        )
        .unwrap();
        cache.insert(Fingerprint(5), f.clone());
        let bytes = cache.to_bytes();
        let back = FunctionCache::from_bytes(&bytes).unwrap();
        let got = back.lookup(Fingerprint(5)).expect("entry survived");
        assert_eq!(got.name, "helper");
        assert_eq!(
            sfcc_ir::function_to_string(&got),
            sfcc_ir::function_to_string(&f)
        );
        assert!(FunctionCache::from_bytes(b"junk").is_err());
        let mut corrupt = cache.to_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        assert!(FunctionCache::from_bytes(&corrupt).is_err());
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let cache = FunctionCache::new();
        let f = Function::new("f", vec![], None);
        let key = Fingerprint(7);
        assert!(cache.lookup(key).is_none());
        cache.insert(key, f.clone());
        assert_eq!(cache.lookup(key).unwrap().name, "f");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    /// Keys that land in the same shard: the low 4 bits pick the shard, so
    /// multiples of [`SHARD_COUNT`] all collide on shard 0.
    fn same_shard_key(i: u128) -> Fingerprint {
        Fingerprint(i * SHARD_COUNT as u128)
    }

    #[test]
    fn full_shard_evicts_oldest_unreferenced() {
        // Per-shard capacity of 2.
        let cache = FunctionCache::with_capacity(2 * SHARD_COUNT);
        let f = Function::new("f", vec![], None);
        cache.insert(same_shard_key(0), f.clone());
        cache.insert(same_shard_key(1), f.clone());
        cache.insert(same_shard_key(2), f.clone());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(cache.lookup(same_shard_key(0)).is_none(), "oldest evicted");
        assert!(cache.lookup(same_shard_key(1)).is_some());
        assert!(cache.lookup(same_shard_key(2)).is_some());
    }

    #[test]
    fn second_chance_spares_referenced_entries() {
        let cache = FunctionCache::with_capacity(2 * SHARD_COUNT);
        let f = Function::new("f", vec![], None);
        cache.insert(same_shard_key(0), f.clone());
        cache.insert(same_shard_key(1), f.clone());
        // Reference the oldest entry: it must survive the next eviction.
        assert!(cache.lookup(same_shard_key(0)).is_some());
        cache.insert(same_shard_key(2), f.clone());
        assert!(
            cache.lookup(same_shard_key(0)).is_some(),
            "referenced entry granted a second chance"
        );
        assert!(
            cache.lookup(same_shard_key(1)).is_none(),
            "unreferenced entry evicted instead"
        );
        assert!(cache.lookup(same_shard_key(2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_in_place_without_eviction() {
        let cache = FunctionCache::with_capacity(SHARD_COUNT);
        let f = Function::new("f", vec![], None);
        let g = Function::new("g", vec![], None);
        let key = same_shard_key(3);
        cache.insert(key, f);
        cache.insert(key, g);
        assert_eq!(cache.lookup(key).unwrap().name, "g");
        let stats = cache.stats();
        assert_eq!((stats.evictions, stats.entries), (0, 1));
    }

    #[test]
    fn concurrent_access_is_safe_and_counts_add_up() {
        let cache = FunctionCache::new();
        let f = Function::new("f", vec![], None);
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let cache = &cache;
                let f = f.clone();
                s.spawn(move || {
                    for i in 0..64u128 {
                        let key = Fingerprint(t * 1000 + i);
                        cache.insert(key, f.clone());
                        assert!(cache.lookup(key).is_some());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 4 * 64);
        assert_eq!(stats.entries, 4 * 64);
    }
}
