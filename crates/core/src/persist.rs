//! Crash-safe persistence of a session's durable artifacts.
//!
//! The dormancy state and the function-IR cache must move across sessions
//! *together*: they are published through one [`CommitDir`] manifest
//! anchored at the configured state path, so a crash at any I/O operation
//! leaves the pair logically all-old or all-new (see `sfcc-faultfs`).
//!
//! Loading enforces the graceful-degradation contract: any manifest, state,
//! or cache file that is truncated, corrupt, or version-skewed is detected
//! (never read as valid), moved aside to `<file>.corrupt`, and the affected
//! artifact cold-starts. Every such decision is reported as a
//! [`RecoveryEvent`] so the build system can surface `recovered_files` /
//! `quarantined` counters. Directories written by older versions (a plain
//! state file + `<path>.ircache`, no manifest) still load through the
//! legacy fallback and are migrated to the manifest protocol on the next
//! save.

use crate::fncache::FunctionCache;
use sfcc_faultfs::{CommitDir, Durability, EntryError, ManifestEntry, ManifestError};
use sfcc_state::{statefile, DecodeError, StateDb};
use std::io;
use std::path::{Path, PathBuf};

/// Logical name of the dormancy state in the commit manifest.
pub const STATE_LOGICAL: &str = "state";
/// Logical name of the function-IR cache in the commit manifest.
pub const CACHE_LOGICAL: &str = "ircache";

/// One recovery decision taken while loading persistent state: a file was
/// unreadable or failed validation and the affected artifact cold-started.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// The file that failed.
    pub path: PathBuf,
    /// Where it was quarantined (`<path>.corrupt`), when it was provably
    /// corrupt; `None` for plain I/O failures, which leave the file alone.
    pub quarantined_to: Option<PathBuf>,
    /// Human-readable reason.
    pub reason: String,
}

/// The result of loading a session's persistent artifacts.
#[derive(Debug)]
pub struct LoadedState {
    /// The dormancy database (cold when absent or unrecoverable).
    pub db: StateDb,
    /// Why the state fell back to a cold start, if it did.
    pub db_error: Option<DecodeError>,
    /// The function-IR cache (cold when absent or unrecoverable).
    pub cache: FunctionCache,
    /// Every quarantine / fallback decision taken during the load.
    pub events: Vec<RecoveryEvent>,
}

/// The legacy (pre-manifest) cache file that accompanies a state file.
pub fn legacy_cache_path(state_path: &Path) -> PathBuf {
    let mut os = state_path.as_os_str().to_os_string();
    os.push(".ircache");
    PathBuf::from(os)
}

fn quarantine_event(path: &Path, reason: String, events: &mut Vec<RecoveryEvent>) {
    events.push(RecoveryEvent {
        path: path.to_path_buf(),
        quarantined_to: sfcc_faultfs::quarantine(path),
        reason,
    });
}

fn io_event(path: &Path, err: &io::Error, events: &mut Vec<RecoveryEvent>) {
    events.push(RecoveryEvent {
        path: path.to_path_buf(),
        quarantined_to: None,
        reason: format!("unreadable: {err}"),
    });
}

/// Loads the artifacts anchored at `base`, applying the recovery contract.
/// Never fails: any problem degrades the affected artifact to a cold start
/// and is reported in [`LoadedState::events`].
pub fn load(base: &Path, want_state: bool, want_cache: bool) -> LoadedState {
    let mut out = LoadedState {
        db: StateDb::new(),
        db_error: None,
        cache: FunctionCache::new(),
        events: Vec::new(),
    };
    let cd = CommitDir::new(base);
    match cd.read_manifest() {
        Ok(Some(manifest)) => {
            if want_state {
                if let Some(entry) = manifest.entry(STATE_LOGICAL) {
                    match load_entry_bytes(&cd, entry, &mut out.events) {
                        Some(bytes) => match statefile::from_bytes(&bytes) {
                            Ok(db) => out.db = db,
                            Err(e) => {
                                out.db_error = Some(e);
                                quarantine_event(
                                    &cd.entry_path(entry),
                                    format!("state does not decode: {e}"),
                                    &mut out.events,
                                );
                            }
                        },
                        None => out.db_error = Some(DecodeError::Corrupt),
                    }
                }
            }
            if want_cache {
                if let Some(entry) = manifest.entry(CACHE_LOGICAL) {
                    if let Some(bytes) = load_entry_bytes(&cd, entry, &mut out.events) {
                        match FunctionCache::from_bytes(&bytes) {
                            Ok(cache) => out.cache = cache,
                            Err(e) => quarantine_event(
                                &cd.entry_path(entry),
                                format!("cache does not decode: {e}"),
                                &mut out.events,
                            ),
                        }
                    }
                }
            }
        }
        Ok(None) => {
            // Legacy directory: a plain state file and `<base>.ircache`.
            if want_state {
                match sfcc_faultfs::read(base) {
                    Ok(bytes) => match statefile::from_bytes(&bytes) {
                        Ok(db) => out.db = db,
                        Err(e) => {
                            out.db_error = Some(e);
                            quarantine_event(
                                base,
                                format!("state does not decode: {e}"),
                                &mut out.events,
                            );
                        }
                    },
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => io_event(base, &e, &mut out.events),
                }
            }
            if want_cache {
                let cpath = legacy_cache_path(base);
                match sfcc_faultfs::read(&cpath) {
                    Ok(bytes) => match FunctionCache::from_bytes(&bytes) {
                        Ok(cache) => out.cache = cache,
                        Err(e) => quarantine_event(
                            &cpath,
                            format!("cache does not decode: {e}"),
                            &mut out.events,
                        ),
                    },
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => io_event(&cpath, &e, &mut out.events),
                }
            }
        }
        Err(ManifestError::Corrupt(e)) => {
            if want_state {
                out.db_error = Some(e);
            }
            quarantine_event(
                &cd.manifest_path(),
                format!("manifest does not decode: {e}"),
                &mut out.events,
            );
        }
        Err(ManifestError::Io(e)) => {
            // The manifest may be fine (transient failure, injected crash):
            // cold-start this session but leave the file alone.
            io_event(&cd.manifest_path(), &e, &mut out.events);
        }
    }
    out
}

fn load_entry_bytes(
    cd: &CommitDir,
    entry: &ManifestEntry,
    events: &mut Vec<RecoveryEvent>,
) -> Option<Vec<u8>> {
    match cd.load_entry(entry) {
        Ok(bytes) => Some(bytes),
        Err(EntryError::Corrupt(why)) => {
            quarantine_event(&cd.entry_path(entry), why, events);
            None
        }
        Err(EntryError::Io(e)) => {
            io_event(&cd.entry_path(entry), &e, events);
            None
        }
    }
}

/// Commits the given artifacts at `base` atomically: both files (or either
/// alone, carrying the other forward) become visible in one manifest
/// rename. Returns the generation number of the committed manifest (`0`
/// when there was nothing to save), so callers can stamp reports with
/// exactly which state commit their results correspond to.
///
/// # Errors
///
/// Propagates I/O failures; the previously committed generation stays
/// intact on any error.
pub fn save(
    base: &Path,
    db: Option<&StateDb>,
    cache: Option<&FunctionCache>,
    durability: Durability,
) -> io::Result<u64> {
    let state_bytes = db.map(statefile::to_bytes);
    let cache_bytes = cache.map(FunctionCache::to_bytes);
    let mut files: Vec<(&str, &[u8])> = Vec::new();
    if let Some(b) = &state_bytes {
        files.push((STATE_LOGICAL, b.as_slice()));
    }
    if let Some(b) = &cache_bytes {
        files.push((CACHE_LOGICAL, b.as_slice()));
    }
    if files.is_empty() {
        return Ok(0);
    }
    let manifest = CommitDir::new(base).commit(&files, durability)?;
    Ok(manifest.generation)
}

/// Read-only state lookup for inspection commands (`minicc state`):
/// manifest-aware, but never quarantines or mutates anything.
/// `Ok(None)` means no state exists at `base`.
///
/// # Errors
///
/// Returns a description of the I/O or decode failure.
pub fn peek_state(base: &Path) -> Result<Option<StateDb>, String> {
    let cd = CommitDir::new(base);
    match cd.read_manifest() {
        Ok(Some(manifest)) => match manifest.entry(STATE_LOGICAL) {
            Some(entry) => {
                let bytes = cd.load_entry(entry).map_err(|e| e.to_string())?;
                statefile::from_bytes(&bytes)
                    .map(Some)
                    .map_err(|e| e.to_string())
            }
            None => Ok(None),
        },
        Ok(None) => match std::fs::read(base) {
            Ok(bytes) => statefile::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| e.to_string()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.to_string()),
        },
        Err(e) => Err(e.to_string()),
    }
}

/// The result of [`fsck`].
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Files whose contents were fully verified.
    pub checked: usize,
    /// Files found corrupt and moved to `<file>.corrupt`.
    pub quarantined: Vec<PathBuf>,
    /// Abandoned temp/generation files that were removed.
    pub removed: Vec<PathBuf>,
    /// Whether the manifest was rewritten to drop quarantined entries.
    pub repaired_manifest: bool,
}

impl FsckReport {
    /// Whether the directory was fully healthy (nothing quarantined,
    /// removed, or repaired).
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.removed.is_empty() && !self.repaired_manifest
    }
}

/// Verifies and repairs the state directory at `base`, plus any program
/// `images`: every referenced file is fully decoded; corrupt files are
/// quarantined; a manifest with quarantined entries is rewritten without
/// them; abandoned temp/generation files are removed.
///
/// # Errors
///
/// Propagates I/O failures from scanning the directory or rewriting the
/// manifest (individual file problems are repairs, not errors).
pub fn fsck(base: &Path, images: &[PathBuf]) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    let cd = CommitDir::new(base);
    let manifest = match cd.read_manifest() {
        Ok(m) => m,
        Err(ManifestError::Corrupt(e)) => {
            let mpath = cd.manifest_path();
            if let Some(dest) = sfcc_faultfs::quarantine(&mpath) {
                report.quarantined.push(dest);
            }
            let _ = e;
            None
        }
        Err(ManifestError::Io(e)) => return Err(e),
    };

    let manifest = match manifest {
        Some(m) => {
            let mut survivors = Vec::new();
            for entry in &m.entries {
                let ok = match cd.load_entry(entry) {
                    Ok(bytes) => decodes(&entry.logical, &bytes),
                    Err(_) => false,
                };
                if ok {
                    report.checked += 1;
                    survivors.push(entry.clone());
                } else {
                    let path = cd.entry_path(entry);
                    if let Some(dest) = sfcc_faultfs::quarantine(&path) {
                        report.quarantined.push(dest);
                    }
                }
            }
            if survivors.len() != m.entries.len() {
                let repaired = cd.publish(m.generation + 1, survivors, Durability::Fast)?;
                report.repaired_manifest = true;
                Some(repaired)
            } else {
                Some(m)
            }
        }
        None => {
            // Legacy files: verify the plain state file and its cache.
            for (path, logical) in [
                (base.to_path_buf(), STATE_LOGICAL),
                (legacy_cache_path(base), CACHE_LOGICAL),
            ] {
                if let Ok(bytes) = std::fs::read(&path) {
                    if decodes(logical, &bytes) {
                        report.checked += 1;
                    } else if let Some(dest) = sfcc_faultfs::quarantine(&path) {
                        report.quarantined.push(dest);
                    }
                }
            }
            None
        }
    };

    match cd.orphans(manifest.as_ref()) {
        Ok(orphans) => {
            for path in orphans {
                if std::fs::remove_file(&path).is_ok() {
                    report.removed.push(path);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    for image in images {
        if let Ok(bytes) = std::fs::read(image) {
            if sfcc_backend::image::from_bytes(&bytes).is_ok() {
                report.checked += 1;
            } else if let Some(dest) = sfcc_faultfs::quarantine(image) {
                report.quarantined.push(dest);
            }
        }
    }
    Ok(report)
}

fn decodes(logical: &str, bytes: &[u8]) -> bool {
    match logical {
        STATE_LOGICAL => statefile::from_bytes(bytes).is_ok(),
        CACHE_LOGICAL => FunctionCache::from_bytes(bytes).is_ok(),
        // Unknown logicals (a newer version's artifacts): the manifest
        // checksum already verified the bytes.
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpbase(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfcc-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join(".sfcc-state")
    }

    fn cleanup(base: &Path) {
        fs::remove_dir_all(base.parent().unwrap()).unwrap();
    }

    #[test]
    fn save_load_roundtrip_via_manifest() {
        let base = tmpbase("roundtrip");
        let db = StateDb::new();
        let cache = FunctionCache::new();
        save(&base, Some(&db), Some(&cache), Durability::Fast).unwrap();
        let loaded = load(&base, true, true);
        assert!(loaded.events.is_empty());
        assert!(loaded.db_error.is_none());
        assert_eq!(loaded.db, db);
        cleanup(&base);
    }

    #[test]
    fn legacy_plain_files_still_load() {
        let base = tmpbase("legacy");
        statefile::save(&StateDb::new(), &base).unwrap();
        FunctionCache::new()
            .save(&legacy_cache_path(&base))
            .unwrap();
        let loaded = load(&base, true, true);
        assert!(loaded.events.is_empty());
        assert!(loaded.db_error.is_none());
        cleanup(&base);
    }

    #[test]
    fn corrupt_legacy_state_is_quarantined() {
        let base = tmpbase("corrupt-legacy");
        fs::write(&base, b"garbage").unwrap();
        let loaded = load(&base, true, false);
        assert!(loaded.db_error.is_some());
        assert_eq!(loaded.events.len(), 1);
        assert!(loaded.events[0].quarantined_to.is_some());
        assert!(!base.exists(), "corrupt file moved aside");
        assert!(base.parent().unwrap().join(".sfcc-state.corrupt").exists());
        cleanup(&base);
    }

    #[test]
    fn corrupt_manifest_is_quarantined_and_cold_starts() {
        let base = tmpbase("corrupt-manifest");
        save(&base, Some(&StateDb::new()), None, Durability::Fast).unwrap();
        let mpath = CommitDir::new(&base).manifest_path();
        fs::write(&mpath, b"not a manifest").unwrap();
        let loaded = load(&base, true, true);
        assert!(loaded.db_error.is_some());
        assert!(!mpath.exists());
        assert_eq!(loaded.events.len(), 1);
        cleanup(&base);
    }

    #[test]
    fn corrupt_entry_quarantines_only_that_logical() {
        let base = tmpbase("corrupt-entry");
        save(
            &base,
            Some(&StateDb::new()),
            Some(&FunctionCache::new()),
            Durability::Fast,
        )
        .unwrap();
        let cd = CommitDir::new(&base);
        let m = cd.read_manifest().unwrap().unwrap();
        let state_path = cd.entry_path(m.entry(STATE_LOGICAL).unwrap());
        fs::write(&state_path, b"garbage").unwrap();
        let loaded = load(&base, true, true);
        assert!(loaded.db_error.is_some(), "state cold-started");
        assert_eq!(loaded.events.len(), 1, "cache entry untouched");
        assert!(!state_path.exists());
        cleanup(&base);
    }

    #[test]
    fn peek_state_does_not_quarantine() {
        let base = tmpbase("peek");
        fs::write(&base, b"garbage").unwrap();
        assert!(peek_state(&base).is_err());
        assert!(base.exists(), "read-only inspection must not mutate");
        cleanup(&base);
    }

    #[test]
    fn fsck_repairs_a_damaged_directory() {
        let base = tmpbase("fsck");
        save(
            &base,
            Some(&StateDb::new()),
            Some(&FunctionCache::new()),
            Durability::Fast,
        )
        .unwrap();
        let cd = CommitDir::new(&base);
        let m = cd.read_manifest().unwrap().unwrap();
        // Corrupt the cache entry and drop an abandoned temp file.
        let cache_path = cd.entry_path(m.entry(CACHE_LOGICAL).unwrap());
        fs::write(&cache_path, b"zap").unwrap();
        let orphan = base.parent().unwrap().join(".sfcc-state.manifest.tmp.1.2");
        fs::write(&orphan, b"junk").unwrap();

        let report = fsck(&base, &[]).unwrap();
        assert!(!report.clean());
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.repaired_manifest);
        assert!(report.removed.iter().any(|p| p == &orphan));

        // The repaired directory loads cleanly and a re-check is clean.
        let loaded = load(&base, true, true);
        assert!(loaded.db_error.is_none());
        assert!(loaded.events.is_empty());
        assert!(fsck(&base, &[]).unwrap().clean());
        cleanup(&base);
    }
}
