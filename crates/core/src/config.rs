//! Compiler session configuration.

use sfcc_faultfs::Durability;
use sfcc_state::SkipPolicy;
use std::path::PathBuf;

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// SSA construction only.
    O0,
    /// Scalar optimizations without inlining or loop transforms.
    O1,
    /// The full default pipeline.
    #[default]
    O2,
}

/// Whether the compiler keeps state across builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The conventional stateless compiler: every pass always runs, nothing
    /// is remembered. This is the paper's baseline.
    Stateless,
    /// The stateful compiler: dormancy is recorded every build and passes
    /// are skipped according to the policy.
    Stateful(SkipPolicy),
}

impl Mode {
    /// The stateful mode at the paper's design point
    /// ([`SkipPolicy::PreviousBuild`]).
    pub fn stateful_default() -> Mode {
        Mode::Stateful(SkipPolicy::PreviousBuild)
    }

    /// Whether this mode records and uses dormancy state.
    pub fn is_stateful(&self) -> bool {
        matches!(self, Mode::Stateful(_))
    }

    /// A short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            Mode::Stateless => "stateless".to_string(),
            Mode::Stateful(p) => format!("stateful/{}", p.label()),
        }
    }
}

/// Configuration of a [`crate::Compiler`] session.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stateless baseline or stateful compilation.
    pub mode: Mode,
    /// Optimization level.
    pub opt_level: OptLevel,
    /// Verify the IR after every pass that reports a change (slow; meant
    /// for tests).
    pub verify_each: bool,
    /// Where to persist the state database; `None` keeps state in memory
    /// only (it still survives across compilations within one session).
    pub state_path: Option<PathBuf>,
    /// Enable the function-level IR cache (the reproduction's extension,
    /// see [`crate::fncache`]): functions whose context fingerprint matches
    /// a previous compilation reuse their optimized IR outright.
    pub function_cache: bool,
    /// Worker threads for function-level parallel optimization (`--jobs`).
    /// `1` (the default) runs fully sequentially; output is byte-identical
    /// for every value.
    pub jobs: usize,
    /// How hard durable writes (state, cache, images) try to survive an
    /// OS-level crash. Both modes are crash-consistent; see
    /// [`Durability`].
    pub durability: Durability,
    /// Directory of a shared content-addressed artifact store
    /// (`sfcc-cas`), consulted as a second level below the in-process
    /// function cache. `None` disables the store.
    pub cas_path: Option<PathBuf>,
    /// Size budget (bytes) for the shared store: publishes evict
    /// least-recently-used artifacts until the store fits. `None` never
    /// evicts.
    pub cas_budget: Option<u64>,
    /// Override of the backend format version baked into every store key
    /// (defaults to [`sfcc_cas::DEFAULT_BACKEND_VERSION`]); tests use it
    /// to prove the component is load-bearing.
    pub cas_backend_version: Option<u32>,
}

impl Config {
    /// A stateless `-O2` configuration (the baseline).
    pub fn stateless() -> Self {
        Config {
            mode: Mode::Stateless,
            opt_level: OptLevel::O2,
            verify_each: false,
            state_path: None,
            function_cache: false,
            jobs: 1,
            durability: Durability::Fast,
            cas_path: None,
            cas_budget: None,
            cas_backend_version: None,
        }
    }

    /// A stateful `-O2` configuration at the paper's design point.
    pub fn stateful() -> Self {
        Config {
            mode: Mode::stateful_default(),
            ..Config::stateless()
        }
    }

    /// Sets the optimization level; returns `self` for chaining.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Sets the skip policy (switching to stateful mode).
    pub fn with_policy(mut self, policy: SkipPolicy) -> Self {
        self.mode = Mode::Stateful(policy);
        self
    }

    /// Enables per-pass IR verification.
    pub fn with_verification(mut self) -> Self {
        self.verify_each = true;
        self
    }

    /// Sets the state-file path.
    pub fn with_state_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.state_path = Some(path.into());
        self
    }

    /// Enables the function-level IR cache.
    pub fn with_function_cache(mut self) -> Self {
        self.function_cache = true;
        self
    }

    /// Sets the worker-thread count for function-level parallel
    /// optimization (floored at 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the durability mode for state/cache/image writes.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Points the session at a shared content-addressed artifact store
    /// directory (also enables the function cache, which fronts it).
    pub fn with_cas_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cas_path = Some(path.into());
        self.function_cache = true;
        self
    }

    /// Sets the shared store's size budget in bytes.
    pub fn with_cas_budget(mut self, budget: u64) -> Self {
        self.cas_budget = Some(budget);
        self
    }

    /// Overrides the backend format version in the store key (test hook).
    pub fn with_cas_backend_version(mut self, version: u32) -> Self {
        self.cas_backend_version = Some(version);
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::stateless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = Config::stateless()
            .with_opt_level(OptLevel::O0)
            .with_policy(SkipPolicy::Consecutive(2))
            .with_verification()
            .with_state_path("/tmp/x")
            .with_function_cache();
        assert_eq!(c.opt_level, OptLevel::O0);
        assert!(c.mode.is_stateful());
        assert!(c.verify_each);
        assert!(c.state_path.is_some());
        assert!(c.function_cache);
    }

    #[test]
    fn labels() {
        assert_eq!(Mode::Stateless.label(), "stateless");
        assert_eq!(Mode::stateful_default().label(), "stateful/prev-build");
    }
}
