//! # sfcc — a stateful compiler for fine-grained incremental builds
//!
//! Reproduction of *"Enabling Fine-Grained Incremental Builds by Making
//! Compiler Stateful"* (Han, Zhao, Kim — CGO 2024).
//!
//! Conventional build systems are stateful (they track file dependencies
//! across builds) while compilers are stateless (every invocation starts
//! from scratch). `sfcc` closes that asymmetry for the MiniC language:
//! the compiler records, per function and per optimization pass, whether the
//! pass was **dormant** (ran but changed nothing) and, on the next build,
//! **skips** passes its history says are dormant — compressing the
//! recompilation of *modified* files, the part file-level incrementality
//! cannot help with.
//!
//! The crate exposes one central type, [`Compiler`]: a session that compiles
//! MiniC modules to relocatable bytecode objects, in either
//! [`Mode::Stateless`] (the baseline) or [`Mode::Stateful`] with a
//! configurable [`SkipPolicy`].
//!
//! # Examples
//!
//! ```
//! use sfcc::{Compiler, Config};
//! use sfcc_frontend::ModuleEnv;
//!
//! let mut compiler = Compiler::new(Config::stateful());
//! let src_v1 = "fn main(n: int) -> int { return n * 2; }";
//! let src_v2 = "fn main(n: int) -> int { return n * 2 + 1; }";
//!
//! // First build: everything runs, dormancy is recorded.
//! let first = compiler.compile("main", src_v1, &ModuleEnv::new())?;
//! assert_eq!(first.outcome_totals().2, 0); // nothing skipped cold
//!
//! // Incremental rebuild of the edited file: dormant passes are skipped.
//! let second = compiler.compile("main", src_v2, &ModuleEnv::new())?;
//! assert!(second.outcome_totals().2 > 0);
//! # Ok::<(), sfcc::CompileError>(())
//! ```

pub mod compiler;
pub mod config;
pub mod fncache;
pub mod persist;
pub mod phases;

pub use compiler::{extract_interface, CompileError, CompileOutput, Compiler, PhaseTimings};
pub use config::{Config, Mode, OptLevel};
pub use fncache::{CacheStats, FunctionCache};
pub use persist::{FsckReport, LoadedState, RecoveryEvent};
pub use phases::OptimizeOutcome;
pub use sfcc_faultfs::Durability;
pub use sfcc_state::SkipPolicy;
