//! Scripted fault plans.
//!
//! A plan is a comma-separated list of faults, each pinned to a
//! deterministic operation index (operations are counted from 1, per
//! thread, starting at [`crate::install`] / [`crate::record`]):
//!
//! ```text
//! crash-at:K      every op with index >= K fails (the process "died")
//! torn:K:B        op K (a write) persists only its first B bytes, then crash
//! fail:K          op K fails once with a transient I/O error
//! enospc:K        op K fails once with ENOSPC
//! bitflip:K:B     op K (a read) returns its data with absolute bit B flipped
//! fail-rename:N   the N-th rename operation fails once
//! ```
//!
//! Plans are parsed from `--fault-plan` / the `SFCC_FAULT_PLAN` environment
//! variable by `minicc`, and constructed directly by the crash harness.

use std::fmt;

/// One scripted fault. See the module docs for the spec grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Every operation with index `>= .0` fails: the process crashed.
    CrashAt(u64),
    /// Operation `op` (if a write) persists only `keep` bytes, then the
    /// thread is crashed (all later operations fail).
    TornAt {
        /// Operation index.
        op: u64,
        /// Bytes actually persisted before the crash.
        keep: usize,
    },
    /// Operation `.0` fails once with a generic injected I/O error;
    /// later operations proceed (a transient fault).
    FailAt(u64),
    /// Operation `.0` fails once with `ENOSPC`.
    EnospcAt(u64),
    /// Operation `op` (if a read) succeeds but returns its data with
    /// absolute bit `bit` flipped — silent media corruption.
    BitflipAt {
        /// Operation index.
        op: u64,
        /// Absolute bit position; mapped into the buffer modulo its length.
        bit: u64,
    },
    /// The `.0`-th *rename* operation (1-based, counted over renames only)
    /// fails once.
    FailRename(u64),
}

/// A deterministic, scriptable set of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted faults, applied independently per operation.
    pub faults: Vec<Fault>,
}

/// A malformed fault-plan spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Parses a comma-separated spec string (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] describing the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, PlanError> {
        let mut faults = Vec::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let kind = parts.next().unwrap_or_default();
            let mut num = |what: &str| -> Result<u64, PlanError> {
                parts
                    .next()
                    .ok_or_else(|| PlanError(format!("`{clause}`: missing {what}")))?
                    .parse::<u64>()
                    .map_err(|_| PlanError(format!("`{clause}`: {what} is not a number")))
            };
            let fault = match kind {
                "crash-at" => Fault::CrashAt(num("op index")?),
                "torn" => Fault::TornAt {
                    op: num("op index")?,
                    keep: num("byte count")? as usize,
                },
                "fail" => Fault::FailAt(num("op index")?),
                "enospc" => Fault::EnospcAt(num("op index")?),
                "bitflip" => Fault::BitflipAt {
                    op: num("op index")?,
                    bit: num("bit position")?,
                },
                "fail-rename" => Fault::FailRename(num("rename index")?),
                other => {
                    return Err(PlanError(format!("unknown fault kind `{other}`")));
                }
            };
            if let Some(extra) = parts.next() {
                return Err(PlanError(format!("`{clause}`: trailing `{extra}`")));
            }
            faults.push(fault);
        }
        Ok(FaultPlan { faults })
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse(
            "crash-at:3, torn:2:17, fail:9, enospc:1, bitflip:4:12, fail-rename:2",
        )
        .unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::CrashAt(3),
                Fault::TornAt { op: 2, keep: 17 },
                Fault::FailAt(9),
                Fault::EnospcAt(1),
                Fault::BitflipAt { op: 4, bit: 12 },
                Fault::FailRename(2),
            ]
        );
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("explode:1").is_err());
        assert!(FaultPlan::parse("crash-at").is_err());
        assert!(FaultPlan::parse("crash-at:x").is_err());
        assert!(FaultPlan::parse("torn:1").is_err());
        assert!(FaultPlan::parse("crash-at:1:2").is_err());
    }
}
