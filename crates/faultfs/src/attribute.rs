//! Task attribution for I/O and logical-resource accesses.
//!
//! The dependency-soundness checker (`minicc depcheck`) needs every file
//! access and every logical-input read (a source file, the project
//! manifest, a module's dormancy record) attributed to the *query task*
//! that performed it, so it can diff actual accesses against the engine's
//! declared dependencies. Two pieces live here:
//!
//! * a **thread-local task-context stack** ([`task_scope`]): the build
//!   system pushes the active task's label around each task body, and the
//!   work-stealing pool carries a cloneable snapshot ([`current_task`] /
//!   [`TaskCtx::enter`]) across `spawn`, so work executed on a worker
//!   thread is attributed to the task that spawned it — mirroring how
//!   `sfcc_trace` propagates span contexts;
//! * a **process-global access log** ([`record_accesses`] /
//!   [`note_access`]): while a recording guard is alive, every noted
//!   logical-resource access is appended as an [`AccessRecord`] tagged
//!   with the calling thread's active task. The log is global (not
//!   thread-local) precisely because pool workers access resources on
//!   behalf of tasks; an install lock serializes concurrent recorders the
//!   same way `sfcc_trace::install` does.
//!
//! When no recorder is installed, [`note_access`] is one relaxed atomic
//! load — recording sites stay in the hot path unconditionally.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

thread_local! {
    /// Stack of active task labels on this thread; the top attributes.
    static TASK_STACK: RefCell<Vec<Arc<str>>> = const { RefCell::new(Vec::new()) };
}

/// Pushes `label` as the thread's active task until the guard drops.
/// Nested scopes attribute to the innermost label.
#[must_use = "the task context pops when the guard drops"]
pub fn task_scope(label: impl Into<String>) -> TaskGuard {
    let label: Arc<str> = Arc::from(label.into());
    TASK_STACK.with(|s| s.borrow_mut().push(label));
    TaskGuard { _priv: () }
}

/// Pops the task label pushed by [`task_scope`] on drop.
#[derive(Debug)]
pub struct TaskGuard {
    _priv: (),
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        TASK_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The thread's active task label, if any (the innermost [`task_scope`]).
pub fn active_task() -> Option<String> {
    TASK_STACK.with(|s| s.borrow().last().map(|l| l.to_string()))
}

/// A cloneable snapshot of the calling thread's task context, for carrying
/// attribution across thread boundaries (a pool `spawn`). Entering an empty
/// context is free and changes nothing.
#[derive(Debug, Clone)]
pub struct TaskCtx(Option<Arc<str>>);

/// Captures the calling thread's current task context.
pub fn current_task() -> TaskCtx {
    TaskCtx(TASK_STACK.with(|s| s.borrow().last().cloned()))
}

impl TaskCtx {
    /// Makes this context the thread's active task until the guard drops.
    #[must_use = "the task context pops when the guard drops"]
    pub fn enter(&self) -> TaskCtxGuard {
        match &self.0 {
            Some(label) => {
                TASK_STACK.with(|s| s.borrow_mut().push(Arc::clone(label)));
                TaskCtxGuard { pushed: true }
            }
            None => TaskCtxGuard { pushed: false },
        }
    }
}

/// RAII guard restoring the previous task context; see [`TaskCtx::enter`].
#[derive(Debug)]
pub struct TaskCtxGuard {
    pushed: bool,
}

impl Drop for TaskCtxGuard {
    fn drop(&mut self) {
        if self.pushed {
            TASK_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// One logical-resource access noted while a recorder was installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// The task active on the accessing thread, if any. Accesses outside
    /// any task scope (driver/session-level work) carry `None`.
    pub task: Option<String>,
    /// The logical resource name (domain-defined, e.g. `src:lib`,
    /// `manifest`, `state:lib`).
    pub resource: String,
}

static ACCESS_ENABLED: AtomicBool = AtomicBool::new(false);
static ACCESS_INSTALL: Mutex<()> = Mutex::new(());
static ACCESS_LOG: Mutex<Vec<AccessRecord>> = Mutex::new(Vec::new());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs the process-global access recorder. Holds a static install lock
/// for the guard's lifetime, so concurrent recorders (parallel tests)
/// serialize instead of mixing logs. Dropping the guard stops recording and
/// clears the log.
#[must_use = "recording stops when the guard drops"]
pub fn record_accesses() -> AccessLogGuard {
    let guard = ACCESS_INSTALL.lock().unwrap_or_else(|e| e.into_inner());
    lock(&ACCESS_LOG).clear();
    ACCESS_ENABLED.store(true, Ordering::SeqCst);
    AccessLogGuard { _guard: guard }
}

/// Owner of the installed access recorder; see [`record_accesses`].
pub struct AccessLogGuard {
    _guard: MutexGuard<'static, ()>,
}

impl AccessLogGuard {
    /// Takes the accesses recorded so far (recording stays active with an
    /// empty log).
    pub fn take(&self) -> Vec<AccessRecord> {
        std::mem::take(&mut lock(&ACCESS_LOG))
    }
}

impl Drop for AccessLogGuard {
    fn drop(&mut self) {
        ACCESS_ENABLED.store(false, Ordering::SeqCst);
        lock(&ACCESS_LOG).clear();
    }
}

/// Notes a logical-resource access, attributed to the calling thread's
/// active task. One relaxed atomic load when no recorder is installed.
#[inline]
pub fn note_access(resource: &str) {
    if !ACCESS_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    lock(&ACCESS_LOG).push(AccessRecord {
        task: active_task(),
        resource: resource.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_scopes_nest_and_pop() {
        assert_eq!(active_task(), None);
        let outer = task_scope("outer");
        assert_eq!(active_task().as_deref(), Some("outer"));
        {
            let _inner = task_scope("inner");
            assert_eq!(active_task().as_deref(), Some("inner"));
        }
        assert_eq!(active_task().as_deref(), Some("outer"));
        drop(outer);
        assert_eq!(active_task(), None);
    }

    #[test]
    fn ctx_carries_attribution_across_threads() {
        let rec = record_accesses();
        let ctx = {
            let _scope = task_scope("optimize(lib)");
            current_task()
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                let _enter = ctx.enter();
                note_access("state:lib");
            });
        });
        note_access("manifest"); // outside any task scope
        let log = rec.take();
        assert_eq!(
            log,
            vec![
                AccessRecord {
                    task: Some("optimize(lib)".into()),
                    resource: "state:lib".into()
                },
                AccessRecord {
                    task: None,
                    resource: "manifest".into()
                },
            ]
        );
    }

    #[test]
    fn disabled_recording_is_inert() {
        // The install lock guarantees no recorder is alive concurrently.
        let _lock = ACCESS_INSTALL.lock().unwrap_or_else(|e| e.into_inner());
        note_access("src:lib");
        assert!(lock(&ACCESS_LOG).is_empty());
    }
}
