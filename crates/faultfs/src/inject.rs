//! The fault-injectable I/O layer.
//!
//! Every durable operation in the system goes through the wrappers here
//! ([`read`], [`write`], [`rename`], [`remove_file`], [`sync_file`],
//! [`sync_dir`], [`atomic_write`]). Each call is assigned a 1-based,
//! thread-local operation index; an installed [`FaultPlan`] is consulted at
//! every index and can fail the operation, tear a write, flip a bit on a
//! read, or "crash" the thread (all subsequent operations fail).
//!
//! Fault state is thread-local on purpose: all durable I/O in the compiler
//! happens on the thread that owns the `Compiler`/`Builder` (pool workers
//! never touch disk), so a plan installed by one test cannot perturb tests
//! running in parallel.

use std::cell::RefCell;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::{Fault, FaultPlan};
use crate::Durability;

/// The kind of a durable I/O operation, as counted by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Whole-file read.
    Read,
    /// Whole-file write (of a temp or generation file).
    Write,
    /// Atomic rename (the commit point of [`atomic_write`]).
    Rename,
    /// File removal (GC of replaced generation files).
    Remove,
    /// `fsync` of a file (durable mode only).
    SyncFile,
    /// `fsync` of a directory (durable mode only).
    SyncDir,
}

impl OpKind {
    /// A short label for logs and harness output.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Rename => "rename",
            OpKind::Remove => "remove",
            OpKind::SyncFile => "sync-file",
            OpKind::SyncDir => "sync-dir",
        }
    }
}

/// Cumulative per-kind counts of durable operations on the current thread
/// (see [`op_counts`]). Unlike the 1-based fault-plan index, these are
/// *never reset* — not by [`install`], not by [`record`] — so telemetry
/// reads cannot perturb the op numbering existing fault plans rely on.
/// Callers wanting per-build figures snapshot before/after and subtract
/// ([`OpCounts::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Whole-file reads.
    pub reads: u64,
    /// Whole-file writes.
    pub writes: u64,
    /// Atomic renames.
    pub renames: u64,
    /// File removals.
    pub removes: u64,
    /// File fsyncs.
    pub sync_files: u64,
    /// Directory fsyncs.
    pub sync_dirs: u64,
}

impl OpCounts {
    /// Total operations across all kinds.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.renames + self.removes + self.sync_files + self.sync_dirs
    }

    /// Per-kind difference `self − earlier` (saturating), for turning two
    /// cumulative snapshots into one interval's counts.
    pub fn delta_since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            renames: self.renames.saturating_sub(earlier.renames),
            removes: self.removes.saturating_sub(earlier.removes),
            sync_files: self.sync_files.saturating_sub(earlier.sync_files),
            sync_dirs: self.sync_dirs.saturating_sub(earlier.sync_dirs),
        }
    }

    fn bump(&mut self, kind: OpKind) {
        match kind {
            OpKind::Read => self.reads += 1,
            OpKind::Write => self.writes += 1,
            OpKind::Rename => self.renames += 1,
            OpKind::Remove => self.removes += 1,
            OpKind::SyncFile => self.sync_files += 1,
            OpKind::SyncDir => self.sync_dirs += 1,
        }
    }
}

/// The current thread's cumulative durable-operation counts (attempted
/// operations, including ones a fault plan failed).
pub fn op_counts() -> OpCounts {
    TL.with(|tl| tl.borrow().counts)
}

/// One recorded durable operation (see [`record`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The 1-based thread-local operation index.
    pub index: u64,
    /// What the operation was.
    pub kind: OpKind,
    /// The path it targeted.
    pub path: PathBuf,
    /// The query task active when the operation ran (see
    /// [`crate::task_scope`]), if any. Session-level I/O (state load/save,
    /// report writes) carries `None`.
    pub task: Option<String>,
}

struct TlState {
    plan: Option<FaultPlan>,
    /// Set once a `CrashAt`/`TornAt` fault fires: the simulated process is
    /// dead and every further operation fails.
    crashed: bool,
    /// Next operation index to hand out (1-based).
    next_op: u64,
    /// Number of rename operations seen so far (for `fail-rename`).
    renames: u64,
    /// One-shot faults that already fired (so `fail`/`enospc`/`fail-rename`
    /// are transient rather than sticky).
    fired: Vec<Fault>,
    log: Option<Vec<OpRecord>>,
    /// Lifetime per-kind op counters (never reset; see [`OpCounts`]).
    counts: OpCounts,
}

impl TlState {
    const fn new() -> Self {
        TlState {
            plan: None,
            crashed: false,
            next_op: 1,
            renames: 0,
            fired: Vec::new(),
            log: None,
            counts: OpCounts {
                reads: 0,
                writes: 0,
                renames: 0,
                removes: 0,
                sync_files: 0,
                sync_dirs: 0,
            },
        }
    }
}

thread_local! {
    static TL: RefCell<TlState> = const { RefCell::new(TlState::new()) };
}

/// The payload of an injected [`io::Error`]; lets callers and tests
/// distinguish scripted faults from real filesystem errors.
#[derive(Debug)]
struct InjectedFault {
    op: u64,
    what: &'static str,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at op {}: {}", self.op, self.what)
    }
}

impl std::error::Error for InjectedFault {}

fn injected(op: u64, what: &'static str) -> io::Error {
    io::Error::other(InjectedFault { op, what })
}

/// Whether an [`io::Error`] was produced by the fault injector (as opposed
/// to a real filesystem failure).
pub fn is_injected(err: &io::Error) -> bool {
    err.get_ref()
        .map(|inner| inner.is::<InjectedFault>())
        .unwrap_or(false)
}

/// Installs a fault plan on the current thread, resetting the operation
/// counter to 1. Dropping the returned guard uninstalls the plan.
#[must_use = "the plan is uninstalled when the guard drops"]
pub fn install(plan: FaultPlan) -> FaultGuard {
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        tl.plan = Some(plan);
        tl.crashed = false;
        tl.next_op = 1;
        tl.renames = 0;
        tl.fired.clear();
    });
    FaultGuard { _priv: () }
}

/// Uninstalls the thread's fault plan on drop. Returned by [`install`].
#[derive(Debug)]
pub struct FaultGuard {
    _priv: (),
}

impl FaultGuard {
    /// The next operation index the injector will hand out on this thread —
    /// i.e. one past the number of operations performed since [`install`].
    pub fn ops_so_far(&self) -> u64 {
        TL.with(|tl| tl.borrow().next_op - 1)
    }

    /// Whether a crash fault has fired on this thread.
    pub fn crashed(&self) -> bool {
        TL.with(|tl| tl.borrow().crashed)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        TL.with(|tl| {
            let mut tl = tl.borrow_mut();
            tl.plan = None;
            tl.crashed = false;
            tl.fired.clear();
        });
    }
}

/// Starts recording every durable operation on the current thread (and
/// resets the operation counter to 1), so the crash harness can enumerate
/// injection points. Dropping the guard stops recording.
#[must_use = "recording stops when the guard drops"]
pub fn record() -> RecordGuard {
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        tl.next_op = 1;
        tl.renames = 0;
        tl.log = Some(Vec::new());
    });
    RecordGuard { _priv: () }
}

/// Stops recording on drop; [`RecordGuard::take`] returns the log.
/// Returned by [`record`].
#[derive(Debug)]
pub struct RecordGuard {
    _priv: (),
}

impl RecordGuard {
    /// Takes the operations recorded so far (leaving recording active with
    /// an empty log).
    pub fn take(&self) -> Vec<OpRecord> {
        TL.with(|tl| tl.borrow_mut().log.replace(Vec::new()).unwrap_or_default())
    }
}

impl Drop for RecordGuard {
    fn drop(&mut self) {
        TL.with(|tl| tl.borrow_mut().log = None);
    }
}

enum Action {
    Proceed,
    /// Persist only this many bytes of the write, then crash.
    Torn(usize),
    /// Flip this absolute bit of the read-back data.
    Flip(u64),
}

/// Counts the operation, records it if recording, and evaluates the
/// installed plan. `Err` means the operation must fail without touching the
/// filesystem; `Ok(action)` tells the wrapper how to proceed.
fn enter(kind: OpKind, path: &Path) -> io::Result<Action> {
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        let op = tl.next_op;
        tl.next_op += 1;
        tl.counts.bump(kind);
        if kind == OpKind::Rename {
            tl.renames += 1;
        }
        let renames = tl.renames;
        if tl.log.is_some() {
            let task = crate::attribute::active_task();
            if let Some(log) = tl.log.as_mut() {
                log.push(OpRecord {
                    index: op,
                    kind,
                    path: path.to_path_buf(),
                    task,
                });
            }
        }
        if tl.plan.is_none() {
            return Ok(Action::Proceed);
        }
        if tl.crashed {
            return Err(injected(op, "process crashed"));
        }
        let faults = tl
            .plan
            .as_ref()
            .map(|p| p.faults.clone())
            .unwrap_or_default();
        let mut action = Action::Proceed;
        for fault in faults {
            match fault {
                Fault::CrashAt(k) if op >= k => {
                    tl.crashed = true;
                    return Err(injected(op, "crash"));
                }
                Fault::TornAt { op: k, keep } if op == k => {
                    if kind == OpKind::Write {
                        tl.crashed = true;
                        action = Action::Torn(keep);
                    } else {
                        tl.crashed = true;
                        return Err(injected(op, "crash (torn on non-write)"));
                    }
                }
                Fault::FailAt(k) if op == k && !tl.fired.contains(&fault) => {
                    tl.fired.push(fault);
                    return Err(injected(op, "transient I/O failure"));
                }
                Fault::EnospcAt(k) if op == k && !tl.fired.contains(&fault) => {
                    tl.fired.push(fault);
                    #[cfg(unix)]
                    return Err(io::Error::from_raw_os_error(28));
                    #[cfg(not(unix))]
                    return Err(injected(op, "enospc"));
                }
                Fault::BitflipAt { op: k, bit } if op == k && kind == OpKind::Read => {
                    action = Action::Flip(bit);
                }
                Fault::FailRename(n)
                    if kind == OpKind::Rename && renames == n && !tl.fired.contains(&fault) =>
                {
                    tl.fired.push(fault);
                    return Err(injected(op, "rename failure"));
                }
                _ => {}
            }
        }
        Ok(action)
    })
}

/// Reads a whole file through the injector. A `bitflip` fault on this
/// operation corrupts one bit of the returned data.
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    let action = enter(OpKind::Read, path)?;
    let mut data = fs::read(path)?;
    if let Action::Flip(bit) = action {
        if !data.is_empty() {
            let byte = ((bit / 8) as usize) % data.len();
            data[byte] ^= 1 << (bit % 8) as u8;
        }
    }
    Ok(data)
}

/// Writes a whole file through the injector. A `torn` fault on this
/// operation persists only a prefix of `bytes` and then crashes the thread.
pub fn write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match enter(OpKind::Write, path)? {
        Action::Torn(keep) => {
            let keep = keep.min(bytes.len());
            fs::write(path, &bytes[..keep])?;
            Err(injected(0, "torn write"))
        }
        _ => fs::write(path, bytes),
    }
}

/// Renames a file through the injector.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    enter(OpKind::Rename, from)?;
    fs::rename(from, to)
}

/// Removes a file through the injector.
pub fn remove_file(path: &Path) -> io::Result<()> {
    enter(OpKind::Remove, path)?;
    fs::remove_file(path)
}

/// `fsync`s a file through the injector.
pub fn sync_file(path: &Path) -> io::Result<()> {
    enter(OpKind::SyncFile, path)?;
    fs::File::open(path)?.sync_all()
}

/// `fsync`s a directory through the injector (a no-op error on platforms
/// where directories cannot be opened).
pub fn sync_dir(path: &Path) -> io::Result<()> {
    enter(OpKind::SyncDir, path)?;
    fs::File::open(path)?.sync_all()
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-globally unique sequence number, shared with temp-file naming.
/// Combined with the pid it makes durable file names collision-free across
/// racing builders, so a published file is never rewritten in place.
pub fn unique_seq() -> u64 {
    TMP_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// A temp-file path unique across threads *and* processes: the pid and a
/// process-global counter are embedded in the name, so two builders racing
/// on one state directory can never interleave torn writes on one temp.
fn unique_tmp(path: &Path) -> PathBuf {
    let seq = unique_seq();
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    path.with_file_name(format!("{name}.tmp.{}.{seq}", std::process::id()))
}

/// Atomically replaces `path` with `bytes`: write a uniquely named temp
/// file, optionally sync it, rename it over `path`, optionally sync the
/// parent directory. A crash at any point leaves either the old or the new
/// contents at `path`, never a mixture.
///
/// Failed temp files are deliberately left behind (the thread may be
/// "crashed"); `minicc fsck` garbage-collects them.
pub fn atomic_write(path: &Path, bytes: &[u8], durability: Durability) -> io::Result<()> {
    let tmp = unique_tmp(path);
    write(&tmp, bytes)?;
    if durability == Durability::Durable {
        sync_file(&tmp)?;
    }
    rename(&tmp, path)?;
    if durability == Durability::Durable {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                sync_dir(parent)?;
            }
        }
    }
    Ok(())
}

/// Moves a detected-corrupt file aside to `<path>.corrupt`, best-effort and
/// *outside* the injector (quarantine is part of recovery, not a durable
/// write; it must not consume operation indices or fail under a crash
/// plan). If `<path>.corrupt` already holds earlier forensic debris, a
/// unique `<path>.corrupt.<seq>` destination is chosen instead — a repeat
/// corruption of the same logical file must never destroy the evidence of
/// the previous one. Returns the quarantine path if the rename succeeded.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let name = path.file_name()?.to_string_lossy().into_owned();
    let mut dest = path.with_file_name(format!("{name}.corrupt"));
    while dest.exists() {
        dest = path.with_file_name(format!("{name}.corrupt.{}", unique_seq()));
    }
    fs::rename(path, &dest).ok()?;
    Some(dest)
}

/// Whether `name` is a quarantine destination produced by [`quarantine`]:
/// `<file>.corrupt` or `<file>.corrupt.<seq>`. Garbage collectors (`fsck`
/// orphan sweeps) must skip these — they are forensic evidence, not debris.
pub fn is_quarantine_name(name: &str) -> bool {
    match name.rsplit_once(".corrupt") {
        Some((prefix, tail)) => {
            !prefix.is_empty()
                && (tail.is_empty()
                    || tail.strip_prefix('.').is_some_and(|seq| {
                        !seq.is_empty() && seq.bytes().all(|b| b.is_ascii_digit())
                    }))
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfcc-inject-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crash_fails_everything_from_k() {
        let dir = tmpdir("crash");
        let p = dir.join("a");
        let _g = install(FaultPlan::parse("crash-at:2").unwrap());
        write(&p, b"one").unwrap(); // op 1
        let err = write(&p, b"two").unwrap_err(); // op 2: crash
        assert!(is_injected(&err));
        let err = read(&p).unwrap_err(); // op 3: still dead
        assert!(is_injected(&err));
        drop(_g);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_keeps_prefix_then_crashes() {
        let dir = tmpdir("torn");
        let p = dir.join("a");
        let _g = install(FaultPlan::parse("torn:1:2").unwrap());
        assert!(write(&p, b"abcdef").is_err());
        assert!(read(&p).is_err()); // thread is dead
        drop(_g);
        assert_eq!(fs::read(&p).unwrap(), b"ab");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_faults_fire_once() {
        let dir = tmpdir("transient");
        let p = dir.join("a");
        let _g = install(FaultPlan::parse("fail:1").unwrap());
        assert!(write(&p, b"x").is_err()); // op 1 fails once
        write(&p, b"x").unwrap(); // op 2 proceeds
        drop(_g);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_maps_to_raw_os_error() {
        let dir = tmpdir("enospc");
        let p = dir.join("a");
        let _g = install(FaultPlan::parse("enospc:1").unwrap());
        let err = write(&p, b"x").unwrap_err();
        #[cfg(unix)]
        assert_eq!(err.raw_os_error(), Some(28));
        #[cfg(not(unix))]
        assert!(is_injected(&err));
        drop(_g);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_corrupts_exactly_one_bit() {
        let dir = tmpdir("bitflip");
        let p = dir.join("a");
        fs::write(&p, b"\x00\x00\x00").unwrap();
        let _g = install(FaultPlan::parse("bitflip:1:9").unwrap());
        let data = read(&p).unwrap();
        drop(_g);
        assert_eq!(data, vec![0u8, 0b10, 0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_rename_counts_renames_only() {
        let dir = tmpdir("rename");
        let a = dir.join("a");
        let b = dir.join("b");
        fs::write(&a, b"x").unwrap();
        let _g = install(FaultPlan::parse("fail-rename:2").unwrap());
        write(&dir.join("pad"), b"p").unwrap(); // write op, not a rename
        rename(&a, &b).unwrap(); // rename #1
        fs::write(&a, b"y").unwrap();
        assert!(rename(&a, &b).is_err()); // rename #2 fails
        rename(&a, &b).unwrap(); // transient: rename #3 proceeds
        drop(_g);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_logs_atomic_write_ops() {
        let dir = tmpdir("record");
        let p = dir.join("a");
        let rec = record();
        atomic_write(&p, b"x", Durability::Fast).unwrap();
        let fast = rec.take();
        assert_eq!(
            fast.iter().map(|r| r.kind).collect::<Vec<_>>(),
            vec![OpKind::Write, OpKind::Rename]
        );
        atomic_write(&p, b"y", Durability::Durable).unwrap();
        let durable = rec.take();
        assert_eq!(
            durable.iter().map(|r| r.kind).collect::<Vec<_>>(),
            vec![
                OpKind::Write,
                OpKind::SyncFile,
                OpKind::Rename,
                OpKind::SyncDir
            ]
        );
        drop(rec);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn op_counts_accumulate_and_survive_install() {
        let dir = tmpdir("counts");
        let p = dir.join("a");
        let before = op_counts();
        atomic_write(&p, b"x", Durability::Durable).unwrap();
        let mid = op_counts().delta_since(&before);
        assert_eq!((mid.writes, mid.renames), (1, 1));
        assert_eq!((mid.sync_files, mid.sync_dirs), (1, 1));
        assert_eq!(mid.total(), 4);
        // install() resets the fault-plan op index but must NOT reset the
        // cumulative counters (telemetry reads cannot perturb plans).
        let guard = install(FaultPlan::parse("fail:1").unwrap());
        assert!(read(&p).is_err()); // op 1 fails, still counted
        read(&p).unwrap();
        drop(guard);
        let after = op_counts().delta_since(&before);
        assert_eq!(after.reads, 2);
        assert_eq!(after.total(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_moves_file_aside() {
        let dir = tmpdir("quarantine");
        let p = dir.join("state");
        fs::write(&p, b"garbage").unwrap();
        let dest = quarantine(&p).unwrap();
        assert!(!p.exists());
        assert_eq!(dest, dir.join("state.corrupt"));
        assert_eq!(fs::read(&dest).unwrap(), b"garbage");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_quarantine_keeps_all_evidence() {
        let dir = tmpdir("quarantine-repeat");
        let p = dir.join("state");
        fs::write(&p, b"first corruption").unwrap();
        let first = quarantine(&p).unwrap();
        fs::write(&p, b"second corruption").unwrap();
        let second = quarantine(&p).unwrap();
        fs::write(&p, b"third corruption").unwrap();
        let third = quarantine(&p).unwrap();
        assert_eq!(first, dir.join("state.corrupt"));
        assert_ne!(second, first);
        assert_ne!(third, second);
        assert_eq!(fs::read(&first).unwrap(), b"first corruption");
        assert_eq!(fs::read(&second).unwrap(), b"second corruption");
        assert_eq!(fs::read(&third).unwrap(), b"third corruption");
        for dest in [&first, &second, &third] {
            let name = dest.file_name().unwrap().to_string_lossy();
            assert!(is_quarantine_name(&name), "{name}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_name_classification() {
        assert!(is_quarantine_name("state.corrupt"));
        assert!(is_quarantine_name("state.corrupt.7"));
        assert!(is_quarantine_name(
            ".sfcc-state.manifest.tmp.12.3.corrupt.41"
        ));
        assert!(!is_quarantine_name("state"));
        assert!(!is_quarantine_name("state.corrupted"));
        assert!(!is_quarantine_name("state.corrupt.bak"));
        assert!(!is_quarantine_name(".corrupt"));
    }

    #[test]
    fn op_records_carry_active_task() {
        let dir = tmpdir("op-task");
        let p = dir.join("a");
        let rec = record();
        write(&p, b"outside").unwrap();
        {
            let _task = crate::task_scope("link");
            write(&p, b"inside").unwrap();
        }
        let log = rec.take();
        assert_eq!(log[0].task, None);
        assert_eq!(log[1].task.as_deref(), Some("link"));
        drop(rec);
        fs::remove_dir_all(&dir).unwrap();
    }
}
