//! Multi-file atomic commit via a checksummed manifest.
//!
//! Several logical files ("state", "ircache") must move to their new
//! contents *together* — a crash that publishes a new state file against an
//! old cache would make cross-build invariants unverifiable. [`CommitDir`]
//! gives them a single commit point: each logical file is written as an
//! immutable generation file named `<base>.<logical>.g<gen>-<pid>-<seq>`,
//! and the set becomes visible only when the manifest (`<base>.manifest`)
//! is atomically renamed into place. The manifest records every entry's
//! length and FNV-64, so a stale or bit-flipped generation file is detected
//! on load and costs a cold start, never a wrong build.
//!
//! Garbage collection is deliberately conservative: a commit deletes only
//! the generation files *it* replaced (the ones named by the manifest it
//! read). Temp files and generation files abandoned by crashed or foreign
//! builders are cleaned up by `minicc fsck` ([`CommitDir::orphans`]).

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use sfcc_codec::{fnv64, DecodeError, Reader, Writer};

use crate::inject;
use crate::Durability;

/// Magic bytes opening a commit manifest.
pub const MANIFEST_MAGIC: &[u8; 7] = b"SFCCMF\0";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One logical file recorded by a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The logical name ("state", "ircache").
    pub logical: String,
    /// The generation file's name, relative to the base directory.
    pub file: String,
    /// Expected byte length of the generation file.
    pub len: u64,
    /// Expected FNV-64 of the generation file's contents.
    pub checksum: u64,
}

/// The committed set of logical files in a state directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic commit generation (increments on every commit).
    pub generation: u64,
    /// The committed entries, sorted by logical name.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Looks up an entry by logical name.
    pub fn entry(&self, logical: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.logical == logical)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(MANIFEST_MAGIC);
        w.u32(MANIFEST_VERSION);
        w.u64(self.generation);
        w.usize(self.entries.len());
        for e in &self.entries {
            w.str(&e.logical);
            w.str(&e.file);
            w.u64(e.len);
            w.u64(e.checksum);
        }
        let body = w.into_bytes();
        let sum = fnv64(&body);
        let mut w = Writer::new();
        w.raw(&body);
        w.u64(sum);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        // Trailer checksum covers everything before the final varint.
        if bytes.len() < MANIFEST_MAGIC.len() + 2 {
            return Err(DecodeError::UnexpectedEof);
        }
        if &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut r = Reader::new(&bytes[MANIFEST_MAGIC.len()..]);
        let version = r.u32()?;
        if version != MANIFEST_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let generation = r.u64()?;
        let count = r.usize()?;
        let mut entries = Vec::new();
        for _ in 0..count {
            entries.push(ManifestEntry {
                logical: r.str()?,
                file: r.str()?,
                len: r.u64()?,
                checksum: r.u64()?,
            });
        }
        let body_len = bytes.len() - r.remaining();
        let expect = fnv64(&bytes[..body_len]);
        let sum = r.u64()?;
        if sum != expect || !r.is_done() {
            return Err(DecodeError::Corrupt);
        }
        Ok(Manifest {
            generation,
            entries,
        })
    }
}

/// Why a manifest could not be read.
#[derive(Debug)]
pub enum ManifestError {
    /// The manifest file exists but does not decode: it is corrupt and
    /// should be quarantined.
    Corrupt(DecodeError),
    /// The manifest could not be read at all (permissions, injected crash,
    /// transient I/O). The file may be fine; do not quarantine.
    Io(io::Error),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Corrupt(e) => write!(f, "corrupt manifest: {e}"),
            ManifestError::Io(e) => write!(f, "manifest unreadable: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Why a committed entry could not be loaded.
#[derive(Debug)]
pub enum EntryError {
    /// The generation file's bytes do not match the manifest's recorded
    /// length/checksum (or failed to decode downstream): quarantine it.
    Corrupt(String),
    /// The generation file could not be read (missing, permissions,
    /// injected fault).
    Io(io::Error),
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::Corrupt(why) => write!(f, "corrupt entry: {why}"),
            EntryError::Io(e) => write!(f, "entry unreadable: {e}"),
        }
    }
}

impl std::error::Error for EntryError {}

/// A state directory's atomic commit protocol, anchored at a base path
/// (e.g. the configured state path `proj/.sfcc-state`). The manifest lives
/// at `<base>.manifest`; generation files live beside it.
#[derive(Debug, Clone)]
pub struct CommitDir {
    base: PathBuf,
}

impl CommitDir {
    /// Creates a commit view anchored at `base`.
    pub fn new(base: &Path) -> Self {
        CommitDir {
            base: base.to_path_buf(),
        }
    }

    /// The base path this commit view is anchored at.
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// The manifest's path: `<base>.manifest`.
    pub fn manifest_path(&self) -> PathBuf {
        let name = self.base_name();
        self.base.with_file_name(format!("{name}.manifest"))
    }

    fn base_name(&self) -> String {
        self.base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "state".to_string())
    }

    fn dir(&self) -> PathBuf {
        self.base
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    /// The absolute path of an entry's generation file.
    pub fn entry_path(&self, entry: &ManifestEntry) -> PathBuf {
        self.base.with_file_name(&entry.file)
    }

    /// Reads the current manifest. `Ok(None)` means no manifest exists (a
    /// fresh or legacy directory).
    ///
    /// # Errors
    ///
    /// [`ManifestError::Corrupt`] when the file exists but does not decode;
    /// [`ManifestError::Io`] when it cannot be read at all.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, ManifestError> {
        let path = self.manifest_path();
        let bytes = match inject::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ManifestError::Io(e)),
        };
        Manifest::from_bytes(&bytes)
            .map(Some)
            .map_err(ManifestError::Corrupt)
    }

    /// Loads and verifies one committed entry's bytes against the
    /// manifest's recorded length and checksum.
    ///
    /// # Errors
    ///
    /// [`EntryError::Corrupt`] on length/checksum mismatch,
    /// [`EntryError::Io`] when the file cannot be read.
    pub fn load_entry(&self, entry: &ManifestEntry) -> Result<Vec<u8>, EntryError> {
        let path = self.entry_path(entry);
        let bytes = inject::read(&path).map_err(EntryError::Io)?;
        if bytes.len() as u64 != entry.len {
            return Err(EntryError::Corrupt(format!(
                "length {} != recorded {}",
                bytes.len(),
                entry.len
            )));
        }
        let sum = fnv64(&bytes);
        if sum != entry.checksum {
            return Err(EntryError::Corrupt("checksum mismatch".to_string()));
        }
        Ok(bytes)
    }

    /// Atomically commits a new generation: writes each logical file as an
    /// immutable generation file, carries forward committed entries for
    /// logicals not in `files`, publishes the new manifest with a single
    /// rename, then garbage-collects only the generation files this commit
    /// replaced.
    ///
    /// A crash at any operation leaves the directory logically all-old
    /// (manifest not yet renamed) or all-new (renamed; GC is non-semantic).
    ///
    /// # Errors
    ///
    /// Any I/O failure before the manifest rename aborts the commit with
    /// the old generation intact.
    pub fn commit(&self, files: &[(&str, &[u8])], durability: Durability) -> io::Result<Manifest> {
        self.commit_inner(files, durability, true)
    }

    /// Like [`CommitDir::commit`], but never deletes the generation files
    /// this commit replaced. In a directory shared by concurrent *processes*
    /// the replaced-file GC is unsound: a racing committer may have read the
    /// old manifest and carried its entries forward, so its (later, winning)
    /// manifest would reference files this commit just deleted. Shared
    /// directories leave replaced generations as debris for fsck's orphan
    /// sweep instead.
    ///
    /// # Errors
    ///
    /// Any I/O failure before the manifest rename aborts the commit with
    /// the old generation intact.
    pub fn commit_shared(
        &self,
        files: &[(&str, &[u8])],
        durability: Durability,
    ) -> io::Result<Manifest> {
        self.commit_inner(files, durability, false)
    }

    fn commit_inner(
        &self,
        files: &[(&str, &[u8])],
        durability: Durability,
        gc_replaced: bool,
    ) -> io::Result<Manifest> {
        // A corrupt old manifest must not block a new commit: treat it as
        // absent (recovery already quarantined or will quarantine it).
        let old = self.read_manifest().ok().flatten();
        let generation = old.as_ref().map(|m| m.generation + 1).unwrap_or(1);
        let base_name = self.base_name();
        let pid = std::process::id();

        let mut entries: Vec<ManifestEntry> = Vec::new();
        for (logical, bytes) in files {
            // pid + process-global sequence keeps the name unique even when
            // racing builders commit the same generation number, so a
            // published file is never rewritten in place. It stays invisible
            // until the manifest references it.
            let file = format!(
                "{base_name}.{logical}.g{generation}-{pid}-{}",
                inject::unique_seq()
            );
            let path = self.base.with_file_name(&file);
            inject::write(&path, bytes)?;
            if durability == Durability::Durable {
                inject::sync_file(&path)?;
            }
            entries.push(ManifestEntry {
                logical: (*logical).to_string(),
                file,
                len: bytes.len() as u64,
                checksum: fnv64(bytes),
            });
        }
        // Carry forward committed logicals this commit does not rewrite.
        if let Some(old) = &old {
            for e in &old.entries {
                if !files.iter().any(|(l, _)| *l == e.logical) {
                    entries.push(e.clone());
                }
            }
        }
        entries.sort_by(|a, b| a.logical.cmp(&b.logical));

        let manifest = Manifest {
            generation,
            entries,
        };
        inject::atomic_write(&self.manifest_path(), &manifest.to_bytes(), durability)?;

        // GC: delete only the entry files this commit replaced. Foreign or
        // abandoned generations are fsck's job — deleting them here could
        // race a concurrent builder whose manifest still references them.
        // (Skipped entirely for shared directories; see `commit_shared`.)
        if !gc_replaced {
            return Ok(manifest);
        }
        if let Some(old) = &old {
            for e in &old.entries {
                let replaced = manifest
                    .entry(&e.logical)
                    .map(|n| n.file != e.file)
                    .unwrap_or(true);
                if replaced {
                    let _ = inject::remove_file(&self.entry_path(e));
                }
            }
        }
        Ok(manifest)
    }

    /// Publishes a manifest referencing already-written generation files
    /// as-is (no data is rewritten). Used by `fsck` to drop quarantined
    /// entries from a manifest without touching the surviving generations.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from writing the manifest.
    pub fn publish(
        &self,
        generation: u64,
        mut entries: Vec<ManifestEntry>,
        durability: Durability,
    ) -> io::Result<Manifest> {
        entries.sort_by(|a, b| a.logical.cmp(&b.logical));
        let manifest = Manifest {
            generation,
            entries,
        };
        inject::atomic_write(&self.manifest_path(), &manifest.to_bytes(), durability)?;
        Ok(manifest)
    }

    /// Scans the base directory for files that belong to this base's commit
    /// protocol but are referenced by nothing: abandoned temp files and
    /// generation files not named by the current manifest. The manifest
    /// itself, quarantined `*.corrupt`/`*.corrupt.<seq>` files, and foreign
    /// files are never reported.
    pub fn orphans(&self, manifest: Option<&Manifest>) -> io::Result<Vec<PathBuf>> {
        let base_name = self.base_name();
        let manifest_name = format!("{base_name}.manifest");
        let mut out = Vec::new();
        for dirent in std::fs::read_dir(self.dir())? {
            let dirent = dirent?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            if !name.starts_with(&base_name) {
                continue;
            }
            if name == base_name || name == manifest_name || inject::is_quarantine_name(&name) {
                continue;
            }
            let tail = &name[base_name.len()..];
            let is_tmp = tail.contains(".tmp.");
            let is_gen = is_generation_suffix(tail);
            if !is_tmp && !is_gen {
                continue;
            }
            let referenced = manifest
                .map(|m| m.entries.iter().any(|e| e.file == name))
                .unwrap_or(false);
            if !referenced {
                out.push(dirent.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Whether a file-name tail (after the base name) ends in a generation
/// suffix `.<logical>.g<digits>-<digits>-<digits>`.
fn is_generation_suffix(tail: &str) -> bool {
    let Some(idx) = tail.rfind(".g") else {
        return false;
    };
    let nums = &tail[idx + 2..];
    let mut parts = nums.split('-');
    let all_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    matches!(
        (parts.next(), parts.next(), parts.next(), parts.next()),
        (Some(a), Some(b), Some(c), None) if all_digits(a) && all_digits(b) && all_digits(c)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use std::fs;

    fn tmpbase(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfcc-commit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join(".sfcc-state")
    }

    fn cleanup(base: &Path) {
        fs::remove_dir_all(base.parent().unwrap()).unwrap();
    }

    #[test]
    fn commit_and_load_roundtrip() {
        let base = tmpbase("roundtrip");
        let cd = CommitDir::new(&base);
        assert!(cd.read_manifest().unwrap().is_none());
        let m = cd
            .commit(&[("state", b"S1"), ("ircache", b"C1")], Durability::Fast)
            .unwrap();
        assert_eq!(m.generation, 1);
        let read = cd.read_manifest().unwrap().unwrap();
        assert_eq!(read, m);
        assert_eq!(cd.load_entry(read.entry("state").unwrap()).unwrap(), b"S1");
        assert_eq!(
            cd.load_entry(read.entry("ircache").unwrap()).unwrap(),
            b"C1"
        );
        cleanup(&base);
    }

    #[test]
    fn second_commit_replaces_and_gcs() {
        let base = tmpbase("gc");
        let cd = CommitDir::new(&base);
        let m1 = cd.commit(&[("state", b"S1")], Durability::Fast).unwrap();
        let old_path = cd.entry_path(m1.entry("state").unwrap());
        let m2 = cd.commit(&[("state", b"S2")], Durability::Fast).unwrap();
        assert_eq!(m2.generation, 2);
        assert!(!old_path.exists(), "replaced generation must be GC'd");
        assert_eq!(cd.load_entry(m2.entry("state").unwrap()).unwrap(), b"S2");
        cleanup(&base);
    }

    #[test]
    fn unwritten_logical_is_carried_forward() {
        let base = tmpbase("carry");
        let cd = CommitDir::new(&base);
        cd.commit(&[("state", b"S1"), ("ircache", b"C1")], Durability::Fast)
            .unwrap();
        let m2 = cd.commit(&[("state", b"S2")], Durability::Fast).unwrap();
        assert_eq!(cd.load_entry(m2.entry("ircache").unwrap()).unwrap(), b"C1");
        assert_eq!(cd.load_entry(m2.entry("state").unwrap()).unwrap(), b"S2");
        cleanup(&base);
    }

    #[test]
    fn crash_before_manifest_rename_keeps_old_generation() {
        let base = tmpbase("crash");
        let cd = CommitDir::new(&base);
        cd.commit(&[("state", b"S1")], Durability::Fast).unwrap();
        // Ops in a fast commit: read manifest, write gen, write manifest
        // tmp, rename. Crash at the manifest tmp write (op 3).
        let g = crate::inject::install(FaultPlan::parse("crash-at:3").unwrap());
        assert!(cd.commit(&[("state", b"S2")], Durability::Fast).is_err());
        drop(g);
        let m = cd.read_manifest().unwrap().unwrap();
        assert_eq!(m.generation, 1);
        assert_eq!(cd.load_entry(m.entry("state").unwrap()).unwrap(), b"S1");
        cleanup(&base);
    }

    #[test]
    fn tampered_entry_is_detected() {
        let base = tmpbase("tamper");
        let cd = CommitDir::new(&base);
        let m = cd.commit(&[("state", b"S1")], Durability::Fast).unwrap();
        let e = m.entry("state").unwrap();
        fs::write(cd.entry_path(e), b"S!").unwrap();
        assert!(matches!(cd.load_entry(e), Err(EntryError::Corrupt(_))));
        cleanup(&base);
    }

    #[test]
    fn corrupt_manifest_is_reported_as_corrupt() {
        let base = tmpbase("badmf");
        let cd = CommitDir::new(&base);
        cd.commit(&[("state", b"S1")], Durability::Fast).unwrap();
        let mut bytes = fs::read(cd.manifest_path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(cd.manifest_path(), &bytes).unwrap();
        assert!(matches!(cd.read_manifest(), Err(ManifestError::Corrupt(_))));
        cleanup(&base);
    }

    #[test]
    fn orphan_scan_finds_abandoned_files() {
        let base = tmpbase("orphans");
        let cd = CommitDir::new(&base);
        let m = cd.commit(&[("state", b"S1")], Durability::Fast).unwrap();
        let dir = base.parent().unwrap();
        let tmp = dir.join(".sfcc-state.manifest.tmp.999.0");
        let stale = dir.join(".sfcc-state.state.g9-999-0");
        let foreign = dir.join("unrelated.txt");
        let corrupt = dir.join(".sfcc-state.corrupt");
        // A quarantined temp (repeat corruption → .corrupt.<seq> suffix)
        // contains ".tmp." but must survive the sweep: it is evidence.
        let quarantined_tmp = dir.join(".sfcc-state.manifest.tmp.999.1.corrupt.7");
        for p in [&tmp, &stale, &foreign, &corrupt, &quarantined_tmp] {
            fs::write(p, b"x").unwrap();
        }
        let orphans = cd.orphans(Some(&m)).unwrap();
        assert!(orphans.contains(&tmp));
        assert!(orphans.contains(&stale));
        assert!(!orphans.contains(&foreign));
        assert!(!orphans.contains(&corrupt));
        assert!(!orphans.contains(&quarantined_tmp));
        let live = cd.entry_path(m.entry("state").unwrap());
        assert!(!orphans.contains(&live));
        cleanup(&base);
    }

    #[test]
    fn manifest_decode_never_panics_on_truncation() {
        let base = tmpbase("trunc");
        let cd = CommitDir::new(&base);
        cd.commit(&[("state", b"S1"), ("ircache", b"C1")], Durability::Fast)
            .unwrap();
        let bytes = fs::read(cd.manifest_path()).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Manifest::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        assert!(Manifest::from_bytes(&bytes).is_ok());
        cleanup(&base);
    }
}
