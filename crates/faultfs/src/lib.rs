//! # sfcc-faultfs
//!
//! The crash-safety substrate of the stateful compiler. Everything the
//! system persists across builds — the dormancy state file, the function-IR
//! cache, program images — must obey one invariant: **a torn, truncated, or
//! corrupt file may cost a cold start, never a wrong build**. This crate
//! provides the two pieces that make the invariant testable and true:
//!
//! * a **fault-injectable I/O layer** ([`read`], [`write`], [`rename`],
//!   [`atomic_write`], …): every durable operation is counted, optionally
//!   recorded ([`record`]), and can be made to fail deterministically by an
//!   installed [`FaultPlan`] (crash after the K-th op, torn write, bit-flip
//!   on read-back, one-shot ENOSPC, rename failure). Fault state is
//!   **thread-local**: a plan installed by a test faults only that test's
//!   thread, so the crash-point harness can enumerate injection points while
//!   other tests run undisturbed.
//! * a **multi-file atomic commit protocol** ([`CommitDir`]): logical files
//!   ("state", "ircache") are written as immutable generation files and
//!   published by atomically renaming a checksummed manifest. A crash at
//!   *any* I/O operation leaves the directory logically either fully-old or
//!   fully-new — there is exactly one commit point — which is what lets the
//!   crash-consistency matrix assert byte-identical recovery.
//!
//! A third piece supports the dependency-soundness checker: **task
//! attribution** ([`task_scope`], [`current_task`], [`note_access`],
//! [`record_accesses`]). Recorded operations and noted logical-resource
//! accesses are tagged with the query task active on the calling thread, so
//! `minicc depcheck` can diff a build's actual accesses against the query
//! engine's declared dependencies with task-level provenance.
//!
//! Temp and generation file names embed the pid and a process-global
//! counter, so concurrent builders sharing a state directory can never
//! interleave torn writes on one temp file.
//!
//! # Example
//!
//! ```
//! use sfcc_faultfs::{self as ffs, Durability, FaultPlan};
//!
//! let dir = std::env::temp_dir().join(format!("ffs-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("data.bin");
//!
//! // A clean atomic write succeeds and is readable.
//! ffs::atomic_write(&path, b"payload", Durability::Fast).unwrap();
//! assert_eq!(ffs::read(&path).unwrap(), b"payload");
//!
//! // Under a crash plan the write fails — and the old contents survive.
//! let guard = ffs::install(FaultPlan::parse("crash-at:1").unwrap());
//! assert!(ffs::atomic_write(&path, b"new", Durability::Fast).is_err());
//! drop(guard);
//! assert_eq!(ffs::read(&path).unwrap(), b"payload");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod attribute;
pub mod commit;
pub mod inject;
pub mod plan;

pub use attribute::{
    active_task, current_task, note_access, record_accesses, task_scope, AccessLogGuard,
    AccessRecord, TaskCtx, TaskCtxGuard, TaskGuard,
};
pub use commit::{CommitDir, EntryError, Manifest, ManifestEntry, ManifestError};
pub use inject::{
    atomic_write, install, is_injected, is_quarantine_name, op_counts, quarantine, read, record,
    remove_file, rename, sync_dir, sync_file, unique_seq, write, FaultGuard, OpCounts, OpKind,
    OpRecord, RecordGuard,
};
pub use plan::{Fault, FaultPlan, PlanError};

/// How hard an atomic write tries to be durable against power loss.
///
/// Both modes are *crash-consistent* (the destination is replaced by a
/// single rename of a fully written temp file); `Durable` additionally
/// `fsync`s the data before the rename and the parent directory after it,
/// so the committed bytes survive an OS-level crash, not just a process
/// kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Durability {
    /// Write + rename, no sync points. Crash-consistent against process
    /// death; the page cache is trusted to reach disk eventually.
    #[default]
    Fast,
    /// Sync the temp file before the rename and the parent directory after
    /// it.
    Durable,
}

impl Durability {
    /// A short label for reports and CLI parsing.
    pub fn label(self) -> &'static str {
        match self {
            Durability::Fast => "fast",
            Durability::Durable => "durable",
        }
    }
}
