//! Pass robustness: every pass, alone and in adversarial combinations, over
//! a corpus of lowered real-world-shaped functions — each result must
//! verify, and behaviour (via the pipeline tests elsewhere) must hold.
//!
//! This is the guard against the classic pass-manager failure mode: a pass
//! that is correct after its usual predecessors but breaks on IR shapes it
//! never sees in the default pipeline order.

use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv, ModuleInterface};
use sfcc_ir::{verify_module, Module};
use sfcc_passes::{
    constfold::ConstFold, copyprop::CopyProp, cse::Cse, dce::Adce, dce::Dce, dse::Dse, gvn::Gvn,
    inline::Inline, instcombine::InstCombine, licm::Licm, loop_delete::LoopDelete,
    loop_unroll::LoopUnroll, mem2reg::Mem2Reg, memfwd::MemFwd, peephole::Peephole,
    reassociate::Reassociate, sccp::Sccp, simplify_cfg::SimplifyCfg, Pass,
};
use sfcc_workload::{generate_model, GeneratorConfig};

fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(Mem2Reg),
        Box::new(SimplifyCfg),
        Box::new(InstCombine),
        Box::new(ConstFold),
        Box::new(Dce),
        Box::new(Adce),
        Box::new(Inline),
        Box::new(Sccp),
        Box::new(Reassociate),
        Box::new(Gvn),
        Box::new(Cse),
        Box::new(MemFwd),
        Box::new(Dse),
        Box::new(CopyProp),
        Box::new(Licm),
        Box::new(LoopUnroll),
        Box::new(LoopDelete),
        Box::new(Peephole),
    ]
}

/// Lowers every module of a few generated projects into raw (unoptimized) IR.
fn corpus() -> Vec<Module> {
    let mut modules = Vec::new();
    for seed in [1u64, 2, 3] {
        let model = generate_model(&GeneratorConfig::small(seed));
        let mut env = ModuleEnv::new();
        for module in &model.modules {
            let src = model.render_module(module);
            let mut diags = Diagnostics::new();
            let checked = parse_and_check(&module.name, &src, &env, &mut diags)
                .expect("generated modules are valid");
            env.insert(module.name.clone(), ModuleInterface::of(&checked.ast));
            modules.push(sfcc_ir::lower_module(&checked, &env));
        }
    }
    modules
}

fn apply(pass: &dyn Pass, module: &mut Module) {
    let snapshot = sfcc_ir::ModuleSnapshot::of(module);
    for func in &mut module.functions {
        pass.run(func, &snapshot);
    }
    verify_module(module)
        .unwrap_or_else(|e| panic!("pass '{}' broke the IR: {e}\n{module}", pass.name()));
}

/// Every pass must keep raw pre-mem2reg IR verifiable, even though it
/// normally runs after SSA construction.
#[test]
fn every_pass_is_safe_on_raw_ir() {
    let corpus = corpus();
    for pass in all_passes() {
        for module in &corpus {
            let mut m = module.clone();
            apply(pass.as_ref(), &mut m);
        }
    }
}

/// Every ordered pair of passes must compose on SSA-form IR.
#[test]
fn every_pass_pair_composes_on_ssa() {
    // Pre-promote the corpus once (mem2reg + cleanup) so pairs run on SSA.
    let mut ssa_corpus = corpus();
    for module in &mut ssa_corpus {
        apply(&Mem2Reg, module);
        apply(&SimplifyCfg, module);
    }
    let passes = all_passes();
    for (i, first) in passes.iter().enumerate() {
        for (j, second) in passes.iter().enumerate() {
            if i == j {
                continue;
            }
            // One representative module keeps the quadratic sweep fast.
            let mut m = ssa_corpus[(i * passes.len() + j) % ssa_corpus.len()].clone();
            apply(first.as_ref(), &mut m);
            apply(second.as_ref(), &mut m);
        }
    }
}

/// Running any single pass twice: the second run of an idempotent-by-design
/// pass must not crash, and the IR must still verify (we don't require
/// dormancy — some passes legitimately iterate).
#[test]
fn double_application_is_safe() {
    let corpus = corpus();
    for pass in all_passes() {
        let mut m = corpus[0].clone();
        apply(pass.as_ref(), &mut m);
        apply(pass.as_ref(), &mut m);
    }
}

/// The inliner against snapshots at different optimization stages: the
/// snapshot may be more or less optimized than the function being compiled.
#[test]
fn inline_handles_stale_and_fresh_snapshots() {
    let mut modules = corpus();
    let module = &mut modules[0];
    let raw_snapshot = sfcc_ir::ModuleSnapshot::of(module);
    // Optimize the module heavily, then inline against the *raw* snapshot.
    for pass in all_passes() {
        let snap = sfcc_ir::ModuleSnapshot::of(module);
        for func in &mut module.functions {
            pass.run(func, &snap);
        }
    }
    for func in &mut module.functions {
        Inline.run(func, &raw_snapshot);
    }
    verify_module(module).unwrap_or_else(|e| panic!("{e}\n{module}"));
}

/// simplify-cfg must tolerate hand-made degenerate CFGs.
#[test]
fn simplify_cfg_handles_degenerate_shapes() {
    for text in [
        // Self-loop with a constant exit.
        "fn @f() -> i64 {\nbb0:\n  br bb1\nbb1:\n  condbr true, bb1, bb2\nbb2:\n  ret 1\n}",
        // Chain of empty forwarders.
        "fn @f() -> i64 {\nbb0:\n  br bb1\nbb1:\n  br bb2\nbb2:\n  br bb3\nbb3:\n  ret 4\n}",
        // Condbr where both arms are the same empty forwarder.
        "fn @f(i1) -> i64 {\nbb0:\n  condbr p0, bb1, bb1\nbb1:\n  br bb2\nbb2:\n  ret 9\n}",
        // Unreachable cycle hanging off the function.
        "fn @f() -> i64 {\nbb0:\n  ret 0\nbb1:\n  br bb2\nbb2:\n  br bb1\n}",
    ] {
        let f = sfcc_ir::parse_function(text).unwrap();
        let mut m = Module::new("t");
        m.add_function(f);
        apply(&SimplifyCfg, &mut m);
        // Fixpoint: a second run must be dormant.
        let snapshot = sfcc_ir::ModuleSnapshot::of(&m);
        let changed = SimplifyCfg.run(&mut m.functions[0], &snapshot);
        assert!(!changed, "simplify-cfg not at fixpoint for {text}\n{m}");
    }
}

/// loop passes must tolerate loops whose preheader is missing (multiple
/// outside predecessors into the header).
#[test]
fn loop_passes_tolerate_missing_preheader() {
    let text = r"
fn @f(i1, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: 0], [bb2: 5], [bb4: v1]
  v2 = icmp slt v0, p1
  condbr v2, bb4, bb5
bb4:
  v1 = add i64 v0, 1
  br bb3
bb5:
  ret v0
}";
    let f = sfcc_ir::parse_function(text).unwrap();
    let mut m = Module::new("t");
    m.add_function(f);
    for pass in [&Licm as &dyn Pass, &LoopUnroll, &LoopDelete] {
        let mut copy = m.clone();
        let snapshot = sfcc_ir::ModuleSnapshot::of(&copy);
        let changed = pass.run(&mut copy.functions[0], &snapshot);
        assert!(!changed, "{} should bail without a preheader", pass.name());
        verify_module(&copy).unwrap();
    }
}
