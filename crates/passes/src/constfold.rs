//! Constant folding of pure instructions with all-constant operands.

use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{Function, ModuleSnapshot, Op, Ty, ValueRef};
use std::collections::HashMap;

/// The `const-fold` pass: folds `bin`/`icmp`/`select` over constants.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        // Fold repeatedly: folding one instruction can make users foldable.
        loop {
            let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
            let mut dead = Vec::new();
            for (_, iid) in func.iter_insts() {
                let inst = func.inst(iid);
                let folded = match &inst.op {
                    Op::Bin(kind) => match (inst.args[0].as_const(), inst.args[1].as_const()) {
                        (Some((ty, a)), Some((_, b))) => kind
                            .eval(a, b)
                            .map(|v| ValueRef::Const(ty, if ty == Ty::I1 { v & 1 } else { v })),
                        _ => None,
                    },
                    Op::Icmp(pred) => match (inst.args[0].as_const(), inst.args[1].as_const()) {
                        (Some((_, a)), Some((_, b))) => Some(ValueRef::bool(pred.eval(a, b))),
                        _ => None,
                    },
                    Op::Select => inst.args[0].as_const().map(|(_, c)| {
                        if c != 0 {
                            inst.args[1]
                        } else {
                            inst.args[2]
                        }
                    }),
                    _ => None,
                };
                if let Some(v) = folded {
                    map.insert(ValueRef::Inst(iid), v);
                    dead.push(iid);
                }
            }
            if map.is_empty() {
                break;
            }
            func.replace_uses(&map);
            detach_all(func, &dead);
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = ConstFold.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn folds_arith_chain() {
        let (changed, text) =
            run("fn @f() -> i64 {\nbb0:\n  v0 = add i64 2, 3\n  v1 = mul i64 v0, 4\n  ret v1\n}");
        assert!(changed);
        assert!(text.contains("ret 20"), "{text}");
        assert!(!text.contains("add"), "{text}");
    }

    #[test]
    fn folds_icmp_and_select() {
        let (changed, text) = run(
            "fn @f() -> i64 {\nbb0:\n  v0 = icmp slt 1, 2\n  v1 = select i64 v0, 10, 20\n  ret v1\n}",
        );
        assert!(changed);
        assert!(text.contains("ret 10"), "{text}");
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (changed, text) = run("fn @f() -> i64 {\nbb0:\n  v0 = sdiv i64 1, 0\n  ret v0\n}");
        assert!(!changed);
        assert!(text.contains("sdiv"), "{text}");
    }

    #[test]
    fn i64_min_div_minus_one_not_folded() {
        let (changed, _) = run(&format!(
            "fn @f() -> i64 {{\nbb0:\n  v0 = sdiv i64 {}, -1\n  ret v0\n}}",
            i64::MIN
        ));
        assert!(!changed);
    }

    #[test]
    fn dormant_without_constants() {
        let (changed, _) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  ret v0\n}");
        assert!(!changed);
    }

    #[test]
    fn i1_xor_folds_in_range() {
        let (changed, text) = run("fn @f() -> i1 {\nbb0:\n  v0 = xor i1 true, true\n  ret v0\n}");
        assert!(changed);
        assert!(text.contains("ret false"), "{text}");
    }

    #[test]
    fn wrapping_add_folds() {
        let (changed, text) = run(&format!(
            "fn @f() -> i64 {{\nbb0:\n  v0 = add i64 {}, 1\n  ret v0\n}}",
            i64::MAX
        ));
        assert!(changed);
        assert!(text.contains(&i64::MIN.to_string()), "{text}");
    }
}
