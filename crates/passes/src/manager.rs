//! The instrumented pass manager.
//!
//! This is where the paper's mechanism plugs into the compiler: every pass
//! execution is recorded as **active** (it changed the IR) or **dormant** (it
//! ran and changed nothing), and before each execution a [`SkipOracle`] —
//! implemented by the `sfcc-state` crate from previous builds' dormancy
//! records — may decide to *skip* the pass entirely.

use crate::Pass;
use sfcc_ir::{fingerprint, verify_function, Fingerprint, Function, Module, ModuleSnapshot};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// What happened to one pass slot on one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassOutcome {
    /// The pass ran and modified the IR.
    Active,
    /// The pass ran and left the IR untouched.
    Dormant,
    /// The pass was skipped on the oracle's advice.
    Skipped,
}

impl fmt::Display for PassOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PassOutcome::Active => "active",
            PassOutcome::Dormant => "dormant",
            PassOutcome::Skipped => "skipped",
        })
    }
}

/// The record of one pass slot's execution on one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRecord {
    /// Pass name (not unique: a pipeline may repeat a pass).
    pub pass: String,
    /// Position in the flattened pipeline — the stable per-build identity of
    /// this pass execution, used as the dormancy-state key.
    pub slot: usize,
    /// What happened.
    pub outcome: PassOutcome,
    /// Wall-clock time spent running the pass (0 when skipped).
    pub nanos: u64,
    /// Deterministic cost proxy: live instructions when the pass started.
    pub cost_units: u64,
}

/// Everything recorded while compiling one function through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionTrace {
    /// Function name (unqualified).
    pub function: String,
    /// Structural fingerprint when entering the pipeline (pre-optimization).
    pub entry_fingerprint: Fingerprint,
    /// Structural fingerprint after the pipeline.
    pub exit_fingerprint: Fingerprint,
    /// One record per pipeline slot, in execution order.
    pub records: Vec<PassRecord>,
}

impl FunctionTrace {
    /// Number of slots with the given outcome.
    pub fn count(&self, outcome: PassOutcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Total pass-execution wall time in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.records.iter().map(|r| r.nanos).sum()
    }

    /// Total deterministic cost of executed (non-skipped) slots.
    pub fn executed_cost(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.outcome != PassOutcome::Skipped)
            .map(|r| r.cost_units)
            .sum()
    }
}

/// The record of one whole-module pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineTrace {
    /// Module name.
    pub module: String,
    /// One trace per function, in module order.
    pub functions: Vec<FunctionTrace>,
    /// Module snapshots taken during this run (pipeline entry + every
    /// re-snapshot stage). Identical across sequential and parallel runners.
    pub snapshot_clones: u64,
    /// Σ live instruction count over the functions actually deep-cloned
    /// into snapshots — the deterministic cost proxy for snapshot overhead.
    /// Copy-on-write re-snapshots clone only functions a pass changed since
    /// the previous snapshot, so this is far below `functions × snapshots`
    /// on converged code.
    pub snapshot_cost_units: u64,
    /// Functions whose previous snapshot `Arc` was reused at a re-snapshot
    /// instead of deep-cloned — the copy-on-write savings. Deterministic
    /// and identical across runners and `--jobs` values.
    pub snapshot_reused: u64,
    /// Cost-balanced batches planned across all stages (the parallel
    /// runner's fan-out unit; the sequential runner computes the identical
    /// plan so the counter is `--jobs`-invariant).
    pub batch_count: u64,
    /// Largest single-batch total cost (live instructions) planned by any
    /// stage of this run.
    pub batch_max_cost: u64,
}

impl PipelineTrace {
    /// Looks up one function's trace.
    pub fn function(&self, name: &str) -> Option<&FunctionTrace> {
        self.functions.iter().find(|f| f.function == name)
    }

    /// Total deterministic cost of executed (non-skipped) slots across all
    /// functions — the module's cost-unit contribution to a build trace.
    pub fn executed_cost(&self) -> u64 {
        self.functions.iter().map(|f| f.executed_cost()).sum()
    }

    /// Total pass-execution wall time across all functions.
    pub fn total_nanos(&self) -> u64 {
        self.functions.iter().map(|f| f.total_nanos()).sum()
    }

    /// Aggregate outcome counts `(active, dormant, skipped)`.
    pub fn outcome_totals(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for f in &self.functions {
            t.0 += f.count(PassOutcome::Active);
            t.1 += f.count(PassOutcome::Dormant);
            t.2 += f.count(PassOutcome::Skipped);
        }
        t
    }
}

/// Context handed to the oracle for one potential pass execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassQuery<'a> {
    /// Module being compiled.
    pub module: &'a str,
    /// Function about to be transformed (unqualified name).
    pub function: &'a str,
    /// The function's structural fingerprint at pipeline entry.
    pub entry_fingerprint: Fingerprint,
    /// Name of the pass.
    pub pass: &'a str,
    /// Flattened pipeline slot of the pass.
    pub slot: usize,
}

/// Decides whether a pass execution may be skipped.
///
/// The stateless compiler uses [`NeverSkip`]; the stateful compiler supplies
/// an oracle backed by the dormancy database of previous builds.
pub trait SkipOracle {
    /// Returns `true` to skip the pass described by `query`.
    fn should_skip(&self, query: &PassQuery<'_>) -> bool;
}

/// The stateless baseline: every pass always runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverSkip;

impl SkipOracle for NeverSkip {
    fn should_skip(&self, _query: &PassQuery<'_>) -> bool {
        false
    }
}

/// One stage of a pipeline: a pass sequence, optionally preceded by a fresh
/// module snapshot (for passes like inlining that read other functions).
pub struct Stage {
    /// Passes run on every function, in order.
    pub passes: Vec<Box<dyn Pass>>,
    /// Take a fresh snapshot of the whole module before this stage, so its
    /// passes observe the results of earlier stages in *other* functions.
    pub resnapshot: bool,
}

/// An ordered sequence of stages with stable flattened slot numbering.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("slots", &self.slot_names())
            .finish()
    }
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage.
    pub fn stage(mut self, resnapshot: bool, passes: Vec<Box<dyn Pass>>) -> Self {
        self.stages.push(Stage { passes, resnapshot });
        self
    }

    /// The flattened pass names, indexed by slot.
    pub fn slot_names(&self) -> Vec<&'static str> {
        self.stages
            .iter()
            .flat_map(|s| s.passes.iter().map(|p| p.name()))
            .collect()
    }

    /// Number of flattened pass slots.
    pub fn slot_count(&self) -> usize {
        self.stages.iter().map(|s| s.passes.len()).sum()
    }

    /// The pipeline's stages, in execution order.
    pub(crate) fn stages(&self) -> &[Stage] {
        &self.stages
    }
}

/// Pass-manager execution options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Verify every function after every pass that reported a change.
    /// Defaults to `true` in debug builds.
    pub verify_each: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            verify_each: cfg!(debug_assertions),
        }
    }
}

/// Runs `pipeline` over every function of `module`, consulting `oracle`
/// before each pass execution, and returns the full instrumentation trace.
///
/// # Panics
///
/// Panics if [`RunOptions::verify_each`] is set and a pass produces invalid
/// IR — that is a compiler bug, not an input error.
pub fn run_pipeline(
    module: &mut Module,
    pipeline: &Pipeline,
    oracle: &dyn SkipOracle,
    options: RunOptions,
) -> PipelineTrace {
    let mut trace = PipelineTrace {
        module: module.name.clone(),
        functions: Vec::new(),
        snapshot_clones: 0,
        snapshot_cost_units: 0,
        snapshot_reused: 0,
        batch_count: 0,
        batch_max_cost: 0,
    };
    for (idx, f) in module.functions.iter().enumerate() {
        let _ = idx;
        trace.functions.push(FunctionTrace {
            function: f.name.clone(),
            entry_fingerprint: fingerprint(f),
            exit_fingerprint: Fingerprint::default(),
            records: Vec::new(),
        });
    }

    // Copy-on-write dirty bits: set when any pass changes a function, so a
    // re-snapshot deep-clones only what actually moved since the last one.
    let mut dirty = vec![false; module.functions.len()];
    let mut snapshot = {
        let funcs: Vec<&Function> = module.functions.iter().collect();
        let (snapshot, cost, reused) = cow_snapshot(&module.name, &funcs, &dirty, None);
        trace.snapshot_clones += 1;
        trace.snapshot_cost_units += cost;
        trace.snapshot_reused += reused;
        snapshot
    };
    let mut slot_base = 0usize;
    for stage in &pipeline.stages {
        if stage.resnapshot {
            let funcs: Vec<&Function> = module.functions.iter().collect();
            let (snap, cost, reused) = cow_snapshot(&module.name, &funcs, &dirty, Some(&snapshot));
            snapshot = snap;
            trace.snapshot_clones += 1;
            trace.snapshot_cost_units += cost;
            trace.snapshot_reused += reused;
            dirty.fill(false);
        }
        // Plan (but do not use) the stage's cost-balanced batches: the
        // parallel runner fans out by this plan, and computing the identical
        // plan here keeps the batch counters — and every trace derived from
        // them — byte-identical between runners and across `--jobs`.
        let costs: Vec<u64> = module
            .functions
            .iter()
            .map(|f| f.live_inst_count() as u64)
            .collect();
        let plan = crate::batch::plan_batches(&costs);
        trace.batch_count += plan.batches.len() as u64;
        trace.batch_max_cost = trace.batch_max_cost.max(plan.max_cost);
        for (func_idx, dirty_bit) in dirty.iter_mut().enumerate() {
            for (pass_idx, pass) in stage.passes.iter().enumerate() {
                let slot = slot_base + pass_idx;
                let func = &mut module.functions[func_idx];
                let ftrace = &mut trace.functions[func_idx];
                let query = PassQuery {
                    module: &snapshot.name,
                    function: &ftrace.function,
                    entry_fingerprint: ftrace.entry_fingerprint,
                    pass: pass.name(),
                    slot,
                };
                if oracle.should_skip(&query) {
                    ftrace.records.push(PassRecord {
                        pass: pass.name().to_string(),
                        slot,
                        outcome: PassOutcome::Skipped,
                        nanos: 0,
                        cost_units: func.live_inst_count() as u64,
                    });
                    continue;
                }
                let cost_units = func.live_inst_count() as u64;
                let start = Instant::now();
                let changed = pass.run(func, &snapshot);
                let nanos = start.elapsed().as_nanos() as u64;
                if changed {
                    *dirty_bit = true;
                }
                if options.verify_each && changed {
                    verify_function(func).unwrap_or_else(|e| {
                        panic!("pass '{}' broke the IR: {e}\n{func}", pass.name())
                    });
                }
                ftrace.records.push(PassRecord {
                    pass: pass.name().to_string(),
                    slot,
                    outcome: if changed {
                        PassOutcome::Active
                    } else {
                        PassOutcome::Dormant
                    },
                    nanos,
                    cost_units,
                });
            }
        }
        slot_base += stage.passes.len();
    }

    for (f, ftrace) in module.functions.iter().zip(&mut trace.functions) {
        ftrace.exit_fingerprint = fingerprint(f);
    }
    trace
}

/// Builds the next copy-on-write snapshot from the current function bodies:
/// functions flagged `dirty` (changed by some pass since `prev` was taken)
/// are deep-cloned into fresh `Arc`s, clean ones reuse `prev`'s `Arc`s at
/// zero copy cost. `prev: None` is the pipeline-entry snapshot, which
/// clones everything. Records the event in the process-global
/// [`crate::snapstats`] counters and returns
/// `(snapshot, cloned_cost_units, reused_functions)`.
///
/// `funcs` must be the same functions, in the same order, as `prev`'s —
/// pipeline stages transform bodies but never add, remove, or reorder
/// functions, so positions align across snapshots.
pub(crate) fn cow_snapshot(
    name: &str,
    funcs: &[&Function],
    dirty: &[bool],
    prev: Option<&ModuleSnapshot>,
) -> (ModuleSnapshot, u64, u64) {
    debug_assert_eq!(funcs.len(), dirty.len());
    let start = Instant::now();
    let mut cost = 0u64;
    let mut reused = 0u64;
    let mut arcs = Vec::with_capacity(funcs.len());
    for (i, func) in funcs.iter().enumerate() {
        match prev {
            Some(prev) if !dirty[i] => {
                debug_assert_eq!(prev.arcs()[i].name, func.name);
                arcs.push(Arc::clone(&prev.arcs()[i]));
                reused += 1;
            }
            _ => {
                cost += func.live_inst_count() as u64;
                arcs.push(Arc::new((*func).clone()));
            }
        }
    }
    let snapshot = ModuleSnapshot::from_arcs(name, arcs);
    crate::snapstats::record_snapshot(cost, reused, start.elapsed().as_nanos() as u64);
    (snapshot, cost, reused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::Function;

    /// A test pass that increments a counter and optionally claims a change.
    struct Probe {
        name: &'static str,
        changes: bool,
    }

    impl Pass for Probe {
        fn name(&self) -> &'static str {
            self.name
        }

        fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
            if self.changes {
                // Make a harmless real change so verification passes: append
                // a fresh unreachable block.
                func.add_block();
            }
            self.changes
        }
    }

    fn test_module() -> Module {
        let mut m = Module::new("t");
        let mut f = Function::new("f", vec![], None);
        sfcc_ir::FuncBuilder::at_entry(&mut f).ret(None);
        m.add_function(f);
        m
    }

    struct SkipByName(&'static str);

    impl SkipOracle for SkipByName {
        fn should_skip(&self, q: &PassQuery<'_>) -> bool {
            q.pass == self.0
        }
    }

    #[test]
    fn records_active_and_dormant() {
        let mut m = test_module();
        let pipeline = Pipeline::new().stage(
            false,
            vec![
                Box::new(Probe {
                    name: "a",
                    changes: true,
                }),
                Box::new(Probe {
                    name: "b",
                    changes: false,
                }),
            ],
        );
        let trace = run_pipeline(&mut m, &pipeline, &NeverSkip, RunOptions::default());
        let f = trace.function("f").unwrap();
        assert_eq!(f.records.len(), 2);
        assert_eq!(f.records[0].outcome, PassOutcome::Active);
        assert_eq!(f.records[1].outcome, PassOutcome::Dormant);
        assert_eq!(f.records[0].slot, 0);
        assert_eq!(f.records[1].slot, 1);
    }

    #[test]
    fn oracle_skips_pass() {
        let mut m = test_module();
        let pipeline = Pipeline::new().stage(
            false,
            vec![
                Box::new(Probe {
                    name: "a",
                    changes: true,
                }),
                Box::new(Probe {
                    name: "b",
                    changes: true,
                }),
            ],
        );
        let trace = run_pipeline(&mut m, &pipeline, &SkipByName("b"), RunOptions::default());
        let f = trace.function("f").unwrap();
        assert_eq!(f.records[1].outcome, PassOutcome::Skipped);
        assert_eq!(f.records[1].nanos, 0);
        assert_eq!(trace.outcome_totals(), (1, 0, 1));
    }

    #[test]
    fn slots_are_stable_across_stages() {
        let mut m = test_module();
        let pipeline = Pipeline::new()
            .stage(
                false,
                vec![Box::new(Probe {
                    name: "a",
                    changes: false,
                })],
            )
            .stage(
                true,
                vec![Box::new(Probe {
                    name: "b",
                    changes: false,
                })],
            );
        assert_eq!(pipeline.slot_names(), vec!["a", "b"]);
        assert_eq!(pipeline.slot_count(), 2);
        let trace = run_pipeline(&mut m, &pipeline, &NeverSkip, RunOptions::default());
        let f = trace.function("f").unwrap();
        assert_eq!(f.records[0].slot, 0);
        assert_eq!(f.records[1].slot, 1);
    }

    #[test]
    fn fingerprints_before_and_after() {
        let mut m = test_module();
        let pipeline = Pipeline::new().stage(
            false,
            vec![Box::new(Probe {
                name: "a",
                changes: true,
            })],
        );
        let trace = run_pipeline(&mut m, &pipeline, &NeverSkip, RunOptions::default());
        let f = trace.function("f").unwrap();
        // The probe adds only an unreachable block, which the canonical
        // printer ignores — fingerprints stay equal.
        assert_eq!(f.entry_fingerprint, f.exit_fingerprint);
        assert_ne!(f.entry_fingerprint, Fingerprint::default());
    }

    #[test]
    fn trace_helpers() {
        let rec = |o| PassRecord {
            pass: "p".into(),
            slot: 0,
            outcome: o,
            nanos: 5,
            cost_units: 3,
        };
        let t = FunctionTrace {
            function: "f".into(),
            entry_fingerprint: Fingerprint::default(),
            exit_fingerprint: Fingerprint::default(),
            records: vec![
                rec(PassOutcome::Active),
                rec(PassOutcome::Dormant),
                rec(PassOutcome::Skipped),
            ],
        };
        assert_eq!(t.count(PassOutcome::Active), 1);
        assert_eq!(t.total_nanos(), 15);
        assert_eq!(t.executed_cost(), 6);
    }
}
