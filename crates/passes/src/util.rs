//! Shared helpers for transform passes.

use sfcc_ir::{Function, InstId, Op, Ty, ValueRef};
use std::collections::HashMap;

/// Counts uses of every instruction result across operands, phi inputs, and
/// terminator operands.
pub fn use_counts(func: &Function) -> HashMap<InstId, usize> {
    let mut counts: HashMap<InstId, usize> = HashMap::new();
    for (_, iid) in func.iter_insts() {
        for arg in &func.inst(iid).args {
            if let ValueRef::Inst(d) = arg {
                *counts.entry(*d).or_insert(0) += 1;
            }
        }
    }
    for b in func.block_ids() {
        for v in func.block(b).term.args() {
            if let ValueRef::Inst(d) = v {
                *counts.entry(d).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Whether `inst` may be deleted when its result is unused.
///
/// Side-effecting instructions (stores, calls) are never removable. Trapping
/// but otherwise pure instructions (`sdiv`, out-of-bounds loads) *are*
/// removable: like C/LLVM, MiniC treats the trap conditions as undefined
/// behaviour, so eliminating a dead trapping instruction is allowed.
pub fn is_removable_when_dead(op: &Op) -> bool {
    !op.has_side_effects()
}

/// Extracts the constant payload of a value, if it is a constant.
pub fn const_of(v: ValueRef) -> Option<(Ty, i64)> {
    v.as_const()
}

/// Whether the value is the integer constant `c`.
pub fn is_const(v: ValueRef, c: i64) -> bool {
    matches!(v.as_const(), Some((_, k)) if k == c)
}

/// Returns `Some(log2(c))` when `c` is a power of two greater than 1.
pub fn power_of_two_shift(c: i64) -> Option<i64> {
    if c > 1 && (c & (c - 1)) == 0 {
        Some(c.trailing_zeros() as i64)
    } else {
        None
    }
}

/// Removes, in one sweep, every instruction in `dead` from its block.
/// Returns how many were detached.
pub fn detach_all(func: &mut Function, dead: &[InstId]) -> usize {
    if dead.is_empty() {
        return 0;
    }
    let dead_set: std::collections::HashSet<InstId> = dead.iter().copied().collect();
    let mut removed = 0;
    for b in func.block_ids().collect::<Vec<_>>() {
        let block = func.block_mut(b);
        let before = block.insts.len();
        block.insts.retain(|i| !dead_set.contains(i));
        removed += before - block.insts.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{parse_function, BinKind};

    #[test]
    fn use_counts_cover_terminators() {
        let f = parse_function(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  v1 = add i64 v0, v0\n  ret v1\n}",
        )
        .unwrap();
        let counts = use_counts(&f);
        assert_eq!(counts.len(), 2);
        let vals: Vec<usize> = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort();
            v
        };
        assert_eq!(vals, vec![1, 2]); // v1 used once (ret), v0 twice
    }

    #[test]
    fn removability() {
        assert!(is_removable_when_dead(&Op::Bin(BinKind::Sdiv)));
        assert!(is_removable_when_dead(&Op::Load));
        assert!(!is_removable_when_dead(&Op::Store));
        assert!(!is_removable_when_dead(&Op::Call("f".into())));
    }

    #[test]
    fn power_of_two() {
        assert_eq!(power_of_two_shift(8), Some(3));
        assert_eq!(power_of_two_shift(1), None);
        assert_eq!(power_of_two_shift(6), None);
        assert_eq!(power_of_two_shift(-8), None);
        assert_eq!(power_of_two_shift(1 << 40), Some(40));
    }

    #[test]
    fn detach_all_sweeps() {
        let mut f = parse_function(
            "fn @f() -> i64 {\nbb0:\n  v0 = add i64 1, 1\n  v1 = add i64 2, 2\n  ret v1\n}",
        )
        .unwrap();
        let ids: Vec<InstId> = f.iter_insts().map(|(_, i)| i).collect();
        assert_eq!(detach_all(&mut f, &ids[..1]), 1);
        assert_eq!(f.live_inst_count(), 1);
        assert_eq!(detach_all(&mut f, &[]), 0);
    }
}
