//! Dead-store elimination (block-local).
//!
//! A store is dead when the same address is overwritten later in the block
//! with no possible intervening read. Conservative without alias analysis:
//! any load or call between the two stores keeps the first one alive, and
//! addresses must be the *same SSA value* (run after `cse`/`gvn` so equal
//! `gep`s have been unified).

use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{Function, InstId, ModuleSnapshot, Op, ValueRef};
use std::collections::HashMap;

/// The `dse` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dse;

impl Pass for Dse {
    fn name(&self) -> &'static str {
        "dse"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut dead: Vec<InstId> = Vec::new();
        for b in func.block_ids().collect::<Vec<_>>() {
            // Pending stores whose value has not been observable yet:
            // address value → store instruction.
            let mut pending: HashMap<ValueRef, InstId> = HashMap::new();
            for &iid in &func.block(b).insts {
                let inst = func.inst(iid);
                match &inst.op {
                    Op::Store => {
                        let addr = inst.args[0];
                        if let Some(prev) = pending.insert(addr, iid) {
                            dead.push(prev);
                        }
                    }
                    // Any read or escape point makes all pending stores
                    // observable.
                    Op::Load | Op::Call(_) => pending.clear(),
                    _ => {}
                }
            }
            // Stores still pending at block end are observable by
            // successors — keep them.
        }
        detach_all(func, &dead) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Dse.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn removes_overwritten_store() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = alloca 1\n  store v0, 1\n  store v0, p0\n  v1 = load i64 v0\n  ret v1\n}",
        );
        assert!(c);
        assert_eq!(text.matches("store").count(), 1, "{text}");
        assert!(text.contains("store v0, p0"), "{text}");
    }

    #[test]
    fn load_between_keeps_both() {
        let (c, _) = run(
            "fn @f() -> i64 {\nbb0:\n  v0 = alloca 1\n  store v0, 1\n  v1 = load i64 v0\n  store v0, 2\n  v2 = load i64 v0\n  v3 = add i64 v1, v2\n  ret v3\n}",
        );
        assert!(!c);
    }

    #[test]
    fn call_between_keeps_both() {
        let (c, _) = run(
            "fn @f() {\nbb0:\n  v0 = alloca 1\n  store v0, 1\n  call @print(9)\n  store v0, 2\n  v1 = load i64 v0\n  call @print(v1)\n  ret\n}",
        );
        assert!(!c);
    }

    #[test]
    fn different_addresses_not_confused() {
        let (c, _) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = alloca 4\n  v1 = gep v0, 0\n  v2 = gep v0, 1\n  store v1, 1\n  store v2, 2\n  v3 = load i64 v1\n  ret v3\n}",
        );
        assert!(!c);
    }

    #[test]
    fn final_store_survives_block_end() {
        // The successor reads the slot; the store at the end must stay.
        let (c, text) = run(r"
fn @f() -> i64 {
bb0:
  v0 = alloca 1
  store v0, 1
  store v0, 2
  br bb1
bb1:
  v1 = load i64 v0
  ret v1
}");
        assert!(c);
        assert!(text.contains("store v0, 2"), "{text}");
        assert!(!text.contains("store v0, 1"), "{text}");
    }

    #[test]
    fn triple_overwrite_keeps_last_only() {
        let (c, text) = run(
            "fn @f() -> i64 {\nbb0:\n  v0 = alloca 1\n  store v0, 1\n  store v0, 2\n  store v0, 3\n  v1 = load i64 v0\n  ret v1\n}",
        );
        assert!(c);
        assert_eq!(text.matches("store").count(), 1, "{text}");
        assert!(text.contains("store v0, 3"), "{text}");
    }
}
