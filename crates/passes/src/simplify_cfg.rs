//! CFG cleanup: constant branch folding, unreachable-block elimination,
//! single-entry block merging, and empty-block jump threading.

use crate::Pass;
use sfcc_ir::{
    BlockId, Function, ModuleSnapshot, Op, Predecessors, Reachability, Terminator, Ty, ValueRef,
    ENTRY,
};
use std::collections::HashMap;

/// The `simplify-cfg` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplifyCfg;

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        // Iterate to a fixpoint: each sub-transform can expose more work.
        loop {
            let mut round = false;
            round |= fold_constant_branches(func);
            round |= prune_unreachable(func);
            round |= merge_straightline(func);
            round |= thread_empty_blocks(func);
            if !round {
                break;
            }
            changed = true;
        }
        changed
    }
}

/// `condbr true/false` → `br`; `condbr c, X, X` → `br X`.
fn fold_constant_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for b in func.block_ids().collect::<Vec<_>>() {
        let new_term = match func.block(b).term {
            Terminator::CondBr {
                cond: ValueRef::Const(Ty::I1, c),
                then_bb,
                else_bb,
            } => Some(Terminator::Br(if c != 0 { then_bb } else { else_bb })),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } if then_bb == else_bb => Some(Terminator::Br(then_bb)),
            _ => None,
        };
        if let Some(t) = new_term {
            // The removed edge may feed phis in the no-longer-branched-to
            // block; prune_unreachable and phi fixing below handle blocks
            // that become unreachable, but a still-reachable target that
            // lost one of two edges from `b` needs its phi inputs from `b`
            // deduplicated. Since phi verification keys on predecessor sets
            // and `b` remains a predecessor of the surviving target, only
            // the *other* target's phis lose an input.
            let old_succs = func.block(b).term.successors();
            func.block_mut(b).term = t.clone();
            let Terminator::Br(kept) = t else {
                unreachable!()
            };
            for lost in old_succs {
                if lost != kept {
                    remove_phi_incoming(func, lost, b);
                }
            }
            changed = true;
        }
    }
    changed
}

/// Removes `pred`'s incoming entries from every phi in `block`.
fn remove_phi_incoming(func: &mut Function, block: BlockId, pred: BlockId) {
    for iid in func.block(block).insts.clone() {
        let inst = func.inst_mut(iid);
        if let Op::Phi(blocks) = &mut inst.op {
            while let Some(pos) = blocks.iter().position(|&p| p == pred) {
                blocks.remove(pos);
                inst.args.remove(pos);
            }
        }
    }
}

/// Clears unreachable blocks and drops their phi contributions.
fn prune_unreachable(func: &mut Function) -> bool {
    let reach = Reachability::compute(func);
    let mut changed = false;
    let ids: Vec<BlockId> = func.block_ids().collect();
    for b in ids {
        if reach.is_reachable(b) {
            // Drop phi inputs that come from unreachable predecessors.
            for iid in func.block(b).insts.clone() {
                let inst = func.inst_mut(iid);
                if let Op::Phi(blocks) = &mut inst.op {
                    let mut i = 0;
                    while i < blocks.len() {
                        if !reach.is_reachable(blocks[i]) {
                            blocks.remove(i);
                            inst.args.remove(i);
                            changed = true;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        } else {
            let block = func.block_mut(b);
            if !block.insts.is_empty() || block.term != Terminator::Trap {
                block.insts.clear();
                block.term = Terminator::Trap;
                changed = true;
            }
        }
    }
    if changed {
        resolve_trivial_phis(func);
    }
    changed
}

/// Replaces single-input phis with their input (repeatedly).
fn resolve_trivial_phis(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
        let mut dead = Vec::new();
        for (_, iid) in func.iter_insts() {
            let inst = func.inst(iid);
            if let Op::Phi(blocks) = &inst.op {
                if blocks.len() == 1 {
                    map.insert(ValueRef::Inst(iid), inst.args[0]);
                    dead.push(iid);
                }
            }
        }
        if map.is_empty() {
            return changed;
        }
        // A single-input phi may feed itself through a cycle with another;
        // chains are resolved by replace_uses. A self-referential single-input
        // phi (`v = phi [b: v]`) only arises in unreachable code, which was
        // pruned before this call.
        func.replace_uses(&map);
        crate::util::detach_all(func, &dead);
        changed = true;
    }
}

/// Merges `b → s` when `s` is `b`'s unique successor and `b` is `s`'s unique
/// predecessor.
fn merge_straightline(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = Predecessors::compute(func);
        let reach = Reachability::compute(func);
        let mut merged = false;
        for b in func.block_ids().collect::<Vec<_>>() {
            if !reach.is_reachable(b) {
                continue;
            }
            let Terminator::Br(s) = func.block(b).term else {
                continue;
            };
            if s == b || s == ENTRY || preds.of(s) != [b] {
                continue;
            }
            // Phis in `s` have exactly one predecessor; resolve them first.
            for iid in func.block(s).insts.clone() {
                let inst = func.inst_mut(iid);
                if let Op::Phi(blocks) = &mut inst.op {
                    debug_assert_eq!(blocks.len(), 1);
                    let val = inst.args[0];
                    let mut map = HashMap::new();
                    map.insert(ValueRef::Inst(iid), val);
                    func.replace_uses(&map);
                    crate::util::detach_all(func, &[iid]);
                }
            }
            // Move instructions and take over the terminator.
            let moved: Vec<_> = std::mem::take(&mut func.block_mut(s).insts);
            let term = std::mem::replace(&mut func.block_mut(s).term, Terminator::Trap);
            let bb = func.block_mut(b);
            bb.insts.extend(moved);
            bb.term = term;
            // Phis in s's successors referred to s; they now come from b.
            for succ in func.block(b).term.successors() {
                retarget_phi_incoming(func, succ, s, b);
            }
            merged = true;
            changed = true;
            break; // predecessor map is stale; recompute.
        }
        if !merged {
            return changed;
        }
    }
}

/// Rewrites phi incoming blocks `from` → `to` in `block`.
fn retarget_phi_incoming(func: &mut Function, block: BlockId, from: BlockId, to: BlockId) {
    for iid in func.block(block).insts.clone() {
        let inst = func.inst_mut(iid);
        if let Op::Phi(blocks) = &mut inst.op {
            for pb in blocks.iter_mut() {
                if *pb == from {
                    *pb = to;
                }
            }
        }
    }
}

/// Redirects branches through empty forwarding blocks (`bb: br target`),
/// when the target has no phis (phi-bearing targets would need incoming
/// rewrites that can collide with existing edges).
fn thread_empty_blocks(func: &mut Function) -> bool {
    let reach = Reachability::compute(func);
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for b in func.block_ids() {
        if b == ENTRY || !reach.is_reachable(b) {
            continue;
        }
        if !func.block(b).insts.is_empty() {
            continue;
        }
        let Terminator::Br(t) = func.block(b).term else {
            continue;
        };
        if t == b {
            continue;
        }
        let target_has_phis = func
            .block(t)
            .insts
            .iter()
            .any(|&i| matches!(func.inst(i).op, Op::Phi(_)));
        if !target_has_phis {
            forward.insert(b, t);
        }
    }
    if forward.is_empty() {
        return false;
    }
    // Resolve forwarding chains (a → b → c) with cycle protection.
    let resolve = |mut b: BlockId| {
        let mut hops = 0;
        while let Some(&next) = forward.get(&b) {
            b = next;
            hops += 1;
            if hops > forward.len() {
                break;
            }
        }
        b
    };
    let mut changed = false;
    for b in func.block_ids().collect::<Vec<_>>() {
        let mut term = func.block(b).term.clone();
        let mut this_changed = false;
        term.map_successors(|s| {
            let r = resolve(s);
            if r != s {
                this_changed = true;
            }
            r
        });
        if this_changed {
            func.block_mut(b).term = term;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = SimplifyCfg.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn folds_constant_condbr() {
        let (changed, text) = run(r"
fn @f() -> i64 {
bb0:
  condbr true, bb1, bb2
bb1:
  ret 1
bb2:
  ret 2
}");
        assert!(changed);
        assert!(!text.contains("condbr"), "{text}");
        assert!(text.contains("ret 1"), "{text}");
        assert!(!text.contains("ret 2"), "{text}");
    }

    #[test]
    fn removes_unreachable_phi_inputs() {
        let (changed, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  condbr false, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: 1], [bb2: 2]
  ret v0
}");
        assert!(changed);
        // Only the bb2 path survives; the phi resolves to 2.
        assert!(text.contains("ret 2"), "{text}");
        assert!(!text.contains("phi"), "{text}");
    }

    #[test]
    fn merges_straightline_chain() {
        let (changed, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  v0 = add i64 p0, 1
  br bb1
bb1:
  v1 = add i64 v0, 2
  br bb2
bb2:
  ret v1
}");
        assert!(changed);
        // Everything collapses into the entry block.
        assert_eq!(text.matches("bb").count(), 1, "{text}");
    }

    #[test]
    fn threads_empty_blocks() {
        let (changed, text) = run(r"
fn @f(i1) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  ret 7
}");
        assert!(changed);
        assert!(
            text.contains("condbr p0, bb1, bb1") || !text.contains("condbr"),
            "{text}"
        );
    }

    #[test]
    fn dormant_on_clean_cfg() {
        let (changed, _) = run(r"
fn @f(i1) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  v0 = add i64 1, 2
  br bb3
bb2:
  v1 = add i64 3, 4
  br bb3
bb3:
  v2 = phi i64 [bb1: v0], [bb2: v1]
  ret v2
}");
        assert!(!changed);
    }

    #[test]
    fn same_target_condbr_becomes_br() {
        let (changed, text) = run(r"
fn @f(i1) -> i64 {
bb0:
  condbr p0, bb1, bb1
bb1:
  ret 3
}");
        assert!(changed);
        assert!(!text.contains("condbr"), "{text}");
    }

    #[test]
    fn loop_is_preserved() {
        let src = r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret v0
}";
        let (_, text) = run(src);
        assert!(text.contains("phi"), "{text}");
        assert!(text.contains("condbr"), "{text}");
    }

    #[test]
    fn folding_then_merging_cascades() {
        // After folding the constant branch, bb1 has a single pred and merges.
        let (changed, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  v0 = add i64 p0, 1
  condbr true, bb1, bb2
bb1:
  v1 = mul i64 v0, 2
  ret v1
bb2:
  ret 0
}");
        assert!(changed);
        assert_eq!(text.matches("bb").count(), 1, "{text}");
        assert!(text.contains("mul"), "{text}");
    }
}
