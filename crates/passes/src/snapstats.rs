//! Process-global counters for per-stage module-snapshot building.
//!
//! Both pipeline runners snapshot the module being optimized — once at
//! pipeline entry and once more at every re-snapshot stage boundary — so
//! that cross-function passes (the inliner) read callee bodies race-free.
//! Snapshots are copy-on-write ([`sfcc_ir::ModuleSnapshot`]): only
//! functions that changed since the previous snapshot are deep-cloned, the
//! rest reuse the previous snapshot's `Arc`s. These counters make both
//! sides of that trade measurable: what was actually cloned (`clones`,
//! `cost_units`, `wall_ns`) and what the copy-on-write rule saved
//! (`reused`).
//!
//! `clones`, `cost_units`, and `reused` are deterministic and identical
//! across `--jobs` values — the sequential and parallel runners snapshot at
//! exactly the same points with identical dirty sets — so they are safe to
//! surface in byte-stable traces. `wall_ns` is wall-clock and belongs only
//! in the (jobs-variant) metrics registry.
//!
//! The counters are process-global and monotonic: a consumer reporting on
//! *one* build (or one sweep point) must capture [`snapshot_stats`] at the
//! start and report [`SnapshotStats::delta_since`] that capture — reading
//! the absolute totals conflates every build the process has run.

use std::sync::atomic::{AtomicU64, Ordering};

static CLONES: AtomicU64 = AtomicU64::new(0);
static COST_UNITS: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);
static WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Cumulative snapshot counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Number of module snapshots taken.
    pub clones: u64,
    /// Σ live instruction count over every function actually deep-cloned
    /// into a snapshot (deterministic cost proxy, jobs-invariant).
    pub cost_units: u64,
    /// Functions whose previous snapshot `Arc` was reused instead of
    /// cloned — the copy-on-write savings (deterministic, jobs-invariant).
    pub reused: u64,
    /// Wall time spent building snapshots, in nanoseconds (jobs-variant).
    pub wall_ns: u64,
}

impl SnapshotStats {
    /// Counter deltas accumulated since `earlier` was captured. This is the
    /// only sound way to attribute the process-global counters to one build
    /// when several run back to back in one process.
    pub fn delta_since(&self, earlier: &SnapshotStats) -> SnapshotStats {
        SnapshotStats {
            clones: self.clones.wrapping_sub(earlier.clones),
            cost_units: self.cost_units.wrapping_sub(earlier.cost_units),
            reused: self.reused.wrapping_sub(earlier.reused),
            wall_ns: self.wall_ns.wrapping_sub(earlier.wall_ns),
        }
    }
}

/// Reads the process-global snapshot counters.
pub fn snapshot_stats() -> SnapshotStats {
    SnapshotStats {
        clones: CLONES.load(Ordering::Relaxed),
        cost_units: COST_UNITS.load(Ordering::Relaxed),
        reused: REUSED.load(Ordering::Relaxed),
        wall_ns: WALL_NS.load(Ordering::Relaxed),
    }
}

/// Records one module snapshot that deep-cloned `cost_units` total live
/// instructions, reused `reused` unchanged functions, and took `wall_ns` to
/// build. Called by the pipeline runners.
pub(crate) fn record_snapshot(cost_units: u64, reused: u64, wall_ns: u64) {
    CLONES.fetch_add(1, Ordering::Relaxed);
    COST_UNITS.fetch_add(cost_units, Ordering::Relaxed);
    REUSED.fetch_add(reused, Ordering::Relaxed);
    WALL_NS.fetch_add(wall_ns, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_delta_subtracts() {
        let before = snapshot_stats();
        record_snapshot(10, 3, 100);
        record_snapshot(5, 1, 50);
        let delta = snapshot_stats().delta_since(&before);
        // Other tests in the process may also record; lower bounds only.
        assert!(delta.clones >= 2);
        assert!(delta.cost_units >= 15);
        assert!(delta.reused >= 4);
        assert!(delta.wall_ns >= 150);
    }

    #[test]
    fn delta_isolates_back_to_back_consumers() {
        // Two consumers bracketing their own work see only their own
        // recordings, even though the counters are process-global. A
        // sentinel far above any realistic pipeline cost distinguishes
        // "inherited the previous bracket's totals" (the bug this guards
        // against) from concurrent recordings by other tests.
        const SENTINEL: u64 = 1_000_000_007;
        let first_before = snapshot_stats();
        record_snapshot(SENTINEL, 2, 10);
        let first = snapshot_stats().delta_since(&first_before);
        assert!(first.clones >= 1 && first.cost_units >= SENTINEL && first.reused >= 2);

        let second_before = snapshot_stats();
        let second = snapshot_stats().delta_since(&second_before);
        assert!(
            second.cost_units < SENTINEL,
            "a fresh bracket must not inherit earlier recordings: {second:?}"
        );
    }
}
