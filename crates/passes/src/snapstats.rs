//! Process-global counters for per-stage module-snapshot cloning.
//!
//! Both pipeline runners clone the module being optimized — once at pipeline
//! entry and once more at every re-snapshot stage boundary — so that
//! cross-function passes (the inliner) read callee bodies race-free. That
//! cloning is pure overhead that grows with module width and is the leading
//! suspect for the `--jobs ≥ 2` optimize-time inflation visible in
//! BENCH_parallel.json; these counters make it measurable.
//!
//! `clones` and `cost_units` (Σ live instruction count of every function
//! cloned) are deterministic and identical across `--jobs` values — the
//! sequential and parallel runners snapshot at exactly the same points — so
//! they are safe to surface in byte-stable traces. `wall_ns` is wall-clock
//! and belongs only in the (jobs-variant) metrics registry.

use std::sync::atomic::{AtomicU64, Ordering};

static CLONES: AtomicU64 = AtomicU64::new(0);
static COST_UNITS: AtomicU64 = AtomicU64::new(0);
static WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Cumulative snapshot-clone counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Number of module snapshots taken.
    pub clones: u64,
    /// Σ live instruction count over every function cloned (deterministic
    /// cost proxy, jobs-invariant).
    pub cost_units: u64,
    /// Wall time spent cloning, in nanoseconds (jobs-variant).
    pub wall_ns: u64,
}

impl SnapshotStats {
    /// Counter deltas accumulated since `earlier` was captured.
    pub fn delta_since(&self, earlier: &SnapshotStats) -> SnapshotStats {
        SnapshotStats {
            clones: self.clones.wrapping_sub(earlier.clones),
            cost_units: self.cost_units.wrapping_sub(earlier.cost_units),
            wall_ns: self.wall_ns.wrapping_sub(earlier.wall_ns),
        }
    }
}

/// Reads the process-global snapshot-clone counters.
pub fn snapshot_stats() -> SnapshotStats {
    SnapshotStats {
        clones: CLONES.load(Ordering::Relaxed),
        cost_units: COST_UNITS.load(Ordering::Relaxed),
        wall_ns: WALL_NS.load(Ordering::Relaxed),
    }
}

/// Records one module snapshot of `cost_units` total live instructions that
/// took `wall_ns` to clone. Called by the pipeline runners.
pub(crate) fn record_clone(cost_units: u64, wall_ns: u64) {
    CLONES.fetch_add(1, Ordering::Relaxed);
    COST_UNITS.fetch_add(cost_units, Ordering::Relaxed);
    WALL_NS.fetch_add(wall_ns, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_delta_subtracts() {
        let before = snapshot_stats();
        record_clone(10, 100);
        record_clone(5, 50);
        let delta = snapshot_stats().delta_since(&before);
        // Other tests in the process may also record; lower bounds only.
        assert!(delta.clones >= 2);
        assert!(delta.cost_units >= 15);
        assert!(delta.wall_ns >= 150);
    }
}
