//! Local (per-block) common-subexpression elimination over pure operations.

use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{Function, InstId, ModuleSnapshot, Op, ValueRef};
use std::collections::HashMap;

/// The `cse` pass: within each block, replaces a pure instruction whose
/// (opcode, operands) key was already computed with the earlier result.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

/// A hashable expression key; commutative operands are order-normalized.
pub(crate) fn expr_key(op: &Op, args: &[ValueRef]) -> Option<(String, Vec<ValueRef>)> {
    if !op.is_pure() {
        return None;
    }
    let mut args = args.to_vec();
    if let Op::Bin(k) = op {
        if k.is_commutative() {
            args.sort_by_key(|v| format!("{v:?}"));
        }
    }
    let tag = match op {
        Op::Bin(k) => format!("bin:{k}"),
        Op::Icmp(p) => format!("icmp:{p}"),
        Op::Select => "select".to_string(),
        Op::Gep => "gep".to_string(),
        _ => return None,
    };
    Some((tag, args))
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
            let mut dead: Vec<InstId> = Vec::new();
            for b in func.block_ids().collect::<Vec<_>>() {
                let mut seen: HashMap<(String, Vec<ValueRef>), InstId> = HashMap::new();
                for &iid in &func.block(b).insts {
                    let inst = func.inst(iid);
                    let Some(key) = expr_key(&inst.op, &inst.args) else {
                        continue;
                    };
                    match seen.get(&key) {
                        Some(&prev) => {
                            map.insert(ValueRef::Inst(iid), ValueRef::Inst(prev));
                            dead.push(iid);
                        }
                        None => {
                            seen.insert(key, iid);
                        }
                    }
                }
            }
            if map.is_empty() {
                return changed;
            }
            func.replace_uses(&map);
            detach_all(func, &dead);
            changed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Cse.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn dedups_identical_adds() {
        let (c, text) = run(
            "fn @f(i64, i64) -> i64 {\nbb0:\n  v0 = add i64 p0, p1\n  v1 = add i64 p0, p1\n  v2 = add i64 v0, v1\n  ret v2\n}",
        );
        assert!(c);
        assert_eq!(text.matches("add").count(), 2, "{text}");
    }

    #[test]
    fn commutative_operands_normalize() {
        let (c, text) = run(
            "fn @f(i64, i64) -> i64 {\nbb0:\n  v0 = add i64 p0, p1\n  v1 = add i64 p1, p0\n  v2 = add i64 v0, v1\n  ret v2\n}",
        );
        assert!(c);
        assert_eq!(text.matches("add").count(), 2, "{text}");
    }

    #[test]
    fn noncommutative_not_merged() {
        let (c, _) = run(
            "fn @f(i64, i64) -> i64 {\nbb0:\n  v0 = sub i64 p0, p1\n  v1 = sub i64 p1, p0\n  v2 = add i64 v0, v1\n  ret v2\n}",
        );
        assert!(!c);
    }

    #[test]
    fn loads_not_merged() {
        // Loads are not pure (memory may change between them).
        let (c, _) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = alloca 1\n  store v0, p0\n  v1 = load i64 v0\n  store v0, 9\n  v2 = load i64 v0\n  v3 = add i64 v1, v2\n  ret v3\n}",
        );
        assert!(!c);
    }

    #[test]
    fn geps_are_merged() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = alloca 8\n  v1 = gep v0, p0\n  v2 = gep v0, p0\n  store v1, 1\n  v3 = load i64 v2\n  ret v3\n}",
        );
        assert!(c);
        assert_eq!(text.matches("gep").count(), 1, "{text}");
    }

    #[test]
    fn different_blocks_not_merged() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  v0 = add i64 p0, 1
  br bb1
bb1:
  v1 = add i64 p0, 1
  v2 = add i64 v0, v1
  ret v2
}");
        assert!(!c); // local CSE only; gvn handles cross-block
    }

    #[test]
    fn cascading_cse() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  v1 = add i64 p0, 1\n  v2 = mul i64 v0, 2\n  v3 = mul i64 v1, 2\n  v4 = add i64 v2, v3\n  ret v4\n}",
        );
        assert!(c);
        assert_eq!(text.matches("mul").count(), 1, "{text}");
    }
}
