//! Function inlining.
//!
//! Replaces calls to small same-module functions with a clone of the callee
//! body, read from the module *snapshot* taken when the inlining stage
//! started (so all functions observe the same pre-stage world, independent
//! of module iteration order). Cross-module calls and the `print` builtin
//! are never inlined — there is no LTO in this compiler, mirroring the
//! per-TU compilation model of the paper's Clang prototype.

use crate::Pass;
use sfcc_ir::{BlockId, Function, InstData, InstId, ModuleSnapshot, Op, Terminator, Ty, ValueRef};
use std::collections::HashMap;

/// Callee size limit (live instructions) for inlining.
pub const INLINE_THRESHOLD: usize = 25;
/// Maximum number of call sites inlined per function per run.
pub const MAX_INLINED_SITES: usize = 8;

/// The `inline` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inline;

impl Pass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, func: &mut Function, snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        let mut budget = MAX_INLINED_SITES;
        while budget > 0 {
            let Some((block, pos, callee)) = find_site(func, snapshot) else {
                break;
            };
            inline_site(func, block, pos, &callee);
            changed = true;
            budget -= 1;
        }
        changed
    }
}

/// Finds the first inlinable call site: `(block, index, callee clone)`.
fn find_site(func: &Function, snapshot: &ModuleSnapshot) -> Option<(BlockId, usize, Function)> {
    for b in func.block_ids() {
        for (pos, &iid) in func.block(b).insts.iter().enumerate() {
            let inst = func.inst(iid);
            let Op::Call(target) = &inst.op else { continue };
            // Only same-module, qualified `module.function` targets.
            let Some((module_name, fn_name)) = target.split_once('.') else {
                continue;
            };
            if module_name != snapshot.name {
                continue;
            }
            if fn_name == func.name {
                continue; // no self-inlining
            }
            let Some(callee) = snapshot.function(fn_name) else {
                continue;
            };
            if callee.live_inst_count() > INLINE_THRESHOLD {
                continue;
            }
            // Callees that may not return along some path (trap husks are
            // fine) are still inlinable; recursion inside the callee is fine
            // too (the clone keeps calling the original symbol).
            return Some((b, pos, callee.clone()));
        }
    }
    None
}

/// Splices `callee` in place of the call at `func[block].insts[pos]`.
fn inline_site(func: &mut Function, block: BlockId, pos: usize, callee: &Function) {
    let call_id = func.block(block).insts[pos];
    let call_args = func.inst(call_id).args.clone();
    let call_ty = func.inst(call_id).ty;

    // Split the host block: everything after the call moves to `cont`.
    let cont = func.add_block();
    let tail: Vec<InstId> = func.block_mut(block).insts.split_off(pos + 1);
    func.block_mut(block).insts.pop(); // drop the call itself
    let host_term = std::mem::replace(&mut func.block_mut(block).term, Terminator::Trap);
    {
        let cont_data = func.block_mut(cont);
        cont_data.insts = tail;
        cont_data.term = host_term;
    }
    // Phi edges in the host's old successors now come from `cont`.
    for succ in func.block(cont).term.successors() {
        for iid in func.block(succ).insts.clone() {
            let inst = func.inst_mut(iid);
            if let Op::Phi(blocks) = &mut inst.op {
                for pb in blocks.iter_mut() {
                    if *pb == block {
                        *pb = cont;
                    }
                }
            }
        }
    }

    // Clone callee blocks.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for cb in callee.block_ids() {
        block_map.insert(cb, func.add_block());
    }
    let mut inst_map: HashMap<InstId, ValueRef> = HashMap::new();
    // Two passes: allocate clone ids first (so phis can forward-reference),
    // then fill operands.
    for cb in callee.block_ids() {
        for &ci in &callee.block(cb).insts {
            let data = callee.inst(ci);
            let placeholder = InstData::new(data.op.clone(), Vec::new(), data.ty);
            let nid = func.append_inst(block_map[&cb], placeholder);
            inst_map.insert(ci, ValueRef::Inst(nid));
        }
    }
    let map_value = |v: ValueRef, inst_map: &HashMap<InstId, ValueRef>| match v {
        ValueRef::Param(i) => call_args[i as usize],
        ValueRef::Inst(i) => inst_map[&i],
        c => c,
    };
    // Collect return edges: (cloned pred block, returned value).
    let mut returns: Vec<(BlockId, Option<ValueRef>)> = Vec::new();
    for cb in callee.block_ids() {
        let nb = block_map[&cb];
        // Fill instruction operands and phi blocks.
        let src_insts = callee.block(cb).insts.clone();
        for &ci in &src_insts {
            let src = callee.inst(ci);
            let args: Vec<ValueRef> = src.args.iter().map(|&a| map_value(a, &inst_map)).collect();
            let ValueRef::Inst(nid) = inst_map[&ci] else {
                unreachable!()
            };
            let dst = func.inst_mut(nid);
            dst.args = args;
            if let (Op::Phi(dst_blocks), Op::Phi(src_blocks)) = (&mut dst.op, &src.op) {
                *dst_blocks = src_blocks.iter().map(|b| block_map[b]).collect();
            }
        }
        // Terminators.
        let term = match &callee.block(cb).term {
            Terminator::Br(t) => Terminator::Br(block_map[t]),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: map_value(*cond, &inst_map),
                then_bb: block_map[then_bb],
                else_bb: block_map[else_bb],
            },
            Terminator::Ret(v) => {
                returns.push((nb, v.map(|v| map_value(v, &inst_map))));
                Terminator::Br(cont)
            }
            Terminator::Trap => Terminator::Trap,
        };
        func.block_mut(nb).term = term;
    }

    // Route the host block into the callee's entry clone.
    func.block_mut(block).term = Terminator::Br(block_map[&sfcc_ir::ENTRY]);

    // Replace the call's result with the merged return value.
    let mut replacements: HashMap<ValueRef, ValueRef> = HashMap::new();
    if call_ty != Ty::Void {
        let result = match returns.as_slice() {
            [] => ValueRef::Const(call_ty, 0), // callee always traps
            [(_, Some(v))] => *v,
            _ => {
                // Multiple returns: merge with a phi at the continuation.
                let phi = func.alloc_inst(InstData::new(
                    Op::Phi(returns.iter().map(|(b, _)| *b).collect()),
                    returns
                        .iter()
                        .map(|(_, v)| v.expect("non-void callee returns a value"))
                        .collect(),
                    call_ty,
                ));
                func.block_mut(cont).insts.insert(0, phi);
                ValueRef::Inst(phi)
            }
        };
        replacements.insert(ValueRef::Inst(call_id), result);
        func.replace_uses(&replacements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify_cfg::SimplifyCfg;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv};
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    /// Lowers a MiniC module, promotes memory, and returns it.
    fn build_module(src: &str) -> sfcc_ir::Module {
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src, &ModuleEnv::new(), &mut d).expect("valid program");
        let mut module = sfcc_ir::lower_module(&checked, &ModuleEnv::new());
        for f in &mut module.functions {
            crate::mem2reg::Mem2Reg.run(f, &ModuleSnapshot::empty("m"));
            SimplifyCfg.run(f, &ModuleSnapshot::empty("m"));
        }
        module
    }

    fn inline_in(module: &mut sfcc_ir::Module, func_name: &str) -> bool {
        let snapshot = ModuleSnapshot::of(module);
        let f = module.function_mut(func_name).unwrap();
        let changed = Inline.run(f, &snapshot);
        verify_function(f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        changed
    }

    #[test]
    fn inlines_simple_callee() {
        let mut m = build_module(
            "fn double(x: int) -> int { return x * 2; }\nfn f(a: int) -> int { return double(a) + 1; }",
        );
        assert!(inline_in(&mut m, "f"));
        let f = m.function("f").unwrap();
        let text = function_to_string(f);
        assert!(!text.contains("call"), "{text}");
        assert!(text.contains("mul") || text.contains("shl"), "{text}");
    }

    #[test]
    fn inlines_branching_callee_with_phi_merge() {
        let mut m = build_module(
            "fn clamp(x: int) -> int { if (x > 10) { return 10; } return x; }\nfn f(a: int) -> int { return clamp(a); }",
        );
        assert!(inline_in(&mut m, "f"));
        let f = m.function("f").unwrap();
        let text = function_to_string(f);
        assert!(!text.contains("call"), "{text}");
        assert!(text.contains("phi"), "{text}");
    }

    #[test]
    fn does_not_inline_print() {
        let mut m = build_module("fn f(a: int) { print(a); }");
        assert!(!inline_in(&mut m, "f"));
    }

    #[test]
    fn does_not_inline_self_recursion() {
        let mut m =
            build_module("fn f(n: int) -> int { if (n < 1) { return 0; } return f(n - 1); }");
        assert!(!inline_in(&mut m, "f"));
    }

    #[test]
    fn does_not_inline_large_callee() {
        // A callee with a long chain of adds exceeding the threshold.
        let body: String = (0..30).map(|i| format!("s = s + {i};")).collect();
        let src = format!(
            "fn big(x: int) -> int {{ let s: int = x; {body} return s; }}\nfn f(a: int) -> int {{ return big(a); }}"
        );
        let mut m = build_module(&src);
        assert!(!inline_in(&mut m, "f"));
    }

    #[test]
    fn inlines_void_callee() {
        let mut m = build_module(
            "fn tell(x: int) { print(x); print(x + 1); }\nfn f(a: int) { tell(a); print(0); }",
        );
        assert!(inline_in(&mut m, "f"));
        let f = m.function("f").unwrap();
        let text = function_to_string(f);
        // tell's two prints plus f's own print remain; call to tell is gone.
        assert_eq!(text.matches("call @print").count(), 3, "{text}");
        assert!(!text.contains("@m.tell"), "{text}");
    }

    #[test]
    fn inline_preserves_following_code() {
        let mut m = build_module(
            "fn g(x: int) -> int { return x + 5; }\nfn f(a: int) -> int { let t: int = g(a); return t * 3; }",
        );
        assert!(inline_in(&mut m, "f"));
        let f = m.function("f").unwrap();
        let text = function_to_string(f);
        assert!(text.contains("add"), "{text}");
        assert!(text.contains("mul") || text.contains("shl"), "{text}");
    }

    #[test]
    fn respects_site_budget() {
        let calls: String = (0..12).map(|_| "s = s + g(a);".to_string()).collect();
        let src = format!(
            "fn g(x: int) -> int {{ return x + 1; }}\nfn f(a: int) -> int {{ let s: int = 0; {calls} return s; }}"
        );
        let mut m = build_module(&src);
        assert!(inline_in(&mut m, "f"));
        let f = m.function("f").unwrap();
        let text = function_to_string(f);
        let remaining = text.matches("@m.g").count();
        assert_eq!(remaining, 12 - MAX_INLINED_SITES, "{text}");
    }

    #[test]
    fn inlined_function_in_loop_verifies() {
        let mut m = build_module(
            "fn inc(x: int) -> int { return x + 1; }\nfn f(n: int) -> int { let s: int = 0; let i: int = 0; while (i < n) { s = s + inc(i); i = inc(i); } return s; }",
        );
        assert!(inline_in(&mut m, "f"));
    }

    #[test]
    fn cross_module_call_not_inlined() {
        let mut f =
            parse_function("fn @f(i64) -> i64 {\nbb0:\n  v0 = call i64 @other.g(p0)\n  ret v0\n}")
                .unwrap();
        let snapshot = ModuleSnapshot::empty("m");
        assert!(!Inline.run(&mut f, &snapshot));
    }
}
