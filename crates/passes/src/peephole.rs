//! Late peephole cleanups on branches and selects.
//!
//! Runs at the end of the pipeline: inverts branches on negated conditions,
//! folds branches on constants, and forms selects from two-constant diamonds
//! whose arms are empty.

use crate::Pass;
use sfcc_ir::{
    BinKind, BlockId, Function, InstData, ModuleSnapshot, Op, Predecessors, Terminator, Ty,
    ValueRef,
};

/// The `peephole` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Peephole;

impl Pass for Peephole {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        changed |= invert_negated_branches(func);
        changed |= form_selects(func);
        changed
    }
}

/// `condbr (xor c, true), T, E` → `condbr c, E, T`.
fn invert_negated_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for b in func.block_ids().collect::<Vec<_>>() {
        let Terminator::CondBr {
            cond: ValueRef::Inst(c),
            then_bb,
            else_bb,
        } = func.block(b).term
        else {
            continue;
        };
        let inst = func.inst(c);
        if inst.op == Op::Bin(BinKind::Xor)
            && inst.ty == Ty::I1
            && inst.args[1] == ValueRef::bool(true)
        {
            let inner = inst.args[0];
            func.block_mut(b).term = Terminator::CondBr {
                cond: inner,
                then_bb: else_bb,
                else_bb: then_bb,
            };
            // Phi inputs keyed by predecessor block are unaffected: the
            // predecessor is still `b`, only which edge is taken changes.
            changed = true;
        }
    }
    changed
}

/// Rewrites the two-arm empty diamond
///
/// ```text
/// b:  condbr c, t, e        t: br j        e: br j
/// j:  x = phi [t: v1], [e: v2]
/// ```
///
/// into `x = select c, v1, v2` followed by `br j`, leaving `t`/`e` for
/// `simplify-cfg` to collect. Fires only when `t` and `e` are empty blocks
/// with `b` as their sole predecessor.
fn form_selects(func: &mut Function) -> bool {
    let preds = Predecessors::compute(func);
    let mut changed = false;
    for b in func.block_ids().collect::<Vec<_>>() {
        let Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = func.block(b).term
        else {
            continue;
        };
        if then_bb == else_bb {
            continue;
        }
        let arm_ok = |arm: BlockId| {
            func.block(arm).insts.is_empty()
                && preds.of(arm) == [b]
                && matches!(func.block(arm).term, Terminator::Br(_))
        };
        if !arm_ok(then_bb) || !arm_ok(else_bb) {
            continue;
        }
        let Terminator::Br(j1) = func.block(then_bb).term else {
            continue;
        };
        let Terminator::Br(j2) = func.block(else_bb).term else {
            continue;
        };
        if j1 != j2 {
            continue;
        }
        let join = j1;
        // Every phi in the join must have exactly the two arms as inputs.
        let phi_ids: Vec<_> = func
            .block(join)
            .insts
            .iter()
            .copied()
            .filter(|&i| matches!(func.inst(i).op, Op::Phi(_)))
            .collect();
        if phi_ids.is_empty() {
            continue; // nothing to gain; simplify-cfg threads this shape
        }
        let mut rewirable = true;
        let mut arms: Vec<(sfcc_ir::InstId, ValueRef, ValueRef)> = Vec::new();
        for &pid in &phi_ids {
            let inst = func.inst(pid);
            let Op::Phi(blocks) = &inst.op else {
                unreachable!()
            };
            if blocks.len() != 2 {
                rewirable = false;
                break;
            }
            let mut v_then = None;
            let mut v_else = None;
            for (pb, v) in blocks.iter().zip(&inst.args) {
                if *pb == then_bb {
                    v_then = Some(*v);
                } else if *pb == else_bb {
                    v_else = Some(*v);
                }
            }
            match (v_then, v_else) {
                (Some(a), Some(bv)) => arms.push((pid, a, bv)),
                _ => {
                    rewirable = false;
                    break;
                }
            }
        }
        if !rewirable {
            continue;
        }
        // Phi inputs must be computable at `b` (they already dominate the
        // arms, whose only predecessor is `b`, so they dominate `b`'s end —
        // except values defined *in* the arms, which are impossible since
        // the arms are empty).
        for (pid, v_then, v_else) in arms {
            let ty = func.inst(pid).ty;
            let sel =
                func.append_inst(b, InstData::new(Op::Select, vec![cond, v_then, v_else], ty));
            let mut map = std::collections::HashMap::new();
            map.insert(ValueRef::Inst(pid), ValueRef::Inst(sel));
            func.replace_uses(&map);
            func.detach_inst(pid);
        }
        func.block_mut(b).term = Terminator::Br(join);
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify_cfg::SimplifyCfg;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Peephole.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        SimplifyCfg.run(&mut f, &ModuleSnapshot::empty("t"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn inverts_negated_branch() {
        let (c, text) = run(r"
fn @f(i1) -> i64 {
bb0:
  v0 = xor i1 p0, true
  condbr v0, bb1, bb2
bb1:
  ret 1
bb2:
  ret 2
}");
        assert!(c);
        assert!(text.contains("condbr p0"), "{text}");
        // True path now returns 2: extract the first target of the condbr
        // and check that its block returns 2.
        let cond_line = text.lines().find(|l| l.contains("condbr")).unwrap();
        let then_target = cond_line
            .split("condbr p0, ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .unwrap()
            .trim()
            .to_string();
        let then_body: String = text
            .lines()
            .skip_while(|l| !l.starts_with(&format!("{then_target}:")))
            .take(2)
            .collect::<Vec<_>>()
            .join(" ");
        assert!(then_body.contains("ret 2"), "{text}");
    }

    #[test]
    fn forms_select_from_diamond() {
        let (c, text) = run(r"
fn @f(i1, i64, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: p1], [bb2: p2]
  ret v0
}");
        assert!(c);
        assert!(text.contains("select i64 p0, p1, p2"), "{text}");
        assert!(!text.contains("phi"), "{text}");
        assert!(!text.contains("condbr"), "{text}");
    }

    #[test]
    fn no_select_when_arm_has_instructions() {
        let (c, text) = run(r"
fn @f(i1, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  v1 = add i64 p1, 1
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: v1], [bb2: p1]
  ret v0
}");
        assert!(!c);
        assert!(text.contains("phi"), "{text}");
    }

    #[test]
    fn dormant_on_plain_code() {
        let (c, _) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  ret v0\n}");
        assert!(!c);
    }

    #[test]
    fn multiple_phis_all_become_selects() {
        let (c, text) = run(r"
fn @f(i1, i64, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: p1], [bb2: p2]
  v1 = phi i64 [bb1: p2], [bb2: p1]
  v2 = add i64 v0, v1
  ret v2
}");
        assert!(c);
        assert_eq!(text.matches("select").count(), 2, "{text}");
    }
}
