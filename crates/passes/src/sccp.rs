//! Sparse conditional constant propagation.
//!
//! Classic SCCP over the lattice ⊤ (unknown) → constant → ⊥ (overdefined),
//! tracking executable CFG edges. Values proven constant are materialized;
//! conditional branches with proven-constant conditions are rewritten to
//! unconditional branches (the unreachable side is left for `simplify-cfg`).

use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{BlockId, Function, InstId, ModuleSnapshot, Op, Terminator, Ty, ValueRef, ENTRY};
use std::collections::{HashMap, HashSet, VecDeque};

/// The `sccp` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sccp;

/// Lattice value per SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lattice {
    /// Not yet known (optimistically assumed constant).
    Top,
    /// Known to be this constant.
    Const(Ty, i64),
    /// Known to vary.
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Const(t1, a), Lattice::Const(_, b)) if a == b => Lattice::Const(t1, a),
            _ => Lattice::Bottom,
        }
    }
}

impl Pass for Sccp {
    fn name(&self) -> &'static str {
        "sccp"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        Solver::new(func).solve_and_apply(func)
    }
}

struct Solver {
    values: HashMap<InstId, Lattice>,
    executable_edges: HashSet<(BlockId, BlockId)>,
    executable_blocks: HashSet<BlockId>,
    block_work: VecDeque<BlockId>,
    inst_work: VecDeque<InstId>,
    /// Users of each instruction result (for sparse propagation).
    users: HashMap<InstId, Vec<InstId>>,
    /// Blocks whose terminators use a value.
    term_users: HashMap<InstId, Vec<BlockId>>,
    /// Owning block per instruction.
    owner: HashMap<InstId, BlockId>,
}

impl Solver {
    fn new(func: &Function) -> Self {
        let mut users: HashMap<InstId, Vec<InstId>> = HashMap::new();
        let mut owner = HashMap::new();
        for (b, iid) in func.iter_insts() {
            owner.insert(iid, b);
            for arg in &func.inst(iid).args {
                if let ValueRef::Inst(d) = arg {
                    users.entry(*d).or_default().push(iid);
                }
            }
        }
        let mut term_users: HashMap<InstId, Vec<BlockId>> = HashMap::new();
        for b in func.block_ids() {
            for v in func.block(b).term.args() {
                if let ValueRef::Inst(d) = v {
                    term_users.entry(d).or_default().push(b);
                }
            }
        }
        Solver {
            values: HashMap::new(),
            executable_edges: HashSet::new(),
            executable_blocks: HashSet::new(),
            block_work: VecDeque::new(),
            inst_work: VecDeque::new(),
            users,
            term_users,
            owner,
        }
    }

    fn value_of(&self, v: ValueRef) -> Lattice {
        match v {
            ValueRef::Const(ty, c) => Lattice::Const(ty, c),
            ValueRef::Param(_) => Lattice::Bottom,
            ValueRef::Inst(i) => *self.values.get(&i).unwrap_or(&Lattice::Top),
        }
    }

    fn set(&mut self, i: InstId, new: Lattice) {
        let old = *self.values.get(&i).unwrap_or(&Lattice::Top);
        let merged = old.meet(new);
        if merged != old {
            self.values.insert(i, merged);
            for u in self.users.get(&i).cloned().unwrap_or_default() {
                self.inst_work.push_back(u);
            }
            for b in self.term_users.get(&i).cloned().unwrap_or_default() {
                self.block_work.push_back(b);
            }
        }
    }

    fn mark_edge(&mut self, from: BlockId, to: BlockId) {
        if self.executable_edges.insert((from, to)) {
            if self.executable_blocks.insert(to) {
                self.block_work.push_back(to);
            } else {
                // New edge into an already-live block: phis must re-meet.
                self.block_work.push_back(to);
            }
        }
    }

    fn solve_and_apply(mut self, func: &mut Function) -> bool {
        self.executable_blocks.insert(ENTRY);
        self.block_work.push_back(ENTRY);

        while !self.block_work.is_empty() || !self.inst_work.is_empty() {
            while let Some(i) = self.inst_work.pop_front() {
                let b = self.owner[&i];
                if self.executable_blocks.contains(&b) {
                    self.visit_inst(func, i);
                }
            }
            if let Some(b) = self.block_work.pop_front() {
                if self.executable_blocks.contains(&b) {
                    for &i in &func.block(b).insts.clone() {
                        self.visit_inst(func, i);
                    }
                    self.visit_terminator(func, b);
                }
            }
        }

        self.apply(func)
    }

    fn visit_inst(&mut self, func: &Function, iid: InstId) {
        let inst = func.inst(iid);
        let lat = match &inst.op {
            Op::Bin(kind) => match (self.value_of(inst.args[0]), self.value_of(inst.args[1])) {
                (Lattice::Const(ty, a), Lattice::Const(_, b)) => match kind.eval(a, b) {
                    Some(v) => Lattice::Const(ty, if ty == Ty::I1 { v & 1 } else { v }),
                    None => Lattice::Bottom, // traps at runtime: not constant
                },
                (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                _ => Lattice::Top,
            },
            Op::Icmp(pred) => match (self.value_of(inst.args[0]), self.value_of(inst.args[1])) {
                (Lattice::Const(_, a), Lattice::Const(_, b)) => {
                    Lattice::Const(Ty::I1, pred.eval(a, b) as i64)
                }
                (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                _ => Lattice::Top,
            },
            Op::Select => match self.value_of(inst.args[0]) {
                Lattice::Const(_, c) => {
                    self.value_of(if c != 0 { inst.args[1] } else { inst.args[2] })
                }
                Lattice::Bottom => self
                    .value_of(inst.args[1])
                    .meet(self.value_of(inst.args[2])),
                Lattice::Top => Lattice::Top,
            },
            Op::Phi(blocks) => {
                let me = self.owner[&iid];
                let mut lat = Lattice::Top;
                for (pb, v) in blocks.iter().zip(&inst.args) {
                    if self.executable_edges.contains(&(*pb, me)) {
                        lat = lat.meet(self.value_of(*v));
                    }
                }
                lat
            }
            // Memory, calls, allocas: never constant.
            Op::Alloca(_) | Op::Load | Op::Store | Op::Gep | Op::Call(_) => Lattice::Bottom,
        };
        self.set(iid, lat);
    }

    fn visit_terminator(&mut self, func: &Function, b: BlockId) {
        match &func.block(b).term {
            Terminator::Br(t) => self.mark_edge(b, *t),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => match self.value_of(*cond) {
                Lattice::Const(_, c) => {
                    self.mark_edge(b, if c != 0 { *then_bb } else { *else_bb });
                }
                Lattice::Bottom => {
                    self.mark_edge(b, *then_bb);
                    self.mark_edge(b, *else_bb);
                }
                Lattice::Top => {}
            },
            Terminator::Ret(_) | Terminator::Trap => {}
        }
    }

    fn apply(self, func: &mut Function) -> bool {
        let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
        let mut dead: Vec<InstId> = Vec::new();
        for (iid, lat) in &self.values {
            if let Lattice::Const(ty, c) = lat {
                let inst = func.inst(*iid);
                if inst.op.has_side_effects() {
                    continue;
                }
                map.insert(ValueRef::Inst(*iid), ValueRef::Const(*ty, *c));
                dead.push(*iid);
            }
        }
        let mut changed = !map.is_empty();
        func.replace_uses(&map);
        detach_all(func, &dead);

        // Rewrite branches whose condition was proven constant (either
        // replaced above, or never marked executable on one side).
        for b in func.block_ids().collect::<Vec<_>>() {
            if !self.executable_blocks.contains(&b) {
                continue;
            }
            if let Terminator::CondBr {
                cond: ValueRef::Const(_, c),
                then_bb,
                else_bb,
            } = func.block(b).term
            {
                let (kept, dropped) = if c != 0 {
                    (then_bb, else_bb)
                } else {
                    (else_bb, then_bb)
                };
                func.block_mut(b).term = Terminator::Br(kept);
                changed = true;
                // Phis in the dropped successor lose this predecessor.
                if dropped != kept {
                    remove_phi_incoming(func, dropped, b);
                }
            }
        }
        changed
    }
}

fn remove_phi_incoming(func: &mut Function, block: BlockId, pred: BlockId) {
    for iid in func.block(block).insts.clone() {
        let inst = func.inst_mut(iid);
        if let Op::Phi(blocks) = &mut inst.op {
            while let Some(pos) = blocks.iter().position(|&p| p == pred) {
                blocks.remove(pos);
                inst.args.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify_cfg::SimplifyCfg;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Sccp.run(&mut f, &ModuleSnapshot::empty("t"));
        SimplifyCfg.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn propagates_through_branches() {
        // x is 7 on both paths; sccp proves the merged phi constant.
        let (c, text) = run(r"
fn @f(i1) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  v0 = add i64 3, 4
  br bb3
bb2:
  v1 = add i64 5, 2
  br bb3
bb3:
  v2 = phi i64 [bb1: v0], [bb2: v1]
  v3 = mul i64 v2, 2
  ret v3
}");
        assert!(c);
        assert!(text.contains("ret 14"), "{text}");
    }

    #[test]
    fn kills_never_executed_path() {
        // The condition is constant, so the phi only sees one input.
        let (c, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  v9 = icmp slt 1, 2
  condbr v9, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v2 = phi i64 [bb1: 10], [bb2: p0]
  ret v2
}");
        assert!(c);
        assert!(text.contains("ret 10"), "{text}");
    }

    #[test]
    fn conditional_constants_beat_simple_folding() {
        // Classic SCCP example: x = 1; while/if structure keeps x constant
        // even though a naive folder gives up at the phi.
        let (c, text) = run(r"
fn @f(i1) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 1], [bb2: v1]
  condbr p0, bb2, bb3
bb2:
  v1 = add i64 v0, 0
  br bb1
bb3:
  ret v0
}");
        assert!(c);
        assert!(text.contains("ret 1"), "{text}");
    }

    #[test]
    fn dormant_on_dynamic_values() {
        let (c, _) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  ret v0\n}");
        assert!(!c);
    }

    #[test]
    fn trapping_fold_goes_bottom() {
        let (c, text) = run("fn @f() -> i64 {\nbb0:\n  v0 = sdiv i64 5, 0\n  ret v0\n}");
        assert!(!c);
        assert!(text.contains("sdiv"), "{text}");
    }

    #[test]
    fn loads_are_bottom() {
        let (c, _) = run(
            "fn @f() -> i64 {\nbb0:\n  v0 = alloca 1\n  store v0, 3\n  v1 = load i64 v0\n  ret v1\n}",
        );
        assert!(!c);
    }
}
