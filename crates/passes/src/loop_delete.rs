//! Deletion of dead loops.
//!
//! A loop is removable when it has no side effects (no stores or calls), a
//! unique preheader, a single exit target reached from the header, and no
//! value defined inside it is used outside. MiniC loops are assumed to make
//! progress (the `mustprogress` convention in C++/LLVM), so an infinite
//! side-effect-free loop may be deleted.

use crate::Pass;
use sfcc_ir::{
    DomTree, Function, LoopForest, ModuleSnapshot, Op, Predecessors, Terminator, ValueRef,
};
use std::collections::HashSet;

/// The `loop-delete` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopDelete;

impl Pass for LoopDelete {
    fn name(&self) -> &'static str {
        "loop-delete"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let dom = DomTree::compute(func);
            let preds = Predecessors::compute(func);
            let forest = LoopForest::compute(func, &dom);
            let mut deleted = false;

            'loops: for l in &forest.loops {
                let Some(preheader) = l.preheader(func, &preds) else {
                    continue;
                };
                // Exit structure: header conditionally exits to a single
                // outside target.
                let exits = l.exit_targets(func);
                let [exit] = exits.as_slice() else { continue };
                let exit = *exit;
                if !l.exiting_blocks(func).contains(&l.header) {
                    continue;
                }
                let in_loop: HashSet<_> = l.blocks.iter().copied().collect();

                // No side effects inside.
                for &b in &l.blocks {
                    for &iid in &func.block(b).insts {
                        if func.inst(iid).op.has_side_effects() {
                            continue 'loops;
                        }
                    }
                }

                // No inside-defined value used outside the loop.
                let mut inside_defs: HashSet<ValueRef> = HashSet::new();
                for &b in &l.blocks {
                    for &iid in &func.block(b).insts {
                        inside_defs.insert(ValueRef::Inst(iid));
                    }
                }
                for b in func.block_ids() {
                    if in_loop.contains(&b) {
                        continue;
                    }
                    for &iid in &func.block(b).insts {
                        if func.inst(iid).args.iter().any(|a| inside_defs.contains(a)) {
                            continue 'loops;
                        }
                    }
                    for v in func.block(b).term.args() {
                        if inside_defs.contains(&v) {
                            continue 'loops;
                        }
                    }
                }

                // Redirect the preheader straight to the exit; exit phis that
                // named the header as predecessor now come from the
                // preheader (their values were checked to be loop-outside).
                func.block_mut(preheader).term = Terminator::Br(exit);
                for iid in func.block(exit).insts.clone() {
                    let inst = func.inst_mut(iid);
                    if let Op::Phi(blocks) = &mut inst.op {
                        for pb in blocks.iter_mut() {
                            if *pb == l.header {
                                *pb = preheader;
                            }
                        }
                    }
                }
                deleted = true;
                changed = true;
                break;
            }
            if !deleted {
                return changed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify_cfg::SimplifyCfg;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = LoopDelete.run(&mut f, &ModuleSnapshot::empty("t"));
        // Clean up the now-unreachable loop body before verifying phis.
        SimplifyCfg.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    const DEAD_LOOP: &str = r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret 42
}";

    #[test]
    fn deletes_effect_free_loop() {
        let (c, text) = run(DEAD_LOOP);
        assert!(c);
        assert!(!text.contains("phi"), "{text}");
        assert!(text.contains("ret 42"), "{text}");
    }

    #[test]
    fn keeps_loop_with_store() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  v9 = alloca 1
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  store v9, v1
  br bb1
bb3:
  ret 42
}");
        assert!(!c);
    }

    #[test]
    fn keeps_loop_whose_result_is_used() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret v0
}");
        assert!(!c);
    }

    #[test]
    fn exit_phi_from_outside_value_is_retargeted() {
        let (c, text) = run(r"
fn @f(i64, i64) -> i64 {
bb0:
  v9 = add i64 p1, 5
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  v3 = phi i64 [bb1: v9]
  ret v3
}");
        assert!(c);
        assert!(text.contains("ret"), "{text}");
        verify_after(&text);
    }

    fn verify_after(text: &str) {
        let f = parse_function(text).unwrap();
        verify_function(&f).unwrap();
    }
}
