//! Loop-invariant code motion.
//!
//! Hoists pure, non-trapping instructions whose operands are defined outside
//! the loop into the loop preheader. Loads, stores, calls, and potentially
//! trapping arithmetic (`sdiv`, `srem`) are never hoisted — executing them
//! speculatively could introduce traps or reorder side effects.

use crate::Pass;
use sfcc_ir::{DomTree, Function, InstId, LoopForest, ModuleSnapshot, Op, Predecessors, ValueRef};
use std::collections::HashSet;

/// The `licm` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Licm;

fn hoistable(op: &Op) -> bool {
    match op {
        Op::Bin(k) => !k.can_trap(),
        Op::Icmp(_) | Op::Select | Op::Gep => true,
        _ => false,
    }
}

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let dom = DomTree::compute(func);
            let preds = Predecessors::compute(func);
            let forest = LoopForest::compute(func, &dom);
            if forest.loops.is_empty() {
                return changed;
            }

            let mut moved_any = false;
            // Innermost-last ordering lets outer loops pick up what inner
            // loops exposed on the next fixpoint iteration.
            for l in &forest.loops {
                let Some(preheader) = l.preheader(func, &preds) else {
                    continue;
                };
                let in_loop: HashSet<_> = l.blocks.iter().copied().collect();

                // A value is invariant if defined outside the loop.
                let mut inst_block = std::collections::HashMap::new();
                for (b, i) in func.iter_insts() {
                    inst_block.insert(i, b);
                }
                let is_invariant = |v: ValueRef, hoisted: &HashSet<InstId>| match v {
                    ValueRef::Const(..) | ValueRef::Param(_) => true,
                    ValueRef::Inst(i) => {
                        hoisted.contains(&i)
                            || inst_block.get(&i).is_some_and(|b| !in_loop.contains(b))
                    }
                };

                let mut hoisted: HashSet<InstId> = HashSet::new();
                // Iterate within the loop until no more hoists (a hoisted
                // value can make its users invariant).
                loop {
                    let mut this_round: Vec<InstId> = Vec::new();
                    for &b in &l.blocks {
                        for &iid in &func.block(b).insts {
                            if hoisted.contains(&iid) {
                                continue;
                            }
                            let inst = func.inst(iid);
                            if !hoistable(&inst.op) {
                                continue;
                            }
                            if inst.args.iter().all(|&a| is_invariant(a, &hoisted)) {
                                this_round.push(iid);
                            }
                        }
                    }
                    if this_round.is_empty() {
                        break;
                    }
                    for iid in this_round {
                        func.detach_inst(iid);
                        func.block_mut(preheader).insts.push(iid);
                        hoisted.insert(iid);
                    }
                }
                if !hoisted.is_empty() {
                    moved_any = true;
                    changed = true;
                    // CFG structure changed implicitly (inst placement);
                    // restart with fresh analyses.
                    break;
                }
            }
            if !moved_any {
                return changed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Licm.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    const LOOP_WITH_INVARIANT: &str = r"
fn @f(i64, i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v3 = mul i64 p1, 7
  v1 = add i64 v0, v3
  br bb1
bb3:
  ret v0
}";

    #[test]
    fn hoists_invariant_mul_to_preheader() {
        let (c, text) = run(LOOP_WITH_INVARIANT);
        assert!(c);
        // The mul now sits in bb0 (the preheader).
        let entry: String = text
            .lines()
            .skip_while(|l| !l.starts_with("bb0"))
            .take_while(|l| !l.starts_with("bb1"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(entry.contains("mul"), "{text}");
    }

    #[test]
    fn hoists_dependent_chain() {
        let (c, text) = run(r"
fn @f(i64, i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v3 = mul i64 p1, 7
  v4 = add i64 v3, 9
  v1 = add i64 v0, v4
  br bb1
bb3:
  ret v0
}");
        assert!(c);
        let entry: String = text
            .lines()
            .skip_while(|l| !l.starts_with("bb0"))
            .take_while(|l| !l.starts_with("bb1"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(entry.contains("mul") && entry.contains("add i64"), "{text}");
    }

    #[test]
    fn does_not_hoist_variant_values() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret v0
}");
        assert!(!c);
    }

    #[test]
    fn does_not_hoist_trapping_div() {
        let (c, _) = run(r"
fn @f(i64, i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v3 = sdiv i64 100, p1
  v1 = add i64 v0, v3
  br bb1
bb3:
  ret v0
}");
        assert!(!c, "sdiv may trap and must not be hoisted");
    }

    #[test]
    fn does_not_hoist_loads() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  v9 = alloca 4
  store v9, 5
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb2:
  v3 = load i64 v9
  v1 = add i64 v0, v3
  br bb1
bb3:
  ret v0
}");
        assert!(!c, "loads must not be hoisted without alias analysis");
    }

    #[test]
    fn idempotent_after_hoisting() {
        let mut f = parse_function(LOOP_WITH_INVARIANT).unwrap();
        assert!(Licm.run(&mut f, &ModuleSnapshot::empty("t")));
        assert!(!Licm.run(&mut f, &ModuleSnapshot::empty("t")));
    }
}
