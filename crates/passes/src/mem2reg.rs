//! Promotion of single-element stack slots to SSA registers.
//!
//! The lowerer emits every scalar local as an `alloca` with loads and stores
//! (Clang-style). This pass promotes those slots to SSA values, inserting
//! phis at iterated dominance frontiers and renaming uses along the
//! dominator tree — the textbook SSA-construction algorithm.

use crate::Pass;
use sfcc_ir::{DomTree, Function, InstData, InstId, ModuleSnapshot, Op, Ty, ValueRef, ENTRY};
use std::collections::{HashMap, HashSet};

/// The `mem2reg` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mem2Reg;

impl Pass for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        promote(func)
    }
}

/// A promotable alloca and its classified uses.
struct Candidate {
    alloca: InstId,
    elem: Ty,
    loads: Vec<InstId>,
    stores: Vec<InstId>,
}

fn find_candidates(func: &Function) -> Vec<Candidate> {
    // First collect every single-slot alloca.
    let mut candidates: HashMap<InstId, Candidate> = HashMap::new();
    for (_, iid) in func.iter_insts() {
        if let Op::Alloca(1) = func.inst(iid).op {
            candidates.insert(
                iid,
                Candidate {
                    alloca: iid,
                    elem: Ty::Void,
                    loads: Vec::new(),
                    stores: Vec::new(),
                },
            );
        }
    }
    if candidates.is_empty() {
        return Vec::new();
    }

    // Classify uses; any escaping use disqualifies the slot.
    let mut disqualified: HashSet<InstId> = HashSet::new();
    for (_, iid) in func.iter_insts() {
        let inst = func.inst(iid);
        for (argpos, arg) in inst.args.iter().enumerate() {
            let ValueRef::Inst(target) = arg else {
                continue;
            };
            let Some(cand) = candidates.get_mut(target) else {
                continue;
            };
            match (&inst.op, argpos) {
                (Op::Load, 0) => {
                    cand.loads.push(iid);
                    if cand.elem == Ty::Void {
                        cand.elem = inst.ty;
                    } else if cand.elem != inst.ty {
                        disqualified.insert(*target);
                    }
                }
                (Op::Store, 0) => {
                    cand.stores.push(iid);
                    let vty = func.value_ty(inst.args[1]);
                    if cand.elem == Ty::Void {
                        cand.elem = vty;
                    } else if cand.elem != vty {
                        disqualified.insert(*target);
                    }
                }
                // Address escapes: gep, call argument, stored as a value, …
                _ => {
                    disqualified.insert(*target);
                }
            }
        }
    }
    // Terminator uses of an alloca address (returning a ptr) disqualify too —
    // cannot happen in verified IR, but stay defensive.
    for b in func.block_ids() {
        for v in func.block(b).term.args() {
            if let ValueRef::Inst(id) = v {
                disqualified.insert(id);
            }
        }
    }

    candidates
        .into_values()
        .filter(|c| !disqualified.contains(&c.alloca))
        .collect()
}

fn promote(func: &mut Function) -> bool {
    let mut candidates = find_candidates(func);
    if candidates.is_empty() {
        return false;
    }
    // Stable order keeps output deterministic.
    candidates.sort_by_key(|c| c.alloca);

    let dom = DomTree::compute(func);
    let frontiers = dom.frontiers(func);

    // Block of every attached instruction.
    let mut block_of: HashMap<InstId, sfcc_ir::BlockId> = HashMap::new();
    for (b, i) in func.iter_insts() {
        block_of.insert(i, b);
    }

    // 1. Phi placement at iterated dominance frontiers of store blocks.
    //    placed[(block, cand_idx)] = phi inst id.
    let mut placed: HashMap<(sfcc_ir::BlockId, usize), InstId> = HashMap::new();
    for (ci, cand) in candidates.iter().enumerate() {
        if cand.loads.is_empty() {
            continue; // store-only slot: no phis needed.
        }
        let mut work: Vec<sfcc_ir::BlockId> = cand.stores.iter().map(|s| block_of[s]).collect();
        let mut has_phi: HashSet<sfcc_ir::BlockId> = HashSet::new();
        while let Some(db) = work.pop() {
            if !dom.is_reachable(db) {
                continue;
            }
            for &fb in &frontiers[db.0 as usize] {
                if has_phi.insert(fb) {
                    let phi =
                        func.alloc_inst(InstData::new(Op::Phi(Vec::new()), Vec::new(), cand.elem));
                    func.block_mut(fb).insts.insert(0, phi);
                    placed.insert((fb, ci), phi);
                    work.push(fb); // a phi is itself a definition
                }
            }
        }
    }

    let phi_to_cand: HashMap<InstId, usize> =
        placed.iter().map(|(&(_, ci), &phi)| (phi, ci)).collect();

    // 2. Renaming along the dominator tree.
    let undef = |elem: Ty| ValueRef::Const(if elem == Ty::Void { Ty::I64 } else { elem }, 0);
    let cand_index: HashMap<InstId, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.alloca, i))
        .collect();

    let mut replacements: HashMap<ValueRef, ValueRef> = HashMap::new();
    let mut dead: Vec<InstId> = Vec::new();

    // Iterative preorder DFS over the dominator tree carrying per-candidate
    // definition stacks.
    enum Step {
        Enter(sfcc_ir::BlockId),
        Exit(Vec<(usize, usize)>), // (cand, previous stack length)
    }
    let mut stacks: Vec<Vec<ValueRef>> = vec![Vec::new(); candidates.len()];
    let mut agenda = vec![Step::Enter(ENTRY)];
    while let Some(step) = agenda.pop() {
        match step {
            Step::Exit(restore) => {
                for (ci, len) in restore {
                    stacks[ci].truncate(len);
                }
            }
            Step::Enter(b) => {
                let mut pushed: Vec<(usize, usize)> = Vec::new();
                let inst_list: Vec<InstId> = func.block(b).insts.clone();
                for iid in inst_list {
                    // A placed phi defines its candidate.
                    if let Some(&ci) = phi_to_cand.get(&iid) {
                        pushed.push((ci, stacks[ci].len()));
                        stacks[ci].push(ValueRef::Inst(iid));
                        continue;
                    }
                    let inst = func.inst(iid);
                    match &inst.op {
                        Op::Load => {
                            if let ValueRef::Inst(a) = inst.args[0] {
                                if let Some(&ci) = cand_index.get(&a) {
                                    let cur = stacks[ci]
                                        .last()
                                        .copied()
                                        .unwrap_or_else(|| undef(candidates[ci].elem));
                                    replacements.insert(ValueRef::Inst(iid), cur);
                                    dead.push(iid);
                                }
                            }
                        }
                        Op::Store => {
                            if let ValueRef::Inst(a) = inst.args[0] {
                                if let Some(&ci) = cand_index.get(&a) {
                                    let value = inst.args[1];
                                    pushed.push((ci, stacks[ci].len()));
                                    stacks[ci].push(value);
                                    dead.push(iid);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                // Fill successor phis with the current definitions (each
                // distinct successor once, even if both condbr edges target
                // the same block).
                let mut succs = func.block(b).term.successors();
                succs.dedup();
                for succ in succs {
                    for ci in 0..candidates.len() {
                        if let Some(&phi) = placed.get(&(succ, ci)) {
                            let cur = stacks[ci]
                                .last()
                                .copied()
                                .unwrap_or_else(|| undef(candidates[ci].elem));
                            let inst = func.inst_mut(phi);
                            let Op::Phi(blocks) = &mut inst.op else {
                                unreachable!()
                            };
                            blocks.push(b);
                            inst.args.push(cur);
                        }
                    }
                }
                agenda.push(Step::Exit(pushed));
                for &child in dom.children(b) {
                    agenda.push(Step::Enter(child));
                }
            }
        }
    }

    // 3. Resolve phi-input chains (a load that fed a phi was itself replaced)
    //    and sweep the dead memory operations plus the allocas.
    for cand in &candidates {
        dead.push(cand.alloca);
    }
    func.replace_uses(&replacements);
    crate::util::detach_all(func, &dead);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv};
    use sfcc_ir::{module_to_string, parse_function, verify_function};

    fn promote_src(src: &str) -> String {
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src, &ModuleEnv::new(), &mut d).expect("valid program");
        let mut module = sfcc_ir::lower_module(&checked, &ModuleEnv::new());
        let mut changed_any = false;
        for f in &mut module.functions {
            changed_any |= promote(f);
            verify_function(f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        }
        assert!(changed_any, "expected promotion to fire");
        module_to_string(&module)
    }

    #[test]
    fn promotes_straightline_scalars() {
        let text = promote_src("fn f(a: int) -> int { let x: int = a + 1; return x * 2; }");
        assert!(!text.contains("alloca"), "{text}");
        assert!(!text.contains("load"), "{text}");
        assert!(!text.contains("store"), "{text}");
    }

    #[test]
    fn inserts_phi_at_join() {
        let text = promote_src(
            "fn f(c: bool) -> int { let x: int = 0; if (c) { x = 1; } else { x = 2; } return x; }",
        );
        assert!(text.contains("phi i64"), "{text}");
        assert!(!text.contains("alloca"), "{text}");
    }

    #[test]
    fn loop_variable_becomes_phi() {
        let text = promote_src(
            "fn f(n: int) -> int { let s: int = 0; let i: int = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        );
        assert!(text.contains("phi i64"), "{text}");
        assert!(!text.contains("alloca"), "{text}");
    }

    #[test]
    fn arrays_are_not_promoted() {
        let text = promote_src(
            "fn f() -> int { let x: int = 1; let a: [int; 4]; a[0] = x; return a[0]; }",
        );
        // The scalar x goes away but the array stays in memory form.
        assert!(text.contains("alloca 4"), "{text}");
        assert!(text.contains("gep"), "{text}");
    }

    #[test]
    fn dormant_when_nothing_to_promote() {
        let mut f =
            parse_function("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  ret v0\n}").unwrap();
        assert!(!promote(&mut f));
    }

    #[test]
    fn load_before_store_yields_zero_undef() {
        // Manufactured IR: load from a slot never stored to.
        let mut f = parse_function(
            "fn @f() -> i64 {\nbb0:\n  v0 = alloca 1\n  v1 = load i64 v0\n  ret v1\n}",
        )
        .unwrap();
        assert!(promote(&mut f));
        verify_function(&f).unwrap();
        let text = sfcc_ir::function_to_string(&f);
        assert!(text.contains("ret 0"), "{text}");
    }

    #[test]
    fn bool_slots_promote_with_i1_phi() {
        let text = promote_src(
            "fn f(c: bool) -> bool { let b: bool = false; if (c) { b = true; } return b; }",
        );
        assert!(text.contains("phi i1"), "{text}");
    }

    #[test]
    fn short_circuit_temp_promotes() {
        let text = promote_src("fn f(a: int, b: int) -> bool { return a > 0 && b > 0; }");
        assert!(!text.contains("alloca"), "{text}");
        assert!(text.contains("phi i1"), "{text}");
    }
}
