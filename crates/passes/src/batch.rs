//! Deterministic cost-balanced batching of per-function pipeline work.
//!
//! Spawning one pool task per function per stage makes tiny functions pay
//! the full per-task fixed cost (allocation, queue traffic, steal
//! attempts) for microseconds of pass work — the dominant `--jobs`
//! overhead on wide modules. Instead, each stage pre-buckets its functions
//! into at most [`BATCH_BINS`] cost-balanced batches (largest cost first
//! into the least-loaded bin) and spawns one task per batch.
//!
//! The plan is a pure function of the functions' live-instruction costs in
//! roster order — deliberately *not* of the worker count — so batch
//! composition, batch counters, and everything downstream of them stay
//! byte-identical for every `--jobs` value. [`BATCH_BINS`] is fixed at
//! twice the largest worker count the evaluation sweeps (`--jobs 8`),
//! which keeps enough batches in flight for work-stealing to balance
//! stragglers while bounding fan-out fixed costs.

/// Upper bound on batches per stage: 2 × the largest swept `--jobs` (8).
pub(crate) const BATCH_BINS: usize = 16;

/// One stage's batch plan: disjoint index groups covering every function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BatchPlan {
    /// Function-index groups, ordered largest-total-cost-first (the spawn
    /// order — the shared injector is FIFO, so the costliest batch starts
    /// earliest). Indices within a group are in descending cost order.
    pub batches: Vec<Vec<usize>>,
    /// The largest single batch's total cost.
    pub max_cost: u64,
}

/// Plans one stage's batches from per-function costs (live instruction
/// counts), indexable by roster position. Deterministic: depends only on
/// `costs` — identical for every worker count.
pub(crate) fn plan_batches(costs: &[u64]) -> BatchPlan {
    if costs.is_empty() {
        return BatchPlan {
            batches: Vec::new(),
            max_cost: 0,
        };
    }
    let bins = BATCH_BINS.min(costs.len());
    // Largest first (ties by roster order), greedily into the least-loaded
    // bin (ties by bin number) — the classic LPT heuristic, fully
    // deterministic.
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut batches: Vec<Vec<usize>> = vec![Vec::new(); bins];
    let mut loads = vec![0u64; bins];
    for &i in &order {
        let b = (0..bins)
            .min_by_key(|&b| (loads[b], b))
            .expect("bins is nonzero");
        batches[b].push(i);
        // Zero-cost functions still occupy a slot's worth of fixed cost;
        // floor at 1 so they spread instead of piling into one bin.
        loads[b] += costs[i].max(1);
    }
    let max_cost = loads.iter().copied().max().unwrap_or(0);
    let mut by_load: Vec<usize> = (0..bins).collect();
    by_load.sort_by_key(|&b| (std::cmp::Reverse(loads[b]), b));
    BatchPlan {
        batches: by_load
            .into_iter()
            .map(|b| std::mem::take(&mut batches[b]))
            .filter(|batch| !batch.is_empty())
            .collect(),
        max_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(plan: &BatchPlan) -> Vec<usize> {
        let mut all: Vec<usize> = plan.batches.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let costs: Vec<u64> = (0..100).map(|i| (i * 37) % 53).collect();
        let plan = plan_batches(&costs);
        assert_eq!(flat(&plan), (0..100).collect::<Vec<_>>());
        assert_eq!(plan.batches.len(), BATCH_BINS);
    }

    #[test]
    fn fewer_functions_than_bins_get_one_batch_each() {
        let plan = plan_batches(&[10, 20, 30]);
        assert_eq!(plan.batches.len(), 3);
        assert_eq!(flat(&plan), vec![0, 1, 2]);
        // Largest-cost-first service order.
        assert_eq!(plan.batches[0], vec![2]);
        assert_eq!(plan.max_cost, 30);
    }

    #[test]
    fn loads_are_balanced_within_the_largest_item() {
        // LPT guarantee: max load ≤ min load + max item cost.
        let costs: Vec<u64> = (0..64).map(|i| 1 + (i * i * 7) % 97).collect();
        let plan = plan_batches(&costs);
        let loads: Vec<u64> = plan
            .batches
            .iter()
            .map(|b| b.iter().map(|&i| costs[i].max(1)).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        let biggest = *costs.iter().max().unwrap();
        assert!(max <= min + biggest, "max={max} min={min} item={biggest}");
        assert_eq!(plan.max_cost, max);
    }

    #[test]
    fn plan_is_deterministic_and_cost_only() {
        let costs: Vec<u64> = (0..40).map(|i| (i * 13) % 29).collect();
        assert_eq!(plan_batches(&costs), plan_batches(&costs));
    }

    #[test]
    fn zero_cost_functions_spread_across_bins() {
        let plan = plan_batches(&[0; 32]);
        assert_eq!(plan.batches.len(), BATCH_BINS);
        assert!(plan.batches.iter().all(|b| b.len() == 2));
    }

    #[test]
    fn empty_input_plans_nothing() {
        let plan = plan_batches(&[]);
        assert!(plan.batches.is_empty());
        assert_eq!(plan.max_cost, 0);
    }
}
