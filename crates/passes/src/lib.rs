//! # sfcc-passes
//!
//! Optimization passes and the instrumented pass manager of the `sfcc`
//! stateful compiler.
//!
//! Every pass reports whether it changed the IR; the pass manager
//! ([`manager::run_pipeline`]) records each execution as *active* or
//! *dormant* and consults a [`SkipOracle`] before running each pass — the
//! hook through which the stateful compiler (crate `sfcc`) bypasses passes
//! that were dormant in previous builds, reproducing the mechanism of
//! *"Enabling Fine-Grained Incremental Builds by Making Compiler Stateful"*
//! (CGO 2024).
//!
//! # Examples
//!
//! ```
//! use sfcc_passes::{default_pipeline, manager::{run_pipeline, NeverSkip, RunOptions}};
//!
//! let f = sfcc_ir::parse_function(r"
//! fn @f(i64) -> i64 {
//! bb0:
//!   v0 = mul i64 p0, 1
//!   v1 = add i64 v0, 0
//!   ret v1
//! }
//! ").unwrap();
//! let mut module = sfcc_ir::Module::new("demo");
//! module.add_function(f);
//!
//! let pipeline = default_pipeline();
//! let trace = run_pipeline(&mut module, &pipeline, &NeverSkip, RunOptions::default());
//! let (active, dormant, skipped) = trace.outcome_totals();
//! assert!(active >= 1);      // instcombine fired
//! assert!(dormant > active); // most passes had nothing to do
//! assert_eq!(skipped, 0);    // baseline never skips
//! ```

pub(crate) mod batch;
pub mod constfold;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod dse;
pub mod gvn;
pub mod inline;
pub mod instcombine;
pub mod licm;
pub mod loop_delete;
pub mod loop_unroll;
pub mod manager;
pub mod mem2reg;
pub mod memfwd;
pub mod parallel;
pub mod peephole;
pub mod reassociate;
pub mod sccp;
pub mod simplify_cfg;
pub mod snapstats;
pub mod util;

use sfcc_ir::{Function, ModuleSnapshot};

pub use manager::{
    run_pipeline, FunctionTrace, NeverSkip, PassOutcome, PassQuery, PassRecord, Pipeline,
    PipelineTrace, RunOptions, SkipOracle,
};
pub use parallel::run_pipeline_parallel;
pub use snapstats::{snapshot_stats, SnapshotStats};

/// A function transformation.
///
/// `run` returns `true` when the IR was modified (the pass was *active*) and
/// `false` when it had nothing to do (the pass was *dormant*) — the signal
/// at the core of the stateful compiler's skipping machinery.
///
/// `snapshot` is a read-only, copy-on-write view of the whole module taken
/// at the start of the enclosing pipeline stage
/// ([`sfcc_ir::ModuleSnapshot`]); only the inliner uses it.
pub trait Pass: Send + Sync {
    /// Stable pass name used in traces and dormancy records.
    fn name(&self) -> &'static str;

    /// Transforms `func`; returns whether anything changed.
    fn run(&self, func: &mut Function, snapshot: &ModuleSnapshot) -> bool;
}

/// Names of every pass in [`default_pipeline`], in slot order.
pub fn default_pipeline_slots() -> Vec<&'static str> {
    default_pipeline().slot_names().to_vec()
}

/// The standard `-O2`-style pipeline used throughout the evaluation.
///
/// Stage layout mirrors a classic middle end: SSA construction and early
/// cleanup, inlining against a fresh module snapshot, scalar optimizations,
/// loop optimizations, and late cleanup.
pub fn default_pipeline() -> Pipeline {
    Pipeline::new()
        // Early: SSA construction + first cleanup.
        .stage(
            false,
            vec![
                Box::new(mem2reg::Mem2Reg),
                Box::new(simplify_cfg::SimplifyCfg),
                Box::new(instcombine::InstCombine),
                Box::new(constfold::ConstFold),
                Box::new(dce::Dce),
            ],
        )
        // Inlining observes all functions after early cleanup.
        .stage(
            true,
            vec![
                Box::new(inline::Inline),
                Box::new(simplify_cfg::SimplifyCfg),
            ],
        )
        // Scalar optimizations.
        .stage(
            false,
            vec![
                Box::new(sccp::Sccp),
                Box::new(simplify_cfg::SimplifyCfg),
                Box::new(instcombine::InstCombine),
                Box::new(reassociate::Reassociate),
                Box::new(gvn::Gvn),
                Box::new(cse::Cse),
                Box::new(memfwd::MemFwd),
                Box::new(dse::Dse),
                Box::new(copyprop::CopyProp),
                Box::new(dce::Dce),
            ],
        )
        // Loop optimizations.
        .stage(
            false,
            vec![
                Box::new(licm::Licm),
                Box::new(loop_unroll::LoopUnroll),
                Box::new(loop_delete::LoopDelete),
                Box::new(simplify_cfg::SimplifyCfg),
            ],
        )
        // Late cleanup.
        .stage(
            false,
            vec![
                Box::new(constfold::ConstFold),
                Box::new(instcombine::InstCombine),
                Box::new(dce::Dce),
                Box::new(dce::Adce),
                Box::new(peephole::Peephole),
                Box::new(simplify_cfg::SimplifyCfg),
                Box::new(dce::Dce),
            ],
        )
}

/// A minimal `-O0`-style pipeline: SSA construction plus one CFG cleanup.
pub fn minimal_pipeline() -> Pipeline {
    Pipeline::new().stage(
        false,
        vec![
            Box::new(mem2reg::Mem2Reg),
            Box::new(simplify_cfg::SimplifyCfg),
        ],
    )
}

/// A `-O1`-style pipeline: scalar optimizations only — no inlining, no loop
/// transforms — for fast debug-friendly builds.
pub fn scalar_pipeline() -> Pipeline {
    Pipeline::new().stage(
        false,
        vec![
            Box::new(mem2reg::Mem2Reg),
            Box::new(simplify_cfg::SimplifyCfg),
            Box::new(instcombine::InstCombine),
            Box::new(constfold::ConstFold),
            Box::new(sccp::Sccp),
            Box::new(simplify_cfg::SimplifyCfg),
            Box::new(gvn::Gvn),
            Box::new(memfwd::MemFwd),
            Box::new(copyprop::CopyProp),
            Box::new(dce::Dce),
        ],
    )
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use manager::{run_pipeline, NeverSkip, RunOptions};
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv};
    use sfcc_ir::Module;

    fn optimize(src: &str) -> (Module, PipelineTrace) {
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src, &ModuleEnv::new(), &mut d).expect("valid program");
        let mut module = sfcc_ir::lower_module(&checked, &ModuleEnv::new());
        sfcc_ir::verify_module(&module).unwrap();
        let pipeline = default_pipeline();
        let trace = run_pipeline(
            &mut module,
            &pipeline,
            &NeverSkip,
            RunOptions { verify_each: true },
        );
        sfcc_ir::verify_module(&module).unwrap();
        (module, trace)
    }

    #[test]
    fn pipeline_has_many_slots() {
        let p = default_pipeline();
        assert!(p.slot_count() >= 20, "{:?}", p.slot_names());
    }

    #[test]
    fn optimizes_constant_program_to_return() {
        let (m, _) = optimize(
            "fn f() -> int { let s: int = 0; for (let i: int = 0; i < 5; i = i + 1) { s = s + i; } return s; }",
        );
        let text = m.to_string();
        assert!(text.contains("ret 10"), "{text}");
        assert!(!text.contains("phi"), "{text}");
    }

    #[test]
    fn inline_plus_constants_collapse() {
        let (m, _) = optimize(
            "fn sq(x: int) -> int { return x * x; }\nfn f() -> int { return sq(4) + sq(3); }",
        );
        let text = m.function("f").unwrap().to_string();
        assert!(text.contains("ret 25"), "{text}");
    }

    #[test]
    fn trace_shape_matches_pipeline() {
        let (_, trace) = optimize("fn f(a: int) -> int { return a + 1; }");
        let f = trace.function("f").unwrap();
        assert_eq!(f.records.len(), default_pipeline().slot_count());
        // Slots must be strictly increasing.
        for (i, r) in f.records.iter().enumerate() {
            assert_eq!(r.slot, i);
        }
    }

    #[test]
    fn most_passes_dormant_on_simple_functions() {
        let (_, trace) = optimize("fn f(a: int, b: int) -> int { return a * b + a; }");
        let f = trace.function("f").unwrap();
        let active = f.count(PassOutcome::Active);
        let dormant = f.count(PassOutcome::Dormant);
        assert!(dormant > active * 2, "active={active} dormant={dormant}");
    }

    #[test]
    fn exit_fingerprint_differs_from_entry_when_optimized() {
        let (_, trace) = optimize("fn f(a: int) -> int { let x: int = a * 1; return x + 0; }");
        let f = trace.function("f").unwrap();
        assert_ne!(f.entry_fingerprint, f.exit_fingerprint);
    }

    #[test]
    fn complex_program_survives_full_pipeline() {
        let (m, _) = optimize(
            "
const LIMIT: int = 100;
fn helper(x: int, y: int) -> int {
    if (x > y) { return x - y; }
    return y - x;
}
fn weight(v: int) -> int {
    let w: int = v;
    if (w < 0) { w = -w; }
    if (w > LIMIT) { w = LIMIT; }
    return w;
}
fn f(n: int) -> int {
    let acc: int = 0;
    let hist: [int; 16];
    for (let i: int = 0; i < 16; i = i + 1) {
        hist[i] = 0;
    }
    for (let i: int = 0; i < n; i = i + 1) {
        let h: int = helper(i, n - i);
        let w: int = weight(h);
        hist[w % 16] = hist[w % 16] + 1;
        acc = acc + w * 3;
    }
    let best: int = 0;
    for (let i: int = 0; i < 16; i = i + 1) {
        if (hist[i] > best) { best = hist[i]; }
    }
    return acc + best;
}",
        );
        let text = m.to_string();
        assert!(text.contains("fn @f"), "{text}");
    }

    #[test]
    fn minimal_pipeline_promotes_memory() {
        let mut d = Diagnostics::new();
        let checked = parse_and_check(
            "m",
            "fn f(a: int) -> int { let x: int = a + 2; return x; }",
            &ModuleEnv::new(),
            &mut d,
        )
        .unwrap();
        let mut module = sfcc_ir::lower_module(&checked, &ModuleEnv::new());
        run_pipeline(
            &mut module,
            &minimal_pipeline(),
            &NeverSkip,
            RunOptions { verify_each: true },
        );
        let text = module.to_string();
        assert!(!text.contains("alloca"), "{text}");
    }

    #[test]
    fn pipeline_converges_on_reruns() {
        // Running the pipeline again on its own output must strictly reduce
        // activity, and a third run must not regress past the second — the
        // pipeline is (weakly) converging, which the dormancy mechanism
        // depends on: optimized-and-unchanged code looks dormant.
        let mut d = Diagnostics::new();
        let checked = parse_and_check(
            "m",
            "
fn helper(x: int, y: int) -> int {
    let t: int = x * 2 + y * 2;
    if (t > 100) { return t - 100; }
    return t;
}
fn f(n: int) -> int {
    let acc: int = 0;
    for (let i: int = 0; i < n; i = i + 1) {
        acc = acc + helper(i, n - i);
    }
    return acc;
}",
            &ModuleEnv::new(),
            &mut d,
        )
        .expect("valid program");
        let mut module = sfcc_ir::lower_module(&checked, &ModuleEnv::new());
        let pipeline = default_pipeline();
        let opts = RunOptions { verify_each: true };
        let first = run_pipeline(&mut module, &pipeline, &NeverSkip, opts)
            .outcome_totals()
            .0;
        let second = run_pipeline(&mut module, &pipeline, &NeverSkip, opts)
            .outcome_totals()
            .0;
        let third = run_pipeline(&mut module, &pipeline, &NeverSkip, opts)
            .outcome_totals()
            .0;
        assert!(
            second < first,
            "second run should be quieter: {second} vs {first}"
        );
        assert!(
            third <= second,
            "third run must not regress: {third} vs {second}"
        );
    }
}
