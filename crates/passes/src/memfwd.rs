//! Store-to-load forwarding within basic blocks.
//!
//! Tracks the most recent store per block; a load through the *same* address
//! value with no intervening call or conflicting store is replaced by the
//! stored value. Deliberately conservative (no alias analysis): any store to
//! a different address value or any call invalidates the tracked state.
//! Catches array accesses that `mem2reg` cannot promote, once `cse`/`gvn`
//! have unified identical `gep`s.

use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{Function, InstId, ModuleSnapshot, Op, ValueRef};
use std::collections::HashMap;

/// The `memfwd` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemFwd;

impl Pass for MemFwd {
    fn name(&self) -> &'static str {
        "memfwd"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
        let mut dead: Vec<InstId> = Vec::new();
        for b in func.block_ids().collect::<Vec<_>>() {
            // Last known (address → value) fact; at most one is tracked.
            let mut known: Option<(ValueRef, ValueRef)> = None;
            for &iid in &func.block(b).insts {
                let inst = func.inst(iid);
                match &inst.op {
                    Op::Store => {
                        known = Some((inst.args[0], inst.args[1]));
                    }
                    Op::Load => {
                        if let Some((addr, value)) = known {
                            if addr == inst.args[0] && func.value_ty(value) == inst.ty {
                                map.insert(ValueRef::Inst(iid), value);
                                dead.push(iid);
                                continue;
                            }
                        }
                        // The loaded value becomes the new known fact: a
                        // second identical load forwards from the first.
                        known = Some((inst.args[0], ValueRef::Inst(iid)));
                    }
                    Op::Call(_) => {
                        // Calls may write memory (another function's slots
                        // are unreachable here, but stay conservative).
                        known = None;
                    }
                    _ => {}
                }
            }
        }
        if map.is_empty() {
            return false;
        }
        func.replace_uses(&map);
        detach_all(func, &dead);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = MemFwd.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn forwards_store_to_load() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = alloca 4\n  v1 = gep v0, 2\n  store v1, p0\n  v2 = load i64 v1\n  ret v2\n}",
        );
        assert!(c);
        assert!(text.contains("ret p0"), "{text}");
    }

    #[test]
    fn intervening_store_blocks_forwarding() {
        let (c, text) = run(
            "fn @f(i64, i64) -> i64 {\nbb0:\n  v0 = alloca 4\n  v1 = gep v0, 0\n  v2 = gep v0, p1\n  store v1, p0\n  store v2, 9\n  v3 = load i64 v1\n  ret v3\n}",
        );
        assert!(!c);
        assert!(text.contains("load"), "{text}");
    }

    #[test]
    fn call_invalidates() {
        let (c, _) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = alloca 1\n  store v0, p0\n  call @print(p0)\n  v1 = load i64 v0\n  ret v1\n}",
        );
        assert!(!c);
    }

    #[test]
    fn load_to_load_forwarding() {
        let (c, text) = run(
            "fn @f() -> i64 {\nbb0:\n  v0 = alloca 1\n  v1 = load i64 v0\n  v2 = load i64 v0\n  v3 = add i64 v1, v2\n  ret v3\n}",
        );
        assert!(c);
        assert_eq!(text.matches("load").count(), 1, "{text}");
    }

    #[test]
    fn does_not_cross_blocks() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  v0 = alloca 1
  store v0, p0
  br bb1
bb1:
  v1 = load i64 v0
  ret v1
}");
        assert!(!c);
    }
}
