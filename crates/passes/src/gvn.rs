//! Dominator-scoped global value numbering.
//!
//! Walks the dominator tree keeping a scoped table of available pure
//! expressions; an instruction whose key is already available in a
//! dominating block is replaced by the earlier result. Subsumes local CSE
//! across block boundaries.

use crate::cse::expr_key;
use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{BlockId, DomTree, Function, InstId, ModuleSnapshot, ValueRef, ENTRY};
use std::collections::HashMap;

/// The `gvn` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gvn;

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let dom = DomTree::compute(func);
            let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
            let mut dead: Vec<InstId> = Vec::new();

            // Preorder DFS over the dominator tree with scope restoration.
            enum Step {
                Enter(BlockId),
                Exit(Vec<(String, Vec<ValueRef>)>),
            }
            let mut table: HashMap<(String, Vec<ValueRef>), InstId> = HashMap::new();
            let mut agenda = vec![Step::Enter(ENTRY)];
            while let Some(step) = agenda.pop() {
                match step {
                    Step::Exit(keys) => {
                        for k in keys {
                            table.remove(&k);
                        }
                    }
                    Step::Enter(b) => {
                        let mut added = Vec::new();
                        for &iid in &func.block(b).insts {
                            let inst = func.inst(iid);
                            let Some(key) = expr_key(&inst.op, &inst.args) else {
                                continue;
                            };
                            match table.get(&key) {
                                Some(&prev) => {
                                    map.insert(ValueRef::Inst(iid), ValueRef::Inst(prev));
                                    dead.push(iid);
                                }
                                None => {
                                    table.insert(key.clone(), iid);
                                    added.push(key);
                                }
                            }
                        }
                        agenda.push(Step::Exit(added));
                        for &child in dom.children(b) {
                            agenda.push(Step::Enter(child));
                        }
                    }
                }
            }

            if map.is_empty() {
                return changed;
            }
            func.replace_uses(&map);
            detach_all(func, &dead);
            changed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Gvn.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn merges_across_dominating_blocks() {
        let (c, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  v0 = add i64 p0, 1
  br bb1
bb1:
  v1 = add i64 p0, 1
  v2 = add i64 v0, v1
  ret v2
}");
        assert!(c);
        assert_eq!(text.matches("add i64 p0, 1").count(), 1, "{text}");
    }

    #[test]
    fn sibling_branches_not_merged() {
        // The same expression in two non-dominating branches must stay.
        let (c, _) = run(r"
fn @f(i1, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  v0 = add i64 p1, 1
  br bb3
bb2:
  v1 = add i64 p1, 1
  br bb3
bb3:
  v2 = phi i64 [bb1: v0], [bb2: v1]
  ret v2
}");
        assert!(!c);
    }

    #[test]
    fn branch_reuses_dominating_value() {
        let (c, text) = run(r"
fn @f(i1, i64) -> i64 {
bb0:
  v0 = mul i64 p1, 3
  condbr p0, bb1, bb2
bb1:
  v1 = mul i64 p1, 3
  ret v1
bb2:
  ret v0
}");
        assert!(c);
        assert_eq!(text.matches("mul").count(), 1, "{text}");
    }

    #[test]
    fn loop_body_reuses_header_value() {
        let (c, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = mul i64 p0, 5
  v3 = icmp slt v0, v2
  condbr v3, bb2, bb3
bb2:
  v4 = mul i64 p0, 5
  v1 = add i64 v0, v4
  br bb1
bb3:
  ret v0
}");
        assert!(c);
        assert_eq!(text.matches("mul").count(), 1, "{text}");
    }

    #[test]
    fn dormant_without_redundancy() {
        let (c, _) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  v1 = mul i64 v0, 2\n  ret v1\n}",
        );
        assert!(!c);
    }
}
