//! Dead-code elimination passes.
//!
//! [`Dce`] removes instructions whose results are unused, iterating until a
//! fixpoint. [`Adce`] is the aggressive variant: it assumes everything is
//! dead and only keeps what is transitively reachable from *roots* (side
//! effects and terminator operands), which also collects dead cycles such as
//! unused induction-variable phis.

use crate::util::{detach_all, is_removable_when_dead, use_counts};
use crate::Pass;
use sfcc_ir::{Function, InstId, ModuleSnapshot, ValueRef};
use std::collections::HashSet;

/// Trivial dead-code elimination. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let counts = use_counts(func);
            let dead: Vec<InstId> = func
                .iter_insts()
                .map(|(_, i)| i)
                .filter(|&i| {
                    counts.get(&i).copied().unwrap_or(0) == 0
                        && is_removable_when_dead(&func.inst(i).op)
                })
                .collect();
            if dead.is_empty() {
                return changed;
            }
            detach_all(func, &dead);
            changed = true;
        }
    }
}

/// Aggressive dead-code elimination. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adce;

impl Pass for Adce {
    fn name(&self) -> &'static str {
        "adce"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        // Roots: side-effecting instructions and terminator operands.
        let mut live: HashSet<InstId> = HashSet::new();
        let mut work: Vec<InstId> = Vec::new();
        let mark = |v: ValueRef, live: &mut HashSet<InstId>, work: &mut Vec<InstId>| {
            if let ValueRef::Inst(i) = v {
                if live.insert(i) {
                    work.push(i);
                }
            }
        };
        for (_, iid) in func.iter_insts() {
            if func.inst(iid).op.has_side_effects() {
                mark(ValueRef::Inst(iid), &mut live, &mut work);
            }
        }
        for b in func.block_ids() {
            for v in func.block(b).term.args() {
                mark(v, &mut live, &mut work);
            }
        }
        while let Some(i) = work.pop() {
            for &arg in &func.inst(i).args.clone() {
                mark(arg, &mut live, &mut work);
            }
        }
        let dead: Vec<InstId> = func
            .iter_insts()
            .map(|(_, i)| i)
            .filter(|i| !live.contains(i))
            .collect();
        // Stores and calls are always live (they are roots), so everything in
        // `dead` is safely removable; still assert in debug builds.
        debug_assert!(dead.iter().all(|&i| !func.inst(i).op.has_side_effects()));
        detach_all(func, &dead) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run_pass(pass: &dyn Pass, text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = pass.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn dce_removes_unused_chain() {
        let (changed, text) = run_pass(
            &Dce,
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  v1 = mul i64 v0, 2\n  ret p0\n}",
        );
        assert!(changed);
        assert!(!text.contains("add") && !text.contains("mul"), "{text}");
    }

    #[test]
    fn dce_keeps_side_effects() {
        let (changed, text) = run_pass(
            &Dce,
            "fn @f(i64) {\nbb0:\n  v0 = alloca 1\n  store v0, p0\n  call @print(p0)\n  ret\n}",
        );
        assert!(!changed);
        assert!(text.contains("store") && text.contains("call"), "{text}");
    }

    #[test]
    fn dce_removes_dead_trapping_ops() {
        // Dead sdiv (potentially trapping) is removable — UB semantics.
        let (changed, text) = run_pass(
            &Dce,
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = sdiv i64 1, p0\n  ret p0\n}",
        );
        assert!(changed);
        assert!(!text.contains("sdiv"), "{text}");
    }

    #[test]
    fn dce_dormant_when_all_used() {
        let (changed, _) = run_pass(
            &Dce,
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  ret v0\n}",
        );
        assert!(!changed);
    }

    #[test]
    fn adce_removes_dead_phi_cycle() {
        // A dead induction variable: v0/v1 feed only each other.
        let (changed, text) = run_pass(
            &Adce,
            r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v3 = phi i64 [bb0: 0], [bb2: v4]
  v5 = icmp slt v3, p0
  condbr v5, bb2, bb3
bb2:
  v1 = add i64 v0, 7
  v4 = add i64 v3, 1
  br bb1
bb3:
  ret v3
}",
        );
        assert!(changed);
        assert!(!text.contains("7"), "dead cycle should be gone: {text}");
        assert!(text.contains("v"), "{text}");
    }

    #[test]
    fn adce_keeps_live_computation() {
        let (changed, _) = run_pass(
            &Adce,
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 1\n  ret v0\n}",
        );
        assert!(!changed);
    }

    #[test]
    fn adce_keeps_call_arguments() {
        let (changed, text) = run_pass(
            &Adce,
            "fn @f(i64) {\nbb0:\n  v0 = mul i64 p0, 3\n  call @print(v0)\n  ret\n}",
        );
        assert!(!changed);
        assert!(text.contains("mul"), "{text}");
    }
}
