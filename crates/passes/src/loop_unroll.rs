//! Full unrolling of small constant-trip-count loops.
//!
//! Recognizes the canonical shape produced by lowering + `simplify-cfg` +
//! `mem2reg`:
//!
//! ```text
//! preheader: ... br header
//! header:    i  = phi [preheader: C0], [latch: next]
//!            …other phis…
//!            cond = icmp pred i, K        ; K constant
//!            condbr cond, latch|exit, exit|latch
//! latch:     ... next = add i, STEP ...   ; STEP constant
//!            br header
//! exit:      ...
//! ```
//!
//! When the trip count is a compile-time constant within budget, the loop is
//! replaced by a straight-line chain of cloned iterations. Cross-iteration
//! data flows only through the header phis (guaranteed by SSA dominance), so
//! cloning one iteration at a time with a phi-value environment is sound.

use crate::Pass;
use sfcc_ir::{
    BinKind, BlockId, DomTree, Function, IcmpPred, InstData, InstId, LoopForest, ModuleSnapshot,
    Op, Predecessors, Terminator, ValueRef,
};
use std::collections::HashMap;

/// Maximum trip count eligible for full unrolling.
pub const MAX_TRIPS: i64 = 8;
/// Maximum instructions in header + latch eligible for unrolling.
pub const MAX_BODY_INSTS: usize = 24;

/// The `loop-unroll` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopUnroll;

impl Pass for LoopUnroll {
    fn name(&self) -> &'static str {
        "loop-unroll"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        // Unroll one loop per analysis round (the CFG changes underneath).
        loop {
            if !unroll_one(func) {
                return changed;
            }
            changed = true;
        }
    }
}

/// A matched unrollable loop.
struct Candidate {
    preheader: BlockId,
    header: BlockId,
    latch: BlockId,
    exit: BlockId,
    /// Header phis: `(phi id, init from preheader, next from latch)`.
    phis: Vec<(InstId, ValueRef, ValueRef)>,
    trips: i64,
}

fn unroll_one(func: &mut Function) -> bool {
    let Some(cand) = find_candidate(func) else {
        return false;
    };
    apply(func, cand);
    true
}

fn find_candidate(func: &Function) -> Option<Candidate> {
    let dom = DomTree::compute(func);
    let preds = Predecessors::compute(func);
    let forest = LoopForest::compute(func, &dom);

    'outer: for l in &forest.loops {
        if l.blocks.len() != 2 {
            continue;
        }
        let header = l.header;
        let latch = l.latch(&preds)?;
        if latch == header || !l.contains(latch) {
            continue;
        }
        let preheader = l.preheader(func, &preds)?;
        // Latch must branch straight back to the header.
        if func.block(latch).term != Terminator::Br(header) {
            continue;
        }
        // Header exits with a two-way branch: one edge into the latch, one out.
        let Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = func.block(header).term
        else {
            continue;
        };
        let (exit, exit_on_true) = if then_bb == latch && !l.contains(else_bb) {
            (else_bb, false)
        } else if else_bb == latch && !l.contains(then_bb) {
            (then_bb, true)
        } else {
            continue;
        };

        if func.block(header).insts.len() + func.block(latch).insts.len() > MAX_BODY_INSTS {
            continue;
        }

        // Collect header phis; everything else in the header must be pure
        // (it will be re-evaluated once more for the final exit check).
        let mut phis: Vec<(InstId, ValueRef, ValueRef)> = Vec::new();
        for &iid in &func.block(header).insts {
            let inst = func.inst(iid);
            match &inst.op {
                Op::Phi(blocks) => {
                    if blocks.len() != 2 {
                        continue 'outer;
                    }
                    let mut init = None;
                    let mut next = None;
                    for (pb, v) in blocks.iter().zip(&inst.args) {
                        if *pb == preheader {
                            init = Some(*v);
                        } else if *pb == latch {
                            next = Some(*v);
                        }
                    }
                    let (Some(init), Some(next)) = (init, next) else {
                        continue 'outer;
                    };
                    phis.push((iid, init, next));
                }
                op if op.has_side_effects() || op.can_trap() => continue 'outer,
                _ => {}
            }
        }

        // The branch condition must be `icmp pred, iv, K`.
        let ValueRef::Inst(cond_id) = cond else {
            continue;
        };
        let cond_inst = func.inst(cond_id);
        let Op::Icmp(pred) = cond_inst.op else {
            continue;
        };
        let Some((_, bound)) = cond_inst.args[1].as_const() else {
            continue;
        };
        let iv = cond_inst.args[0];
        let Some(&(_, init, next)) = phis.iter().find(|(p, _, _)| ValueRef::Inst(*p) == iv) else {
            continue;
        };
        let Some((_, start)) = init.as_const() else {
            continue;
        };
        // `next` must be `add iv, STEP` with constant step.
        let ValueRef::Inst(next_id) = next else {
            continue;
        };
        let next_inst = func.inst(next_id);
        if next_inst.op != Op::Bin(BinKind::Add) || next_inst.args[0] != iv {
            continue;
        }
        let Some((_, step)) = next_inst.args[1].as_const() else {
            continue;
        };

        let trips = simulate(pred, start, step, bound, exit_on_true)?;
        return Some(Candidate {
            preheader,
            header,
            latch,
            exit,
            phis,
            trips,
        });
    }
    None
}

/// Simulates the induction variable to a constant trip count, or `None` when
/// it exceeds [`MAX_TRIPS`].
fn simulate(pred: IcmpPred, start: i64, step: i64, bound: i64, exit_on_true: bool) -> Option<i64> {
    let mut i = start;
    let mut trips = 0i64;
    loop {
        let stay = pred.eval(i, bound) != exit_on_true;
        if !stay {
            return Some(trips);
        }
        trips += 1;
        if trips > MAX_TRIPS {
            return None;
        }
        i = i.wrapping_add(step);
    }
}

fn apply(func: &mut Function, cand: Candidate) {
    let header_insts: Vec<InstId> = func.block(cand.header).insts.clone();
    let latch_insts: Vec<InstId> = func.block(cand.latch).insts.clone();

    // Environment: current value of each phi.
    let mut cur: HashMap<InstId, ValueRef> =
        cand.phis.iter().map(|&(p, init, _)| (p, init)).collect();

    // Global replacements applied at the end: original header values → their
    // final-evaluation clones (for uses in/after the exit block).
    let mut final_map: HashMap<ValueRef, ValueRef> = HashMap::new();

    let mut chain_start: Option<BlockId> = None;
    let mut prev_block: Option<BlockId> = None;

    let clone_insts = |func: &mut Function,
                       into: BlockId,
                       insts: &[InstId],
                       cur: &HashMap<InstId, ValueRef>,
                       iter_map: &mut HashMap<InstId, ValueRef>| {
        for &iid in insts {
            if cur.contains_key(&iid) {
                continue; // phis are the environment, not cloned
            }
            let data = func.inst(iid).clone();
            let mapped_args: Vec<ValueRef> = data
                .args
                .iter()
                .map(|&a| match a {
                    ValueRef::Inst(d) => cur
                        .get(&d)
                        .copied()
                        .or_else(|| iter_map.get(&d).copied())
                        .unwrap_or(a),
                    other => other,
                })
                .collect();
            let clone = func.append_inst(into, InstData::new(data.op, mapped_args, data.ty));
            iter_map.insert(iid, ValueRef::Inst(clone));
        }
    };

    for _ in 0..cand.trips {
        let block = func.add_block();
        if chain_start.is_none() {
            chain_start = Some(block);
        }
        if let Some(prev) = prev_block {
            func.block_mut(prev).term = Terminator::Br(block);
        }
        let mut iter_map: HashMap<InstId, ValueRef> = HashMap::new();
        clone_insts(func, block, &header_insts, &cur, &mut iter_map);
        clone_insts(func, block, &latch_insts, &cur, &mut iter_map);
        // Advance the phi environment.
        let mut next_cur = HashMap::new();
        for &(p, _, next) in &cand.phis {
            let v = match next {
                ValueRef::Inst(d) => cur
                    .get(&d)
                    .copied()
                    .or_else(|| iter_map.get(&d).copied())
                    .unwrap_or(next),
                other => other,
            };
            next_cur.insert(p, v);
        }
        cur = next_cur;
        prev_block = Some(block);
    }

    // Final evaluation of the header (the iteration that takes the exit).
    let final_block = func.add_block();
    if chain_start.is_none() {
        chain_start = Some(final_block);
    }
    if let Some(prev) = prev_block {
        func.block_mut(prev).term = Terminator::Br(final_block);
    }
    let mut final_iter: HashMap<InstId, ValueRef> = HashMap::new();
    clone_insts(func, final_block, &header_insts, &cur, &mut final_iter);
    func.block_mut(final_block).term = Terminator::Br(cand.exit);

    for (&orig, &clone) in &final_iter {
        final_map.insert(ValueRef::Inst(orig), clone);
    }
    for (&phi, &val) in &cur {
        final_map.insert(ValueRef::Inst(phi), val);
    }

    // Rewire: preheader enters the chain; exit phis now come from the final
    // block with final values.
    func.block_mut(cand.preheader).term =
        Terminator::Br(chain_start.expect("at least the final block"));
    for iid in func.block(cand.exit).insts.clone() {
        let inst = func.inst_mut(iid);
        if let Op::Phi(blocks) = &mut inst.op {
            for pb in blocks.iter_mut() {
                if *pb == cand.header {
                    *pb = final_block;
                }
            }
        }
    }

    // Redirect remaining uses of the original loop's values (exit-block phi
    // inputs and anything dominated by the exit).
    func.replace_uses(&final_map);

    // Turn the old loop blocks into unreachable husks; nothing references
    // them after the rewiring above.
    for b in [cand.header, cand.latch] {
        let block = func.block_mut(b);
        block.insts.clear();
        block.term = Terminator::Trap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constfold::ConstFold;
    use crate::simplify_cfg::SimplifyCfg;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = LoopUnroll.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        SimplifyCfg.run(&mut f, &ModuleSnapshot::empty("t"));
        ConstFold.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    const SUM_0_TO_3: &str = r"
fn @f() -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v5 = phi i64 [bb0: 0], [bb2: v6]
  v2 = icmp slt v0, 4
  condbr v2, bb2, bb3
bb2:
  v6 = add i64 v5, v0
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret v5
}";

    #[test]
    fn unrolls_and_folds_constant_sum() {
        let (c, text) = run(SUM_0_TO_3);
        assert!(c);
        // 0+1+2+3 = 6, fully folded.
        assert!(text.contains("ret 6"), "{text}");
        assert!(!text.contains("phi"), "{text}");
        assert!(!text.contains("condbr"), "{text}");
    }

    #[test]
    fn zero_trip_loop_unrolls_to_fallthrough() {
        let (c, text) = run(r"
fn @f() -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 5], [bb2: v1]
  v2 = icmp slt v0, 3
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret v0
}");
        assert!(c);
        assert!(text.contains("ret 5"), "{text}");
    }

    #[test]
    fn large_trip_count_not_unrolled() {
        let (c, _) = run(r"
fn @f() -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, 1000
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret v0
}");
        assert!(!c);
    }

    #[test]
    fn dynamic_bound_not_unrolled() {
        let (c, _) = run(r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, p0
  condbr v2, bb2, bb3
bb3:
  ret v0
bb2:
  v1 = add i64 v0, 1
  br bb1
}");
        assert!(!c);
    }

    #[test]
    fn unrolled_side_effects_stay_in_order() {
        let (c, text) = run(r"
fn @f() {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, 3
  condbr v2, bb2, bb3
bb2:
  call @print(v0)
  v1 = add i64 v0, 1
  br bb1
bb3:
  ret
}");
        assert!(c);
        // Three print calls with the concrete induction values.
        assert_eq!(text.matches("call @print").count(), 3, "{text}");
        assert!(text.contains("call @print(0)"), "{text}");
        assert!(text.contains("call @print(2)"), "{text}");
    }

    #[test]
    fn exit_uses_of_header_values_resolve() {
        // `ret v0` in the exit uses the induction variable after the loop.
        let (c, text) = run(r"
fn @f() -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 0], [bb2: v1]
  v2 = icmp slt v0, 4
  condbr v2, bb2, bb3
bb2:
  v1 = add i64 v0, 2
  br bb1
bb3:
  ret v0
}");
        assert!(c);
        assert!(text.contains("ret 4"), "{text}");
    }

    #[test]
    fn negative_step_downward_loop() {
        let (c, text) = run(r"
fn @f() -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: 5], [bb2: v1]
  v5 = phi i64 [bb0: 0], [bb2: v6]
  v2 = icmp sgt v0, 0
  condbr v2, bb2, bb3
bb2:
  v6 = add i64 v5, v0
  v1 = add i64 v0, -1
  br bb1
bb3:
  ret v5
}");
        assert!(c);
        // 5+4+3+2+1 = 15
        assert!(text.contains("ret 15"), "{text}");
    }
}
