//! Function-parallel pipeline execution on a shared work-stealing pool.
//!
//! [`run_pipeline_parallel`] produces output that is byte-identical to the
//! sequential [`run_pipeline`](crate::run_pipeline) for the same inputs:
//!
//! * Within a stage, passes read callee bodies only from the immutable
//!   pre-stage snapshot (the same rule the sequential runner enforces), so
//!   functions of one stage are mutually independent and can run in any
//!   order — including concurrently.
//! * Stage boundaries are barriers: a stage's tasks all finish before the
//!   next stage (and any re-snapshot) begins, exactly mirroring the
//!   sequential stage loop.
//! * Per-function [`FunctionTrace`]s are assembled in module definition
//!   order regardless of completion order, so the merged
//!   [`PipelineTrace`] — and everything derived from it (dormancy state,
//!   emitted IR, bytecode images) — does not depend on scheduling.
//!
//! Fan-out is *batched*: each stage's functions are pre-bucketed into
//! cost-balanced batches ([`crate::batch::plan_batches`], largest
//! live-instruction cost first into the least-loaded bin) and one pool task
//! runs per batch, so tiny functions share a task's fixed cost instead of
//! each paying it. Batches are serviced largest-total-cost-first. The plan
//! depends only on costs and roster order — never on the worker count — so
//! batch composition and counters are identical for every `--jobs` value.
//!
//! Snapshots are copy-on-write: a re-snapshot deep-clones only functions
//! some pass changed since the previous snapshot and reuses the previous
//! `Arc` for the rest, using the same dirty-bit rule as the sequential
//! runner — so snapshot counters, like everything else, stay byte-identical.
//!
//! The oracle must be deterministic (a pure function of each query) for the
//! byte-identity guarantee to extend to recorded outcomes; every oracle in
//! this workspace satisfies that.

use std::sync::Arc;
use std::time::Instant;

use sfcc_ir::{fingerprint, verify_function, Fingerprint, Function, Module, ModuleSnapshot};
use sfcc_pool::{run_batched, PoolScope};

use crate::manager::{
    cow_snapshot, run_pipeline, FunctionTrace, PassOutcome, PassQuery, PassRecord, Pipeline,
    PipelineTrace, RunOptions, SkipOracle, Stage,
};

/// Per-function unit of work: the function body being optimized, its
/// accumulated trace, and the copy-on-write dirty bit (set when a pass
/// changes the function, cleared at each re-snapshot). Each task owns
/// exactly one cell for the duration of a stage, so no synchronization is
/// needed on the payload itself.
struct FnCell {
    func: Function,
    trace: FunctionTrace,
    dirty: bool,
}

/// Runs `pipeline` over every function of `module` with function-level
/// parallelism on `pool`, consulting `oracle` before each pass execution.
///
/// Falls back to the sequential [`run_pipeline`](crate::run_pipeline) when
/// the pool has no workers or the module has at most one function; the
/// result is identical either way (see the module docs for the argument).
///
/// # Panics
///
/// Panics if [`RunOptions::verify_each`] is set and a pass produces invalid
/// IR — that is a compiler bug, not an input error. A panic inside a worker
/// task is propagated to the caller.
pub fn run_pipeline_parallel<'env>(
    module: &mut Module,
    pipeline: &'env Pipeline,
    oracle: Arc<dyn SkipOracle + Send + Sync + 'env>,
    options: RunOptions,
    pool: &PoolScope<'env>,
) -> PipelineTrace {
    let stages = pipeline.stages();
    if !pool.is_parallel() || module.functions.len() <= 1 || stages.is_empty() {
        return run_pipeline(module, pipeline, oracle.as_ref(), options);
    }

    // Pre-stage snapshot: the inliner (and any other cross-function pass)
    // reads callee bodies from here, never from the cells being mutated.
    let mut cells: Vec<FnCell> = std::mem::take(&mut module.functions)
        .into_iter()
        .map(|func| FnCell {
            trace: FunctionTrace {
                function: func.name.clone(),
                entry_fingerprint: Fingerprint::default(),
                exit_fingerprint: Fingerprint::default(),
                records: Vec::new(),
            },
            func,
            dirty: false,
        })
        .collect();
    let mut snapshot_clones = 0u64;
    let mut snapshot_cost_units = 0u64;
    let mut snapshot_reused = 0u64;
    let mut batch_count = 0u64;
    let mut batch_max_cost = 0u64;
    let mut snapshot = {
        let funcs: Vec<&Function> = cells.iter().map(|c| &c.func).collect();
        let dirty = vec![false; cells.len()];
        let (snap, cost, reused) = cow_snapshot(&module.name, &funcs, &dirty, None);
        snapshot_clones += 1;
        snapshot_cost_units += cost;
        snapshot_reused += reused;
        Arc::new(snap)
    };

    let last_stage = stages.len() - 1;
    let mut slot_base = 0usize;
    for (si, stage) in stages.iter().enumerate() {
        if si > 0 && stage.resnapshot {
            // Rebuild the snapshot from the current (post-previous-stage)
            // function bodies: copy-on-write, so only functions some pass
            // actually changed are deep-cloned — the rest reuse the previous
            // snapshot's `Arc`s. Same dirty rule as the sequential runner.
            let funcs: Vec<&Function> = cells.iter().map(|c| &c.func).collect();
            let dirty: Vec<bool> = cells.iter().map(|c| c.dirty).collect();
            let (snap, cost, reused) = cow_snapshot(&module.name, &funcs, &dirty, Some(&snapshot));
            snapshot = Arc::new(snap);
            snapshot_clones += 1;
            snapshot_cost_units += cost;
            snapshot_reused += reused;
            for cell in &mut cells {
                cell.dirty = false;
            }
        }

        // Cost-balanced batches, largest-total-cost-first; one pool task per
        // batch. The plan depends only on costs and roster order — never the
        // worker count — so it matches the sequential runner's accounting.
        let costs: Vec<u64> = cells
            .iter()
            .map(|c| c.func.live_inst_count() as u64)
            .collect();
        let plan = crate::batch::plan_batches(&costs);
        batch_count += plan.batches.len() as u64;
        batch_max_cost = batch_max_cost.max(plan.max_cost);

        let stage_snapshot = Arc::clone(&snapshot);
        let stage_oracle = Arc::clone(&oracle);
        let first = si == 0;
        let last = si == last_stage;
        cells = run_batched(Some(pool), cells, &plan.batches, move |_, cell| {
            run_stage_on_function(
                cell,
                stage,
                slot_base,
                &stage_snapshot,
                stage_oracle.as_ref(),
                options,
                first,
                last,
            );
        });
        slot_base += stage.passes.len();
    }

    let mut functions = Vec::with_capacity(cells.len());
    let mut traces = Vec::with_capacity(cells.len());
    for cell in cells {
        functions.push(cell.func);
        traces.push(cell.trace);
    }
    module.functions = functions;
    PipelineTrace {
        module: module.name.clone(),
        functions: traces,
        snapshot_clones,
        snapshot_cost_units,
        snapshot_reused,
        batch_count,
        batch_max_cost,
    }
}

/// Runs one stage's passes over one function, recording into its trace.
/// This is the per-task body; it matches the sequential inner loop of
/// [`run_pipeline`] record-for-record.
#[allow(clippy::too_many_arguments)]
fn run_stage_on_function(
    cell: &mut FnCell,
    stage: &Stage,
    slot_base: usize,
    snapshot: &ModuleSnapshot,
    oracle: &dyn SkipOracle,
    options: RunOptions,
    first_stage: bool,
    last_stage: bool,
) {
    if first_stage {
        cell.trace.entry_fingerprint = fingerprint(&cell.func);
    }
    for (pass_idx, pass) in stage.passes.iter().enumerate() {
        let slot = slot_base + pass_idx;
        let query = PassQuery {
            module: &snapshot.name,
            function: &cell.trace.function,
            entry_fingerprint: cell.trace.entry_fingerprint,
            pass: pass.name(),
            slot,
        };
        if oracle.should_skip(&query) {
            cell.trace.records.push(PassRecord {
                pass: pass.name().to_string(),
                slot,
                outcome: PassOutcome::Skipped,
                nanos: 0,
                cost_units: cell.func.live_inst_count() as u64,
            });
            continue;
        }
        let cost_units = cell.func.live_inst_count() as u64;
        let start = Instant::now();
        let changed = pass.run(&mut cell.func, snapshot);
        let nanos = start.elapsed().as_nanos() as u64;
        if changed {
            cell.dirty = true;
        }
        if options.verify_each && changed {
            let func = &cell.func;
            verify_function(func)
                .unwrap_or_else(|e| panic!("pass '{}' broke the IR: {e}\n{func}", pass.name()));
        }
        cell.trace.records.push(PassRecord {
            pass: pass.name().to_string(),
            slot,
            outcome: if changed {
                PassOutcome::Active
            } else {
                PassOutcome::Dormant
            },
            nanos,
            cost_units,
        });
    }
    if last_stage {
        cell.trace.exit_fingerprint = fingerprint(&cell.func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{default_pipeline, NeverSkip};
    use sfcc_frontend::parse_and_check;
    use sfcc_ir::lower_module;

    /// A deterministic oracle that skips a fixed set of slots, to exercise
    /// the Skipped path in parallel.
    struct SkipSlots(Vec<usize>);

    impl SkipOracle for SkipSlots {
        fn should_skip(&self, q: &PassQuery<'_>) -> bool {
            self.0.contains(&q.slot)
        }
    }

    fn sample_module() -> Module {
        let src = r#"
            fn leaf(x: int) -> int { return x * 2 + 1; }
            fn helper(a: int, b: int) -> int {
                let t: int = leaf(a);
                let u: int = leaf(b);
                return t + u * 3;
            }
            fn looped(n: int) -> int {
                let acc: int = 0;
                for (let i: int = 0; i < n; i = i + 1) {
                    acc = acc + helper(i, n);
                }
                return acc;
            }
            fn deadish(p: int) -> int {
                let unused: int = p * 99;
                let keep: int = p + 4;
                return keep;
            }
            fn main() -> int {
                return looped(10) + deadish(7) + helper(1, 2);
            }
        "#;
        let env = sfcc_frontend::ModuleEnv::new();
        let mut d = sfcc_frontend::Diagnostics::new();
        let checked = parse_and_check("par", src, &env, &mut d).expect("sample module must check");
        lower_module(&checked, &env)
    }

    /// Clears the timing fields, which legitimately differ run to run.
    fn strip_nanos(mut trace: PipelineTrace) -> PipelineTrace {
        for f in &mut trace.functions {
            for r in &mut f.records {
                r.nanos = 0;
            }
        }
        trace
    }

    fn assert_matches_sequential(oracle: impl SkipOracle + Send + Sync + 'static, jobs: usize) {
        let pipeline = default_pipeline();
        let options = RunOptions { verify_each: true };
        let oracle = Arc::new(oracle);

        let mut seq = sample_module();
        let seq_trace = run_pipeline(&mut seq, &pipeline, oracle.as_ref(), options);

        let mut par = sample_module();
        let par_trace = sfcc_pool::scope(jobs, |ps| {
            run_pipeline_parallel(&mut par, &pipeline, Arc::clone(&oracle) as _, options, ps)
        });

        assert_eq!(seq.to_string(), par.to_string(), "optimized IR diverged");
        assert_eq!(
            strip_nanos(seq_trace),
            strip_nanos(par_trace),
            "traces diverged"
        );
    }

    #[test]
    fn parallel_matches_sequential_never_skip() {
        assert_matches_sequential(NeverSkip, 4);
    }

    #[test]
    fn parallel_matches_sequential_with_skips() {
        assert_matches_sequential(SkipSlots(vec![0, 3, 7, 11]), 4);
    }

    #[test]
    fn single_worker_pool_matches_sequential() {
        assert_matches_sequential(NeverSkip, 1);
    }
}
