//! Algebraic instruction combining and canonicalization.
//!
//! Rewrites individual instructions using local algebraic identities
//! (`x + 0 → x`, `x * 2^k → x << k`, `x ^ x → 0`, …) and canonicalizes
//! commutative operations so constants sit on the right — which unlocks the
//! hash-based redundancy passes (`cse`, `gvn`).

use crate::util::{detach_all, power_of_two_shift};
use crate::Pass;
use sfcc_ir::{BinKind, Function, InstData, InstId, ModuleSnapshot, Op, Ty, ValueRef};
use std::collections::HashMap;

/// The `instcombine` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstCombine;

impl Pass for InstCombine {
    fn name(&self) -> &'static str {
        "instcombine"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            round |= canonicalize(func);
            round |= simplify(func);
            if !round {
                break;
            }
            changed = true;
        }
        changed
    }
}

/// Moves constants to the right of commutative operations and swaps
/// constant-on-left comparisons.
fn canonicalize(func: &mut Function) -> bool {
    let mut changed = false;
    let ids: Vec<InstId> = func.iter_insts().map(|(_, i)| i).collect();
    for iid in ids {
        let inst = func.inst_mut(iid);
        match inst.op.clone() {
            Op::Bin(kind)
                if kind.is_commutative()
                    && inst.args[0].as_const().is_some()
                    && inst.args[1].as_const().is_none() =>
            {
                inst.args.swap(0, 1);
                changed = true;
            }
            Op::Icmp(pred)
                if inst.args[0].as_const().is_some() && inst.args[1].as_const().is_none() =>
            {
                inst.args.swap(0, 1);
                inst.op = Op::Icmp(pred.swapped());
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// One round of pattern-based simplification; returns whether anything fired.
fn simplify(func: &mut Function) -> bool {
    let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
    let mut dead: Vec<InstId> = Vec::new();
    let mut rewrites: Vec<(InstId, InstData)> = Vec::new();

    for (_, iid) in func.iter_insts() {
        let inst = func.inst(iid);
        let replace =
            |v: ValueRef, map: &mut HashMap<ValueRef, ValueRef>, dead: &mut Vec<InstId>| {
                map.insert(ValueRef::Inst(iid), v);
                dead.push(iid);
            };
        match &inst.op {
            Op::Bin(kind) => {
                let (a, b) = (inst.args[0], inst.args[1]);
                let bc = b.as_const().map(|(_, c)| c);
                match kind {
                    BinKind::Add if bc == Some(0) => replace(a, &mut map, &mut dead),
                    BinKind::Sub if bc == Some(0) => replace(a, &mut map, &mut dead),
                    BinKind::Sub if a == b => replace(ValueRef::int(0), &mut map, &mut dead),
                    BinKind::Mul if bc == Some(1) => replace(a, &mut map, &mut dead),
                    BinKind::Mul if bc == Some(0) => replace(ValueRef::int(0), &mut map, &mut dead),
                    BinKind::Mul => {
                        if let Some(sh) = bc.and_then(power_of_two_shift) {
                            rewrites.push((
                                iid,
                                InstData::new(
                                    Op::Bin(BinKind::Shl),
                                    vec![a, ValueRef::int(sh)],
                                    Ty::I64,
                                ),
                            ));
                        }
                    }
                    BinKind::Sdiv if bc == Some(1) => replace(a, &mut map, &mut dead),
                    BinKind::Srem if bc == Some(1) => {
                        replace(ValueRef::int(0), &mut map, &mut dead)
                    }
                    BinKind::And if a == b => replace(a, &mut map, &mut dead),
                    BinKind::And if bc == Some(0) => {
                        replace(ValueRef::Const(inst.ty, 0), &mut map, &mut dead)
                    }
                    BinKind::And if bc == Some(-1) && inst.ty == Ty::I64 => {
                        replace(a, &mut map, &mut dead)
                    }
                    BinKind::Or if a == b => replace(a, &mut map, &mut dead),
                    BinKind::Or if bc == Some(0) => replace(a, &mut map, &mut dead),
                    BinKind::Xor if a == b => {
                        replace(ValueRef::Const(inst.ty, 0), &mut map, &mut dead)
                    }
                    BinKind::Xor if bc == Some(0) => replace(a, &mut map, &mut dead),
                    BinKind::Xor if inst.ty == Ty::I1 && bc == Some(1) => {
                        // not(not x) → x
                        if let ValueRef::Inst(inner) = a {
                            let in_inst = func.inst(inner);
                            if in_inst.op == Op::Bin(BinKind::Xor)
                                && in_inst.args[1] == ValueRef::bool(true)
                            {
                                replace(in_inst.args[0], &mut map, &mut dead);
                            }
                        }
                    }
                    BinKind::Shl | BinKind::Ashr if bc == Some(0) => {
                        replace(a, &mut map, &mut dead)
                    }
                    _ => {}
                }
            }
            Op::Icmp(pred) => {
                // Note: `icmp(x - y, 0) → icmp(x, y)` is deliberately NOT
                // done — it is unsound under MiniC's wrapping arithmetic.
                let (a, b) = (inst.args[0], inst.args[1]);
                if a == b {
                    let v = pred.eval(0, 0); // reflexive result
                    replace(ValueRef::bool(v), &mut map, &mut dead);
                }
            }
            Op::Select => {
                let (c, a, b) = (inst.args[0], inst.args[1], inst.args[2]);
                if a == b {
                    replace(a, &mut map, &mut dead);
                } else if inst.ty == Ty::I1
                    && a == ValueRef::bool(true)
                    && b == ValueRef::bool(false)
                {
                    replace(c, &mut map, &mut dead);
                }
            }
            _ => {}
        }
    }

    let changed = !map.is_empty() || !rewrites.is_empty();
    for (iid, data) in rewrites {
        *func.inst_mut(iid) = data;
    }
    func.replace_uses(&map);
    detach_all(func, &dead);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = InstCombine.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn add_zero_identity() {
        let (c, text) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret p0"), "{text}");
    }

    #[test]
    fn constant_moves_right() {
        let (c, text) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 5, p0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("add i64 p0, 5"), "{text}");
    }

    #[test]
    fn icmp_swap_flips_predicate() {
        let (c, text) = run("fn @f(i64) -> i1 {\nbb0:\n  v0 = icmp slt 5, p0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("icmp sgt p0, 5"), "{text}");
    }

    #[test]
    fn mul_power_of_two_becomes_shift() {
        let (c, text) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = mul i64 p0, 8\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("shl i64 p0, 3"), "{text}");
    }

    #[test]
    fn sub_self_is_zero() {
        let (c, text) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = sub i64 p0, p0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret 0"), "{text}");
    }

    #[test]
    fn double_not_cancels() {
        let (c, text) = run(
            "fn @f(i1) -> i1 {\nbb0:\n  v0 = xor i1 p0, true\n  v1 = xor i1 v0, true\n  ret v1\n}",
        );
        assert!(c);
        assert!(text.contains("ret p0"), "{text}");
    }

    #[test]
    fn icmp_self_folds() {
        let (c, text) = run("fn @f(i64) -> i1 {\nbb0:\n  v0 = icmp sle p0, p0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret true"), "{text}");
    }

    #[test]
    fn select_same_arms() {
        let (c, text) =
            run("fn @f(i1, i64) -> i64 {\nbb0:\n  v0 = select i64 p0, p1, p1\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret p1"), "{text}");
    }

    #[test]
    fn select_true_false_is_cond() {
        let (c, text) =
            run("fn @f(i1) -> i1 {\nbb0:\n  v0 = select i1 p0, true, false\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret p0"), "{text}");
    }

    #[test]
    fn dormant_on_already_canonical() {
        let (c, _) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 5\n  ret v0\n}");
        assert!(!c);
    }

    #[test]
    fn mul_zero_annihilates() {
        let (c, text) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = mul i64 p0, 0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret 0"), "{text}");
    }

    #[test]
    fn xor_self_is_zero() {
        let (c, text) = run("fn @f(i64) -> i64 {\nbb0:\n  v0 = xor i64 p0, p0\n  ret v0\n}");
        assert!(c);
        assert!(text.contains("ret 0"), "{text}");
    }
}
