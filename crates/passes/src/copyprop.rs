//! Copy propagation: removes phi nodes that are congruent to a single value
//! (all incoming values equal, possibly via self-references).

use crate::util::detach_all;
use crate::Pass;
use sfcc_ir::{Function, InstId, ModuleSnapshot, Op, ValueRef};
use std::collections::HashMap;

/// The `copy-prop` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopyProp;

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copy-prop"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        // Removing one phi may make another trivial; iterate.
        loop {
            let mut map: HashMap<ValueRef, ValueRef> = HashMap::new();
            let mut dead: Vec<InstId> = Vec::new();
            for (_, iid) in func.iter_insts() {
                let inst = func.inst(iid);
                let Op::Phi(_) = &inst.op else { continue };
                let me = ValueRef::Inst(iid);
                // The phi is trivial if every incoming is either itself or a
                // single other value.
                let mut unique: Option<ValueRef> = None;
                let mut trivial = true;
                for &v in &inst.args {
                    if v == me {
                        continue;
                    }
                    match unique {
                        None => unique = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(u) = unique {
                        map.insert(me, u);
                        dead.push(iid);
                    }
                }
            }
            if map.is_empty() {
                return changed;
            }
            func.replace_uses(&map);
            detach_all(func, &dead);
            changed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = CopyProp.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn removes_phi_with_equal_inputs() {
        let (c, text) = run(r"
fn @f(i1, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: p1], [bb2: p1]
  ret v0
}");
        assert!(c);
        assert!(text.contains("ret p1"), "{text}");
        assert!(!text.contains("phi"), "{text}");
    }

    #[test]
    fn removes_self_referential_loop_phi() {
        // A loop-carried value that never actually changes.
        let (c, text) = run(r"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  v0 = phi i64 [bb0: p0], [bb2: v0]
  v1 = phi i64 [bb0: 0], [bb2: v2]
  v3 = icmp slt v1, 10
  condbr v3, bb2, bb3
bb2:
  v2 = add i64 v1, 1
  br bb1
bb3:
  ret v0
}");
        assert!(c);
        assert!(text.contains("ret p0"), "{text}");
    }

    #[test]
    fn keeps_real_phi() {
        let (c, _) = run(r"
fn @f(i1) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: 1], [bb2: 2]
  ret v0
}");
        assert!(!c);
    }

    #[test]
    fn cascading_trivial_phis() {
        // v1 becomes trivial only after v0 resolves.
        let (c, text) = run(r"
fn @f(i1, i64) -> i64 {
bb0:
  condbr p0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  v0 = phi i64 [bb1: p1], [bb2: p1]
  condbr p0, bb4, bb5
bb4:
  br bb6
bb5:
  br bb6
bb6:
  v1 = phi i64 [bb4: v0], [bb5: p1]
  ret v1
}");
        assert!(c);
        assert!(text.contains("ret p1"), "{text}");
    }
}
