//! Reassociation of constant operands.
//!
//! Rewrites `(x ⊕ c1) ⊕ c2` into `x ⊕ (c1 ⊕ c2)` for associative operations,
//! exposing more folding and shrinking dependence chains. Runs after
//! `instcombine` has pushed constants to the right-hand side.

use crate::Pass;
use sfcc_ir::{BinKind, Function, InstId, ModuleSnapshot, Op, ValueRef};

/// The `reassociate` pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reassociate;

fn associative(kind: BinKind) -> bool {
    matches!(
        kind,
        BinKind::Add | BinKind::Mul | BinKind::And | BinKind::Or | BinKind::Xor
    )
}

impl Pass for Reassociate {
    fn name(&self) -> &'static str {
        "reassociate"
    }

    fn run(&self, func: &mut Function, _snapshot: &ModuleSnapshot) -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            let ids: Vec<InstId> = func.iter_insts().map(|(_, i)| i).collect();
            for iid in ids {
                let inst = func.inst(iid);
                let Op::Bin(kind) = inst.op else { continue };
                if !associative(kind) {
                    continue;
                }
                let Some((cty, c2)) = inst.args[1].as_const() else {
                    continue;
                };
                let ValueRef::Inst(lhs) = inst.args[0] else {
                    continue;
                };
                let lhs_inst = func.inst(lhs);
                if lhs_inst.op != Op::Bin(kind) {
                    continue;
                }
                let Some((_, c1)) = lhs_inst.args[1].as_const() else {
                    continue;
                };
                let x = lhs_inst.args[0];
                let folded = kind.eval(c1, c2).expect("associative ops cannot trap");
                // (x ⊕ c1) ⊕ c2 → x ⊕ folded. The old lhs may still have
                // other users; dce collects it when it goes dead.
                let inst = func.inst_mut(iid);
                inst.args[0] = x;
                inst.args[1] = ValueRef::Const(cty, folded);
                round = true;
            }
            if !round {
                break;
            }
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::{function_to_string, parse_function, verify_function};

    fn run(text: &str) -> (bool, String) {
        let mut f = parse_function(text).unwrap();
        let changed = Reassociate.run(&mut f, &ModuleSnapshot::empty("t"));
        verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        (changed, function_to_string(&f))
    }

    #[test]
    fn folds_add_chain() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 3\n  v1 = add i64 v0, 4\n  ret v1\n}",
        );
        assert!(c);
        assert!(text.contains("add i64 p0, 7"), "{text}");
    }

    #[test]
    fn folds_long_chain_iteratively() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = mul i64 p0, 2\n  v1 = mul i64 v0, 3\n  v2 = mul i64 v1, 4\n  ret v2\n}",
        );
        assert!(c);
        assert!(text.contains("mul i64 p0, 24"), "{text}");
    }

    #[test]
    fn mixed_ops_not_reassociated() {
        let (c, _) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 3\n  v1 = mul i64 v0, 4\n  ret v1\n}",
        );
        assert!(!c);
    }

    #[test]
    fn sub_not_reassociated() {
        let (c, _) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = sub i64 p0, 3\n  v1 = sub i64 v0, 4\n  ret v1\n}",
        );
        assert!(!c);
    }

    #[test]
    fn preserves_multi_use_intermediate() {
        let (c, text) = run(
            "fn @f(i64) -> i64 {\nbb0:\n  v0 = add i64 p0, 3\n  v1 = add i64 v0, 4\n  v2 = add i64 v0, v1\n  ret v2\n}",
        );
        assert!(c);
        // v0 still used by v2, so the chain keeps both adds plus the fold.
        assert!(text.contains("add i64 p0, 7"), "{text}");
        assert!(text.contains("add i64 p0, 3"), "{text}");
    }
}
