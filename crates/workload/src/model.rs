//! The structured project model.
//!
//! Projects are generated as a *model* (per-function seeds and frozen call
//! lists) and rendered to MiniC text on demand. Edits mutate the model —
//! never the text — which guarantees that every simulated commit stays a
//! valid program and that untouched functions render byte-identically
//! (essential for meaningful incrementality measurements).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfcc_buildsys::Project;
use std::fmt::Write as _;

/// A reference to a callee: `(module index, function index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalleeRef {
    /// Index of the callee's module in [`ProjectModel::modules`].
    pub module: usize,
    /// Index of the callee within that module.
    pub function: usize,
}

/// The model of one function.
#[derive(Debug, Clone)]
pub struct FunctionModel {
    /// Function name, unique within its module.
    pub name: String,
    /// Number of `int` parameters (1–3).
    pub params: usize,
    /// Seed driving the deterministic body renderer.
    pub body_seed: u64,
    /// Approximate statement budget for the body.
    pub stmt_budget: usize,
    /// Callees this function may call, frozen at creation (keeps renders of
    /// other functions stable under edits).
    pub callees: Vec<CalleeRef>,
    /// Call-graph depth (1 = leaf); used to bound VM recursion.
    pub depth: u32,
    /// Added to the function's first literal — the `TweakConstant` edit.
    pub const_bump: i64,
    /// Simple accumulator statements appended — the `AddStatement` edit.
    pub extra_stmts: u32,
}

/// The model of one module.
#[derive(Debug, Clone)]
pub struct ModuleModel {
    /// Module name (`m00`, `m01`, …).
    pub name: String,
    /// Indices of imported modules (all smaller than this module's index).
    pub imports: Vec<usize>,
    /// Functions in definition order.
    pub functions: Vec<FunctionModel>,
}

/// A whole generated project.
#[derive(Debug, Clone)]
pub struct ProjectModel {
    /// Modules in dependency-safe order (imports point backwards).
    pub modules: Vec<ModuleModel>,
}

impl ProjectModel {
    /// Renders the full project to MiniC sources.
    pub fn render(&self) -> Project {
        let mut project = Project::new();
        for module in &self.modules {
            project.set_file(module.name.clone(), self.render_module(module));
        }
        project
    }

    /// Renders a single module.
    pub fn render_module(&self, module: &ModuleModel) -> String {
        let mut src = String::new();
        for &imp in &module.imports {
            let _ = writeln!(src, "import {};", self.modules[imp].name);
        }
        if !module.imports.is_empty() {
            src.push('\n');
        }
        for func in &module.functions {
            src.push_str(&self.render_function(module, func));
            src.push('\n');
        }
        src
    }

    /// Renders one function deterministically from its model.
    pub fn render_function(&self, module: &ModuleModel, func: &FunctionModel) -> String {
        let body = BodyBuilder::new(self, module, func);
        body.build()
    }

    /// Total functions across all modules.
    pub fn function_count(&self) -> usize {
        self.modules.iter().map(|m| m.functions.len()).sum()
    }

    /// The qualified call expression for a callee as seen from `from`.
    fn call_expr(&self, from: &ModuleModel, callee: CalleeRef, args: &str) -> String {
        let target_module = &self.modules[callee.module];
        let target = &target_module.functions[callee.function];
        if target_module.name == from.name {
            format!("{}({args})", target.name)
        } else {
            format!("{}::{}({args})", target_module.name, target.name)
        }
    }
}

/// Renders one function body from its seed.
struct BodyBuilder<'a> {
    model: &'a ProjectModel,
    module: &'a ModuleModel,
    func: &'a FunctionModel,
    rng: StdRng,
    src: String,
    indent: usize,
    /// In-scope `int` variables (per lexical scope frame).
    scopes: Vec<Vec<String>>,
    next_var: usize,
    next_loop: usize,
    next_array: usize,
    stmts_left: usize,
    /// Whether the first literal (the const-bump anchor) was emitted.
    bumped: bool,
    call_cursor: usize,
    /// Nesting depth of enclosing loops; calls are only emitted at depth 0
    /// so a body invokes each callee O(1) times and dynamic cost stays
    /// polynomial along call chains (loops would compound ~12× per level).
    loop_depth: usize,
}

impl<'a> BodyBuilder<'a> {
    fn new(model: &'a ProjectModel, module: &'a ModuleModel, func: &'a FunctionModel) -> Self {
        BodyBuilder {
            model,
            module,
            func,
            rng: StdRng::seed_from_u64(func.body_seed),
            src: String::new(),
            indent: 1,
            scopes: vec![(0..func.params).map(|i| format!("p{i}")).collect()],
            next_var: 0,
            next_loop: 0,
            next_array: 0,
            stmts_left: func.stmt_budget,
            bumped: false,
            call_cursor: 0,
            loop_depth: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.src.push_str("    ");
        }
        self.src.push_str(text);
        self.src.push('\n');
    }

    fn vars(&self) -> Vec<String> {
        self.scopes.iter().flatten().cloned().collect()
    }

    fn pick_var(&mut self) -> String {
        let vars = self.vars();
        let i = self.rng.gen_range(0..vars.len());
        vars[i].clone()
    }

    /// A variable that is safe to assign to. Loop counters (`i*`) are
    /// excluded: a nested statement that reset one inside its own loop body
    /// would make the loop non-terminating. Never empty — the accumulator
    /// (`v0`) is always in scope.
    fn pick_assignable(&mut self) -> String {
        let vars: Vec<String> = self
            .vars()
            .into_iter()
            .filter(|v| !v.starts_with('i'))
            .collect();
        let i = self.rng.gen_range(0..vars.len());
        vars[i].clone()
    }

    /// The first literal of the body carries the const bump so the
    /// `TweakConstant` edit changes exactly one token.
    fn literal(&mut self) -> i64 {
        let base = self.rng.gen_range(1..=9);
        if !self.bumped {
            self.bumped = true;
            base + self.func.const_bump
        } else {
            base
        }
    }

    /// A side-effect-free integer expression over in-scope variables.
    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return if self.rng.gen_bool(0.6) {
                self.pick_var()
            } else {
                self.literal().to_string()
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.rng.gen_range(0..10) {
            0..=2 => format!("({a} + {b})"),
            3..=4 => format!("({a} - {b})"),
            5 => format!("({a} * {b})"),
            // Division and modulo with a guaranteed-positive denominator.
            6 => format!("({a} / (({b} & 15) + 1))"),
            7 => format!("({a} % (({b} & 15) + 1))"),
            8 => format!("({a} ^ {b})"),
            _ => format!("(({a} << 1) + ({b} >> 2))"),
        }
    }

    /// A boolean expression over in-scope variables.
    fn cond(&mut self) -> String {
        let a = self.expr(1);
        let b = self.expr(1);
        let cmp = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6)];
        if self.rng.gen_bool(0.25) {
            let c = self.pick_var();
            let d = self.literal();
            let logic = if self.rng.gen_bool(0.5) { "&&" } else { "||" };
            format!("({a} {cmp} {b}) {logic} ({c} != {d})")
        } else {
            format!("{a} {cmp} {b}")
        }
    }

    fn fresh_var(&mut self) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        name
    }

    fn build(mut self) -> String {
        let params: Vec<String> = (0..self.func.params)
            .map(|i| format!("p{i}: int"))
            .collect();
        let header = format!("fn {}({}) -> int {{", self.func.name, params.join(", "));

        // Seed an accumulator so every body has a stable return value chain.
        let acc = self.fresh_var();
        self.scopes.last_mut().expect("scope").push(acc.clone());
        let init = self.literal();
        let acc_decl = format!("let {acc}: int = {init};");
        self.line(&acc_decl);

        while self.stmts_left > 0 {
            self.stmts_left -= 1;
            self.statement(&acc, 0);
        }
        // Appended accumulator statements (the `AddStatement` edit).
        for k in 0..self.func.extra_stmts {
            self.line(&format!("{acc} = {acc} + {};", k + 1));
        }
        self.line(&format!("return {acc};"));

        format!("{header}\n{}}}\n", self.src)
    }

    fn statement(&mut self, acc: &str, nesting: usize) {
        let choice = self.rng.gen_range(0..100);
        match choice {
            // Declare a new scalar.
            0..=24 => {
                let e = self.expr(2);
                let v = self.fresh_var();
                self.line(&format!("let {v}: int = {e};"));
                self.scopes.last_mut().expect("scope").push(v);
            }
            // Mutate an existing scalar.
            25..=44 => {
                let v = self.pick_assignable();
                // Parameters are assignable in MiniC (they are spilled).
                let e = self.expr(2);
                self.line(&format!("{v} = {e};"));
            }
            // Branch.
            45..=59 if nesting < 2 => {
                let c = self.cond();
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.scopes.push(Vec::new());
                self.statement(acc, nesting + 1);
                self.scopes.pop();
                self.indent -= 1;
                if self.rng.gen_bool(0.5) {
                    self.line("} else {");
                    self.indent += 1;
                    self.scopes.push(Vec::new());
                    self.statement(acc, nesting + 1);
                    self.scopes.pop();
                    self.indent -= 1;
                }
                self.line("}");
            }
            // Counted loop accumulating an expression.
            60..=74 if nesting < 2 => {
                let i = format!("i{}", self.next_loop);
                self.next_loop += 1;
                let trips = self.rng.gen_range(2..=12);
                self.line(&format!(
                    "for (let {i}: int = 0; {i} < {trips}; {i} = {i} + 1) {{"
                ));
                self.indent += 1;
                self.scopes.push(vec![i.clone()]);
                let e = self.expr(1);
                self.line(&format!("{acc} = {acc} + {e} * {i};"));
                if self.rng.gen_bool(0.4) {
                    self.loop_depth += 1;
                    self.statement(acc, nesting + 1);
                    self.loop_depth -= 1;
                }
                self.scopes.pop();
                self.indent -= 1;
                self.line("}");
            }
            // Array fill + reduce.
            75..=84 if nesting == 0 => {
                let a = format!("a{}", self.next_array);
                self.next_array += 1;
                let n = [8usize, 16][self.rng.gen_range(0..2)];
                let i = format!("i{}", self.next_loop);
                self.next_loop += 1;
                self.line(&format!("let {a}: [int; {n}];"));
                self.line(&format!(
                    "for (let {i}: int = 0; {i} < {n}; {i} = {i} + 1) {{"
                ));
                self.indent += 1;
                self.scopes.push(vec![i.clone()]);
                let e = self.expr(1);
                self.line(&format!("{a}[{i}] = {e} + {i};"));
                self.scopes.pop();
                self.indent -= 1;
                self.line("}");
                let j = format!("i{}", self.next_loop);
                self.next_loop += 1;
                self.line(&format!(
                    "for (let {j}: int = 0; {j} < {n}; {j} = {j} + 1) {{"
                ));
                self.indent += 1;
                self.line(&format!("{acc} = {acc} + {a}[{j}];"));
                self.indent -= 1;
                self.line("}");
            }
            // Call a frozen callee (never under a loop; see `loop_depth`).
            85..=94 if self.loop_depth == 0 && !self.func.callees.is_empty() => {
                let callee = self.func.callees[self.call_cursor % self.func.callees.len()];
                self.call_cursor += 1;
                let target = &self.model.modules[callee.module].functions[callee.function];
                let args: Vec<String> = (0..target.params).map(|_| self.expr(1)).collect();
                let call = self.model.call_expr(self.module, callee, &args.join(", "));
                self.line(&format!("{acc} = {acc} + {call};"));
            }
            // Occasional observable output.
            95..=97 => {
                let v = self.pick_var();
                self.line(&format!("print({v});"));
            }
            // Fallback: accumulate an expression.
            _ => {
                let e = self.expr(2);
                self.line(&format!("{acc} = {acc} + {e};"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_model, GeneratorConfig};

    fn small_model() -> ProjectModel {
        generate_model(&GeneratorConfig::small(7))
    }

    #[test]
    fn render_is_deterministic() {
        let m = small_model();
        assert_eq!(m.render(), m.render());
        let m2 = small_model();
        assert_eq!(m.render(), m2.render());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_model(&GeneratorConfig::small(1)).render();
        let b = generate_model(&GeneratorConfig::small(2)).render();
        assert_ne!(a, b);
    }

    #[test]
    fn const_bump_changes_exactly_one_module() {
        let mut m = small_model();
        let before = m.render();
        m.modules[0].functions[0].const_bump += 5;
        let after = m.render();
        let mut changed = 0;
        for (name, src) in before.iter() {
            if after.file(name) != Some(src) {
                changed += 1;
            }
        }
        assert_eq!(changed, 1);
    }

    #[test]
    fn extra_stmt_is_appended_before_return() {
        let mut m = small_model();
        m.modules[0].functions[0].extra_stmts = 2;
        let module = &m.modules[0];
        let text = m.render_function(module, &module.functions[0]);
        assert!(text.contains("+ 1;"), "{text}");
        assert!(text.contains("+ 2;"), "{text}");
    }
}
