//! Project statistics for the benchmark-characteristics table (E3).

use crate::model::ProjectModel;
use sfcc_buildsys::Project;

/// Size statistics of one generated project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectStats {
    /// Preset name.
    pub name: String,
    /// Number of modules (source files).
    pub modules: usize,
    /// Total functions.
    pub functions: usize,
    /// Total source lines.
    pub lines: usize,
    /// Total import edges.
    pub import_edges: usize,
}

impl ProjectStats {
    /// Computes the statistics of `model` rendered as `project`.
    pub fn of(name: &str, model: &ProjectModel, project: &Project) -> Self {
        ProjectStats {
            name: name.to_string(),
            modules: model.modules.len(),
            functions: model.function_count(),
            lines: project.total_lines(),
            import_edges: model.modules.iter().map(|m| m.imports.len()).sum(),
        }
    }

    /// One table row: `name modules functions lines imports`.
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>8} {:>10} {:>8} {:>8}",
            self.name, self.modules, self.functions, self.lines, self.import_edges
        )
    }

    /// The matching header row.
    pub fn header() -> String {
        format!(
            "{:<12} {:>8} {:>10} {:>8} {:>8}",
            "project", "modules", "functions", "lines", "imports"
        )
    }
}

/// Churn statistics over a simulated commit history: how many files and
/// lines each commit touches (the evaluation's analogue of the paper's
/// commit-size characterization of its git histories).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnStats {
    /// Number of commits measured.
    pub commits: usize,
    /// Total files changed across commits.
    pub files_changed: usize,
    /// Total lines added or removed across commits (unified-diff style).
    pub lines_changed: usize,
}

impl ChurnStats {
    /// Measures `commits` commits of `script` over `model`, mutating both.
    pub fn measure(
        model: &mut ProjectModel,
        script: &mut crate::edits::EditScript,
        commits: usize,
    ) -> ChurnStats {
        let mut stats = ChurnStats {
            commits,
            ..ChurnStats::default()
        };
        let mut before = model.render();
        for _ in 0..commits {
            script.commit(model);
            let after = model.render();
            for (name, old) in before.iter() {
                match after.file(name) {
                    Some(new) if new != old => {
                        stats.files_changed += 1;
                        stats.lines_changed += line_diff(old, new);
                    }
                    Some(_) => {}
                    None => stats.files_changed += 1,
                }
            }
            for (name, new) in after.iter() {
                if before.file(name).is_none() {
                    stats.files_changed += 1;
                    stats.lines_changed += new.lines().count();
                }
            }
            before = after;
        }
        stats
    }

    /// Mean files changed per commit.
    pub fn files_per_commit(&self) -> f64 {
        self.files_changed as f64 / self.commits.max(1) as f64
    }

    /// Mean changed lines per commit.
    pub fn lines_per_commit(&self) -> f64 {
        self.lines_changed as f64 / self.commits.max(1) as f64
    }
}

/// Counts lines present in exactly one of the two texts (multiset
/// symmetric difference) — a cheap proxy for `diff | wc -l`.
fn line_diff(old: &str, new: &str) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for l in old.lines() {
        *counts.entry(l).or_default() += 1;
    }
    for l in new.lines() {
        *counts.entry(l).or_default() -= 1;
    }
    counts.values().map(|c| c.unsigned_abs() as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_model, GeneratorConfig};

    #[test]
    fn stats_are_plausible() {
        let cfg = GeneratorConfig::medium(3);
        let model = generate_model(&cfg);
        let project = model.render();
        let stats = ProjectStats::of(&cfg.name, &model, &project);
        assert_eq!(stats.modules, cfg.modules + 1);
        assert!(stats.functions >= cfg.modules * cfg.functions_per_module.0);
        assert!(stats.lines > stats.functions * 3);
        assert!(stats.import_edges > 0);
    }

    #[test]
    fn churn_counts_small_localized_edits() {
        use crate::edits::EditScript;
        let mut model = generate_model(&GeneratorConfig::small(9));
        let mut script = EditScript::new(4);
        let stats = ChurnStats::measure(&mut model, &mut script, 12);
        assert_eq!(stats.commits, 12);
        assert!(stats.files_changed >= 12, "{stats:?}");
        // Localized edits: on average only ~1 file and a handful of lines.
        assert!(stats.files_per_commit() < 2.0, "{stats:?}");
        assert!(stats.lines_per_commit() > 0.0, "{stats:?}");
        assert!(stats.lines_per_commit() < 60.0, "{stats:?}");
    }

    #[test]
    fn line_diff_is_symmetric_difference() {
        assert_eq!(line_diff("a\nb\nc", "a\nx\nc"), 2);
        assert_eq!(line_diff("a", "a"), 0);
        assert_eq!(line_diff("", "a\nb"), 2);
    }

    #[test]
    fn rows_align_with_header() {
        let cfg = GeneratorConfig::small(3);
        let model = generate_model(&cfg);
        let project = model.render();
        let stats = ProjectStats::of(&cfg.name, &model, &project);
        assert_eq!(
            stats.row().split_whitespace().count(),
            ProjectStats::header().split_whitespace().count()
        );
    }
}
