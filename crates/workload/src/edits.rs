//! The commit simulator: sequences of realistic, localized edits.
//!
//! Models the paper's workload — a developer's incremental-build loop —
//! as model mutations: constant tweaks, added statements, and new
//! functions, with a distribution skewed heavily toward small body-only
//! edits (the case fine-grained incrementality targets).

use crate::gen::MAX_CALL_DEPTH;
use crate::model::{FunctionModel, ProjectModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of edit a commit applies to one function/module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EditKind {
    /// Change a numeric literal in a function body (≈ tuning a constant).
    TweakConstant,
    /// Append a small statement to a function body.
    AddStatement,
    /// Regenerate a function body wholesale (≈ rewriting a function).
    RewriteBody,
    /// Add a brand-new function to a module (an interface change that
    /// forces dependents to rebuild).
    AddFunction,
}

impl EditKind {
    /// All kinds, for sweeps.
    pub fn all() -> [EditKind; 4] {
        [
            EditKind::TweakConstant,
            EditKind::AddStatement,
            EditKind::RewriteBody,
            EditKind::AddFunction,
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            EditKind::TweakConstant => "tweak-const",
            EditKind::AddStatement => "add-stmt",
            EditKind::RewriteBody => "rewrite-body",
            EditKind::AddFunction => "add-fn",
        }
    }
}

/// One applied commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Sequential id (1-based).
    pub number: usize,
    /// What was done.
    pub kind: EditKind,
    /// The edited module.
    pub module: String,
    /// The edited (or added) function.
    pub function: String,
}

/// Generates commit sequences over a [`ProjectModel`].
#[derive(Debug)]
pub struct EditScript {
    rng: StdRng,
    commits_applied: usize,
    /// Relative weights of [`EditKind::all`]; defaults to the paper-style
    /// mix of mostly tiny edits.
    pub weights: [u32; 4],
}

impl EditScript {
    /// Creates a script with the default edit mix
    /// (50 % constant tweaks, 25 % added statements, 15 % body rewrites,
    /// 10 % new functions).
    pub fn new(seed: u64) -> Self {
        EditScript {
            rng: StdRng::seed_from_u64(seed ^ 0xED17),
            commits_applied: 0,
            weights: [50, 25, 15, 10],
        }
    }

    /// Restricts the script to a single edit kind (for per-kind sweeps).
    pub fn only(seed: u64, kind: EditKind) -> Self {
        let mut weights = [0; 4];
        let idx = EditKind::all()
            .iter()
            .position(|k| *k == kind)
            .expect("kind");
        weights[idx] = 1;
        EditScript {
            rng: StdRng::seed_from_u64(seed ^ 0xED17),
            commits_applied: 0,
            weights,
        }
    }

    fn pick_kind(&mut self) -> EditKind {
        let total: u32 = self.weights.iter().sum();
        let mut roll = self.rng.gen_range(0..total);
        for (kind, &w) in EditKind::all().iter().zip(&self.weights) {
            if roll < w {
                return *kind;
            }
            roll -= w;
        }
        EditKind::TweakConstant
    }

    /// Applies one commit touching a single function; returns it.
    ///
    /// The `main` module is never edited (it exists to keep the program
    /// runnable), mirroring how evaluation edits target library code.
    pub fn commit(&mut self, model: &mut ProjectModel) -> Commit {
        let kind = self.pick_kind();
        self.commits_applied += 1;
        let module_idx = self.rng.gen_range(0..model.modules.len() - 1);
        match kind {
            EditKind::AddFunction => {
                let function = self.add_function(model, module_idx);
                Commit {
                    number: self.commits_applied,
                    kind,
                    module: model.modules[module_idx].name.clone(),
                    function,
                }
            }
            _ => {
                let fn_count = model.modules[module_idx].functions.len();
                let fn_idx = self.rng.gen_range(0..fn_count);
                self.edit_function(model, module_idx, fn_idx, kind);
                Commit {
                    number: self.commits_applied,
                    kind,
                    module: model.modules[module_idx].name.clone(),
                    function: model.modules[module_idx].functions[fn_idx].name.clone(),
                }
            }
        }
    }

    /// Applies a commit that touches `count` distinct functions (for the
    /// edit-size sweep, experiment E6). All edits are body-only tweaks.
    pub fn wide_commit(&mut self, model: &mut ProjectModel, count: usize) -> Vec<Commit> {
        let mut sites: Vec<(usize, usize)> = Vec::new();
        for (mi, module) in model
            .modules
            .iter()
            .enumerate()
            .take(model.modules.len() - 1)
        {
            for fi in 0..module.functions.len() {
                sites.push((mi, fi));
            }
        }
        // Deterministic shuffle by repeated pick-and-remove.
        let mut commits = Vec::new();
        for _ in 0..count.min(sites.len()) {
            let at = self.rng.gen_range(0..sites.len());
            let (mi, fi) = sites.swap_remove(at);
            self.edit_function(model, mi, fi, EditKind::TweakConstant);
            self.commits_applied += 1;
            commits.push(Commit {
                number: self.commits_applied,
                kind: EditKind::TweakConstant,
                module: model.modules[mi].name.clone(),
                function: model.modules[mi].functions[fi].name.clone(),
            });
        }
        commits
    }

    fn edit_function(
        &mut self,
        model: &mut ProjectModel,
        module_idx: usize,
        fn_idx: usize,
        kind: EditKind,
    ) {
        let func = &mut model.modules[module_idx].functions[fn_idx];
        match kind {
            EditKind::TweakConstant => {
                func.const_bump += self.rng.gen_range(1..=4);
            }
            EditKind::AddStatement => {
                func.extra_stmts += 1;
            }
            EditKind::RewriteBody => {
                func.body_seed = self.rng.gen();
                func.const_bump = 0;
                func.extra_stmts = 0;
            }
            EditKind::AddFunction => unreachable!("handled separately"),
        }
    }

    fn add_function(&mut self, model: &mut ProjectModel, module_idx: usize) -> String {
        let (callees, depth) = {
            let module = &model.modules[module_idx];
            // New function may call earlier functions of the same module.
            let mut callees = Vec::new();
            let mut depth = 1;
            if !module.functions.is_empty() && self.rng.gen_bool(0.7) {
                let fi = self.rng.gen_range(0..module.functions.len());
                let cd = module.functions[fi].depth;
                if cd < MAX_CALL_DEPTH {
                    callees.push(crate::model::CalleeRef {
                        module: module_idx,
                        function: fi,
                    });
                    depth = cd + 1;
                }
            }
            (callees, depth)
        };
        let module = &mut model.modules[module_idx];
        let name = format!("f{}", module.functions.len());
        module.functions.push(FunctionModel {
            name: name.clone(),
            params: self.rng.gen_range(1..=2),
            body_seed: self.rng.gen(),
            stmt_budget: self.rng.gen_range(3..=8),
            callees,
            depth,
            const_bump: 0,
            extra_stmts: 0,
        });
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_model, GeneratorConfig};

    #[test]
    fn commits_change_exactly_the_named_module() {
        let mut model = generate_model(&GeneratorConfig::medium(11));
        let mut script = EditScript::new(7);
        for _ in 0..20 {
            let before = model.render();
            let commit = script.commit(&mut model);
            let after = model.render();
            let mut changed: Vec<&str> = Vec::new();
            for (name, src) in before.iter() {
                if after.file(name) != Some(src) {
                    changed.push(name);
                }
            }
            assert_eq!(changed, vec![commit.module.as_str()], "commit {commit:?}");
        }
    }

    #[test]
    fn edited_projects_remain_valid() {
        use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv, ModuleInterface};
        let mut model = generate_model(&GeneratorConfig::small(21));
        let mut script = EditScript::new(3);
        for _ in 0..30 {
            script.commit(&mut model);
        }
        let mut env = ModuleEnv::new();
        for module in &model.modules {
            let src = model.render_module(module);
            let mut diags = Diagnostics::new();
            let checked = parse_and_check(&module.name, &src, &env, &mut diags)
                .unwrap_or_else(|| panic!("invalid after edits: {diags:?}\n{src}"));
            env.insert(module.name.clone(), ModuleInterface::of(&checked.ast));
        }
    }

    #[test]
    fn edit_script_is_deterministic() {
        let run = || {
            let mut model = generate_model(&GeneratorConfig::small(5));
            let mut script = EditScript::new(9);
            let commits: Vec<Commit> = (0..10).map(|_| script.commit(&mut model)).collect();
            (commits, model.render())
        };
        let (c1, p1) = run();
        let (c2, p2) = run();
        assert_eq!(c1, c2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn only_filter_restricts_kinds() {
        let mut model = generate_model(&GeneratorConfig::small(5));
        let mut script = EditScript::only(1, EditKind::AddFunction);
        for _ in 0..5 {
            assert_eq!(script.commit(&mut model).kind, EditKind::AddFunction);
        }
    }

    #[test]
    fn wide_commit_touches_distinct_functions() {
        let mut model = generate_model(&GeneratorConfig::medium(5));
        let mut script = EditScript::new(2);
        let commits = script.wide_commit(&mut model, 10);
        assert_eq!(commits.len(), 10);
        let mut sites: Vec<(String, String)> = commits
            .iter()
            .map(|c| (c.module.clone(), c.function.clone()))
            .collect();
        sites.sort();
        sites.dedup();
        assert_eq!(sites.len(), 10, "sites must be distinct");
    }

    #[test]
    fn add_function_grows_module() {
        let mut model = generate_model(&GeneratorConfig::small(5));
        let before = model.modules[0].functions.len();
        let mut script = EditScript::only(1, EditKind::AddFunction);
        // Force edits into module 0 by retrying until it hits (deterministic
        // across runs since the RNG is seeded).
        let mut grew = false;
        for _ in 0..40 {
            let c = script.commit(&mut model);
            if c.module == model.modules[0].name {
                grew = true;
                break;
            }
        }
        assert!(grew);
        assert!(model.modules[0].functions.len() > before);
    }

    #[test]
    fn main_module_is_never_edited() {
        let mut model = generate_model(&GeneratorConfig::small(5));
        let mut script = EditScript::new(4);
        for _ in 0..50 {
            let c = script.commit(&mut model);
            assert_ne!(c.module, "main");
        }
    }
}
