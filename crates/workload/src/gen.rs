//! Project generation: configuration, presets, and model construction.

use crate::model::{CalleeRef, FunctionModel, ModuleModel, ProjectModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum call-graph depth a generated function may sit at (bounds VM
/// recursion well below the interpreter's limit).
pub const MAX_CALL_DEPTH: u32 = 24;

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed: same config + same seed ⇒ byte-identical project.
    pub seed: u64,
    /// Number of library modules (a `main` module is added on top).
    pub modules: usize,
    /// Functions per module, inclusive range.
    pub functions_per_module: (usize, usize),
    /// Statement budget per function, inclusive range.
    pub stmts_per_function: (usize, usize),
    /// Probability that a module imports any given earlier module.
    pub import_density: f64,
    /// Number of frozen callees per function, inclusive range.
    pub callees_per_function: (usize, usize),
    /// Human-readable preset name for tables.
    pub name: String,
}

impl GeneratorConfig {
    /// A tiny project (sanity runs): 4 modules.
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            modules: 4,
            functions_per_module: (3, 6),
            stmts_per_function: (4, 10),
            import_density: 0.5,
            callees_per_function: (0, 3),
            name: "small".into(),
        }
    }

    /// A medium project: 12 modules.
    pub fn medium(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            modules: 12,
            functions_per_module: (6, 12),
            stmts_per_function: (6, 14),
            import_density: 0.35,
            callees_per_function: (1, 4),
            name: "medium".into(),
        }
    }

    /// A large project: 30 modules.
    pub fn large(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            modules: 30,
            functions_per_module: (8, 16),
            stmts_per_function: (6, 16),
            import_density: 0.25,
            callees_per_function: (1, 5),
            name: "large".into(),
        }
    }

    /// An extra-large project: 60 modules.
    pub fn xlarge(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            modules: 60,
            functions_per_module: (8, 18),
            stmts_per_function: (8, 18),
            import_density: 0.15,
            callees_per_function: (1, 5),
            name: "xlarge".into(),
        }
    }

    /// Call-heavy variant of medium (stresses the inliner).
    pub fn call_heavy(seed: u64) -> Self {
        GeneratorConfig {
            callees_per_function: (3, 8),
            name: "call-heavy".into(),
            ..Self::medium(seed)
        }
    }

    /// Loop-heavy variant of medium (stresses the loop passes): bigger
    /// statement budgets make loop statements proportionally more likely.
    pub fn loop_heavy(seed: u64) -> Self {
        GeneratorConfig {
            stmts_per_function: (12, 24),
            callees_per_function: (0, 1),
            name: "loop-heavy".into(),
            ..Self::medium(seed)
        }
    }

    /// The five standard evaluation projects, mirroring the paper's table of
    /// benchmark C++ projects.
    pub fn evaluation_suite(seed: u64) -> Vec<GeneratorConfig> {
        vec![
            Self::small(seed),
            Self::medium(seed.wrapping_add(1)),
            Self::large(seed.wrapping_add(2)),
            Self::call_heavy(seed.wrapping_add(3)),
            Self::loop_heavy(seed.wrapping_add(4)),
        ]
    }
}

/// Generates the structured model for `config`.
pub fn generate_model(config: &GeneratorConfig) -> ProjectModel {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5fcc);
    let mut modules: Vec<ModuleModel> = Vec::with_capacity(config.modules + 1);

    for mi in 0..config.modules {
        let name = format!("m{mi:02}");
        let mut imports: Vec<usize> = (0..mi)
            .filter(|_| rng.gen_bool(config.import_density))
            .collect();
        // Cap the import list so interfaces stay readable.
        imports.truncate(6);

        let fn_count = rng.gen_range(config.functions_per_module.0..=config.functions_per_module.1);
        let mut functions = Vec::with_capacity(fn_count);
        for fi in 0..fn_count {
            let func = make_function(config, &mut rng, &modules, mi, &imports, fi, &functions);
            functions.push(func);
        }
        modules.push(ModuleModel {
            name,
            imports,
            functions,
        });
    }

    // The `main` module imports everything directly and calls a sample of
    // functions so the whole program is reachable and runnable.
    let main = make_main(&mut rng, &modules);
    modules.push(main);

    ProjectModel { modules }
}

/// Picks callees for a new function and computes its call depth.
fn make_function(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    modules: &[ModuleModel],
    module_idx: usize,
    imports: &[usize],
    fn_idx: usize,
    earlier_in_module: &[FunctionModel],
) -> FunctionModel {
    // Candidate callees: earlier functions in this module, or any function
    // of an imported module — always "backwards", so the call graph is a
    // DAG by construction.
    let mut candidates: Vec<(CalleeRef, u32)> = Vec::new();
    for (i, f) in earlier_in_module.iter().enumerate() {
        candidates.push((
            CalleeRef {
                module: module_idx,
                function: i,
            },
            f.depth,
        ));
    }
    for &imp in imports {
        for (i, f) in modules[imp].functions.iter().enumerate() {
            candidates.push((
                CalleeRef {
                    module: imp,
                    function: i,
                },
                f.depth,
            ));
        }
    }
    candidates.retain(|(_, depth)| *depth < MAX_CALL_DEPTH);

    let want = rng.gen_range(config.callees_per_function.0..=config.callees_per_function.1);
    let mut callees = Vec::new();
    let mut depth = 1;
    for _ in 0..want {
        if candidates.is_empty() {
            break;
        }
        let (callee, cd) = candidates[rng.gen_range(0..candidates.len())];
        callees.push(callee);
        depth = depth.max(cd + 1);
    }

    FunctionModel {
        name: format!("f{fn_idx}"),
        params: rng.gen_range(1..=3),
        body_seed: rng.gen(),
        stmt_budget: rng.gen_range(config.stmts_per_function.0..=config.stmts_per_function.1),
        callees,
        depth,
        const_bump: 0,
        extra_stmts: 0,
    }
}

fn make_main(rng: &mut StdRng, modules: &[ModuleModel]) -> ModuleModel {
    let imports: Vec<usize> = (0..modules.len()).collect();
    // main calls up to 24 shallow functions across the project.
    let mut callees = Vec::new();
    let mut all: Vec<(CalleeRef, u32)> = Vec::new();
    for (mi, m) in modules.iter().enumerate() {
        for (fi, f) in m.functions.iter().enumerate() {
            all.push((
                CalleeRef {
                    module: mi,
                    function: fi,
                },
                f.depth,
            ));
        }
    }
    all.retain(|(_, d)| *d < MAX_CALL_DEPTH);
    for _ in 0..24.min(all.len()) {
        let (c, _) = all[rng.gen_range(0..all.len())];
        callees.push(c);
    }
    let main_fn = FunctionModel {
        name: "main".into(),
        params: 1,
        body_seed: rng.gen(),
        stmt_budget: 10,
        callees,
        depth: MAX_CALL_DEPTH + 1,
        const_bump: 0,
        extra_stmts: 0,
    };
    ModuleModel {
        name: "main".into(),
        imports,
        functions: vec![main_fn],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv, ModuleInterface};

    /// Type-checks every generated module in dependency order.
    fn check_project(model: &ProjectModel) {
        let mut env = ModuleEnv::new();
        for module in &model.modules {
            let src = model.render_module(module);
            let mut diags = Diagnostics::new();
            let checked =
                parse_and_check(&module.name, &src, &env, &mut diags).unwrap_or_else(|| {
                    panic!(
                        "generated module '{}' is invalid:\n{diags:?}\n--- source ---\n{src}",
                        module.name
                    )
                });
            env.insert(module.name.clone(), ModuleInterface::of(&checked.ast));
        }
    }

    #[test]
    fn small_projects_type_check() {
        for seed in 0..8 {
            check_project(&generate_model(&GeneratorConfig::small(seed)));
        }
    }

    #[test]
    fn medium_project_type_checks() {
        check_project(&generate_model(&GeneratorConfig::medium(42)));
    }

    #[test]
    fn all_presets_type_check() {
        for config in GeneratorConfig::evaluation_suite(123) {
            check_project(&generate_model(&config));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_model(&GeneratorConfig::medium(9)).render();
        let b = generate_model(&GeneratorConfig::medium(9)).render();
        assert_eq!(a, b);
    }

    #[test]
    fn main_module_exists_with_entry() {
        let m = generate_model(&GeneratorConfig::small(3));
        let main = m.modules.last().unwrap();
        assert_eq!(main.name, "main");
        assert_eq!(main.functions[0].name, "main");
    }

    #[test]
    fn call_depths_are_bounded() {
        let m = generate_model(&GeneratorConfig::call_heavy(5));
        for module in &m.modules[..m.modules.len() - 1] {
            for f in &module.functions {
                assert!(f.depth <= MAX_CALL_DEPTH, "{} too deep", f.name);
            }
        }
    }

    #[test]
    fn module_counts_match_config() {
        let cfg = GeneratorConfig::medium(1);
        let m = generate_model(&cfg);
        assert_eq!(m.modules.len(), cfg.modules + 1); // + main
    }
}
