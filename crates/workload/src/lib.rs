//! # sfcc-workload
//!
//! Deterministic synthetic workloads for the `sfcc` evaluation: a MiniC
//! project generator with realistic module/function/call structure, and a
//! commit simulator that replays sequences of localized edits — the
//! substitute for the paper's real-world C++ projects with git histories
//! (see DESIGN.md for the substitution argument).
//!
//! # Examples
//!
//! ```
//! use sfcc_workload::{generate_model, EditScript, GeneratorConfig};
//!
//! let mut model = generate_model(&GeneratorConfig::small(42));
//! let project = model.render();
//! assert!(project.len() > 1);
//!
//! // Simulate a commit and re-render: exactly one file changes.
//! let mut script = EditScript::new(7);
//! let commit = script.commit(&mut model);
//! let edited = model.render();
//! assert_ne!(project.file(&commit.module), edited.file(&commit.module));
//! ```

pub mod edits;
pub mod gen;
pub mod model;
pub mod stats;

pub use edits::{Commit, EditKind, EditScript};
pub use gen::{generate_model, GeneratorConfig, MAX_CALL_DEPTH};
pub use model::{CalleeRef, FunctionModel, ModuleModel, ProjectModel};
pub use stats::{ChurnStats, ProjectStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv, ModuleInterface};

    fn check(model: &ProjectModel) {
        let mut env = ModuleEnv::new();
        for module in &model.modules {
            let src = model.render_module(module);
            let mut diags = Diagnostics::new();
            let checked = parse_and_check(&module.name, &src, &env, &mut diags)
                .unwrap_or_else(|| panic!("invalid module {}:\n{diags:?}\n{src}", module.name));
            env.insert(module.name.clone(), ModuleInterface::of(&checked.ast));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any seed yields a type-correct project.
        #[test]
        fn any_seed_generates_valid_project(seed: u64) {
            check(&generate_model(&GeneratorConfig::small(seed)));
        }

        /// Any seed + any edit sequence stays type-correct.
        #[test]
        fn any_edit_sequence_stays_valid(seed: u64, edit_seed: u64, edits in 1usize..12) {
            let mut model = generate_model(&GeneratorConfig::small(seed));
            let mut script = EditScript::new(edit_seed);
            for _ in 0..edits {
                script.commit(&mut model);
            }
            check(&model);
        }

        /// A commit changes exactly one module's rendered source.
        #[test]
        fn commits_stay_local(seed in 0u64..1000, edit_seed: u64) {
            let mut model = generate_model(&GeneratorConfig::small(seed));
            let before = model.render();
            let mut script = EditScript::new(edit_seed);
            let commit = script.commit(&mut model);
            let after = model.render();
            let changed: Vec<&str> = before
                .iter()
                .filter(|(name, src)| after.file(name) != Some(src))
                .map(|(name, _)| name)
                .collect();
            prop_assert_eq!(changed, vec![commit.module.as_str()]);
        }
    }
}
