//! # sfcc-state
//!
//! The statefulness layer of the `sfcc` compiler — the primary contribution
//! of *"Enabling Fine-Grained Incremental Builds by Making Compiler
//! Stateful"* (CGO 2024):
//!
//! * [`StateDb`] — per-(function, pass-slot) dormancy records retained
//!   across builds, with streak tracking and garbage collection;
//! * [`SkipPolicy`] / [`DbOracle`] — turning history into skip decisions
//!   for the pass manager;
//! * [`statefile`] — a versioned, checksummed binary state file with
//!   cold-start fallback on any corruption;
//! * [`stats`] — dormancy-rate and stability aggregation for the
//!   evaluation harness.
//!
//! # Examples
//!
//! ```
//! use sfcc_state::{StateDb, SkipPolicy, DbOracle, statefile};
//! use sfcc_passes::SkipOracle;
//!
//! let db = StateDb::new(); // cold start: nothing is ever skipped
//! let oracle = DbOracle::new(&db, SkipPolicy::PreviousBuild);
//! let query = sfcc_passes::PassQuery {
//!     module: "m",
//!     function: "f",
//!     entry_fingerprint: sfcc_ir::Fingerprint(0),
//!     pass: "dce",
//!     slot: 4,
//! };
//! assert!(!oracle.should_skip(&query));
//!
//! // Round-trip through the on-disk format.
//! let bytes = statefile::to_bytes(&db);
//! assert_eq!(statefile::from_bytes(&bytes).unwrap(), db);
//! ```

pub mod codec;
pub mod policy;
pub mod records;
pub mod statefile;
pub mod stats;

pub use codec::DecodeError;
pub use policy::{DbOracle, SkipPolicy};
pub use records::{FunctionRecord, ModuleState, SlotRecord, StateDb};
pub use stats::{DormancyProfile, PassDormancy, StabilityTracker};

#[cfg(test)]
mod integration {
    use super::*;
    use sfcc_ir::Fingerprint;
    use sfcc_passes::{
        FunctionTrace, PassOutcome, PassQuery, PassRecord, PipelineTrace, SkipOracle,
    };

    fn trace(func: &str, outcomes: &[PassOutcome]) -> PipelineTrace {
        PipelineTrace {
            module: "m".into(),
            functions: vec![FunctionTrace {
                function: func.into(),
                entry_fingerprint: Fingerprint(1),
                exit_fingerprint: Fingerprint(2),
                records: outcomes
                    .iter()
                    .enumerate()
                    .map(|(slot, &outcome)| PassRecord {
                        pass: format!("pass{slot}"),
                        slot,
                        outcome,
                        nanos: 1,
                        cost_units: 1,
                    })
                    .collect(),
            }],
            snapshot_clones: 0,
            snapshot_cost_units: 0,
            snapshot_reused: 0,
            batch_count: 0,
            batch_max_cost: 0,
        }
    }

    #[test]
    fn record_then_skip_then_persist() {
        let hash = StateDb::pipeline_hash(&["pass0", "pass1"]);
        let mut db = StateDb::new();
        db.ingest(
            &trace("f", &[PassOutcome::Dormant, PassOutcome::Active]),
            hash,
        );

        // The oracle now advises skipping slot 0 but not slot 1.
        let oracle = DbOracle::new(&db, SkipPolicy::PreviousBuild);
        let q0 = PassQuery {
            module: "m",
            function: "f",
            entry_fingerprint: Fingerprint(1),
            pass: "pass0",
            slot: 0,
        };
        let q1 = PassQuery {
            slot: 1,
            pass: "pass1",
            ..q0
        };
        assert!(oracle.should_skip(&q0));
        assert!(!oracle.should_skip(&q1));

        // Ingest the skipped build and survive a disk round-trip.
        db.ingest(
            &trace("f", &[PassOutcome::Skipped, PassOutcome::Active]),
            hash,
        );
        let back = statefile::from_bytes(&statefile::to_bytes(&db)).unwrap();
        assert_eq!(back, db);
        assert_eq!(
            back.module("m").unwrap().functions["f"].slots[0].times_skipped,
            1
        );
    }
}
