//! Binary codec — re-exported from [`sfcc_codec`], where it lives so the
//! backend's program images can share it.

pub use sfcc_codec::{fnv64, DecodeError, Reader, Writer};
