//! Dormancy statistics used by the experiment harness.
//!
//! Aggregates pass outcomes across pipeline traces into the quantities the
//! paper's evaluation reports: per-pass dormancy rates (Fig. 2), the overall
//! dormancy profile (Fig. 1), and the build-to-build dormancy *stability*
//! that makes skipping profitable (Fig. 5).

use sfcc_passes::{PassOutcome, PipelineTrace};
use std::collections::HashMap;

/// Dormancy counts for one pass name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassDormancy {
    /// Executions that changed the IR.
    pub active: u64,
    /// Executions that changed nothing.
    pub dormant: u64,
    /// Skipped executions.
    pub skipped: u64,
    /// Wall time spent in executed runs (ns).
    pub nanos: u64,
    /// Deterministic cost units of executed runs.
    pub cost_units: u64,
}

impl PassDormancy {
    /// Fraction of executed runs that were dormant (0 when never executed).
    pub fn dormancy_rate(&self) -> f64 {
        let executed = self.active + self.dormant;
        if executed == 0 {
            0.0
        } else {
            self.dormant as f64 / executed as f64
        }
    }
}

/// Aggregated dormancy over any number of traces.
#[derive(Debug, Clone, Default)]
pub struct DormancyProfile {
    /// Per-pass-name counters.
    pub per_pass: HashMap<String, PassDormancy>,
}

impl DormancyProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trace into the profile.
    pub fn add_trace(&mut self, trace: &PipelineTrace) {
        for f in &trace.functions {
            for r in &f.records {
                let entry = self.per_pass.entry(r.pass.clone()).or_default();
                match r.outcome {
                    PassOutcome::Active => entry.active += 1,
                    PassOutcome::Dormant => entry.dormant += 1,
                    PassOutcome::Skipped => entry.skipped += 1,
                }
                if r.outcome != PassOutcome::Skipped {
                    entry.nanos += r.nanos;
                    entry.cost_units += r.cost_units;
                }
            }
        }
    }

    /// Totals across all passes: `(active, dormant, skipped)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.per_pass.values().fold((0, 0, 0), |acc, p| {
            (acc.0 + p.active, acc.1 + p.dormant, acc.2 + p.skipped)
        })
    }

    /// Overall dormancy rate across executed (function, pass) pairs.
    pub fn overall_dormancy_rate(&self) -> f64 {
        let (a, d, _) = self.totals();
        if a + d == 0 {
            0.0
        } else {
            d as f64 / (a + d) as f64
        }
    }

    /// Pass names sorted by descending dormancy rate.
    pub fn ranked(&self) -> Vec<(&str, PassDormancy)> {
        let mut rows: Vec<(&str, PassDormancy)> = self
            .per_pass
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        rows.sort_by(|a, b| {
            b.1.dormancy_rate()
                .partial_cmp(&a.1.dormancy_rate())
                .expect("rates are finite")
                .then(a.0.cmp(b.0))
        });
        rows
    }
}

/// Compilation-over-compilation dormancy stability: given a pass was
/// dormant the last time a function was compiled, how often is it dormant
/// the next time?
///
/// This conditional probability is the empirical justification of the whole
/// technique — a skip is exactly a bet that dormancy persists from one
/// compilation of a function to the next.
#[derive(Debug, Clone, Default)]
pub struct StabilityTracker {
    /// Most recent executed outcome per (function, slot). `true` = dormant.
    prev: HashMap<(String, usize), bool>,
    /// Per-pass-name `(dormant_then_dormant, dormant_then_any)` counters.
    counts: HashMap<String, (u64, u64)>,
}

impl StabilityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one compilation's trace. Skipped slots are excluded (their
    /// true outcome is unknown); outcomes for functions not recompiled this
    /// build carry over untouched, so samples pair *consecutive
    /// compilations* of each function.
    pub fn observe(&mut self, trace: &PipelineTrace) {
        for f in &trace.functions {
            for r in &f.records {
                let dormant_now = match r.outcome {
                    PassOutcome::Active => false,
                    PassOutcome::Dormant => true,
                    // A skip carries the previous belief forward unchanged.
                    PassOutcome::Skipped => continue,
                };
                let key = (f.function.clone(), r.slot);
                if let Some(&was_dormant) = self.prev.get(&key) {
                    if was_dormant {
                        let c = self.counts.entry(r.pass.clone()).or_default();
                        c.1 += 1;
                        if dormant_now {
                            c.0 += 1;
                        }
                    }
                }
                self.prev.insert(key, dormant_now);
            }
        }
    }

    /// Stability per pass name: `P(dormant_n | dormant_{n-1})`, with the
    /// sample count. Passes never observed dormant twice are omitted.
    pub fn per_pass(&self) -> Vec<(String, f64, u64)> {
        let mut rows: Vec<(String, f64, u64)> = self
            .counts
            .iter()
            .filter(|(_, (_, total))| *total > 0)
            .map(|(k, (hit, total))| (k.clone(), *hit as f64 / *total as f64, *total))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Overall stability across all passes; `None` before two observations.
    pub fn overall(&self) -> Option<f64> {
        let (hit, total) = self
            .counts
            .values()
            .fold((0u64, 0u64), |acc, (h, t)| (acc.0 + h, acc.1 + t));
        if total == 0 {
            None
        } else {
            Some(hit as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::Fingerprint;
    use sfcc_passes::{FunctionTrace, PassRecord};

    fn trace(outcomes: &[(&str, PassOutcome)]) -> PipelineTrace {
        PipelineTrace {
            module: "m".into(),
            functions: vec![FunctionTrace {
                function: "f".into(),
                entry_fingerprint: Fingerprint(0),
                exit_fingerprint: Fingerprint(0),
                records: outcomes
                    .iter()
                    .enumerate()
                    .map(|(slot, (pass, outcome))| PassRecord {
                        pass: pass.to_string(),
                        slot,
                        outcome: *outcome,
                        nanos: 10,
                        cost_units: 5,
                    })
                    .collect(),
            }],
            snapshot_clones: 0,
            snapshot_cost_units: 0,
            snapshot_reused: 0,
            batch_count: 0,
            batch_max_cost: 0,
        }
    }

    #[test]
    fn profile_counts_outcomes() {
        let mut p = DormancyProfile::new();
        p.add_trace(&trace(&[
            ("a", PassOutcome::Active),
            ("b", PassOutcome::Dormant),
            ("b", PassOutcome::Dormant),
            ("c", PassOutcome::Skipped),
        ]));
        assert_eq!(p.totals(), (1, 2, 1));
        assert_eq!(p.per_pass["b"].dormancy_rate(), 1.0);
        assert_eq!(p.per_pass["a"].dormancy_rate(), 0.0);
        assert!((p.overall_dormancy_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn skipped_runs_do_not_accrue_cost() {
        let mut p = DormancyProfile::new();
        p.add_trace(&trace(&[("a", PassOutcome::Skipped)]));
        assert_eq!(p.per_pass["a"].nanos, 0);
        assert_eq!(p.per_pass["a"].cost_units, 0);
    }

    #[test]
    fn ranked_orders_by_rate() {
        let mut p = DormancyProfile::new();
        p.add_trace(&trace(&[
            ("hot", PassOutcome::Active),
            ("cold", PassOutcome::Dormant),
        ]));
        let ranked = p.ranked();
        assert_eq!(ranked[0].0, "cold");
        assert_eq!(ranked[1].0, "hot");
    }

    #[test]
    fn stability_tracks_dormant_persistence() {
        let mut t = StabilityTracker::new();
        t.observe(&trace(&[("p", PassOutcome::Dormant)]));
        assert_eq!(t.overall(), None);
        t.observe(&trace(&[("p", PassOutcome::Dormant)]));
        assert_eq!(t.overall(), Some(1.0));
        t.observe(&trace(&[("p", PassOutcome::Active)]));
        assert_eq!(t.overall(), Some(0.5));
        let rows = t.per_pass();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].2, 2);
    }

    #[test]
    fn stability_ignores_skips_but_carries_state() {
        let mut t = StabilityTracker::new();
        t.observe(&trace(&[("p", PassOutcome::Dormant)]));
        t.observe(&trace(&[("p", PassOutcome::Skipped)]));
        // The skip itself is not a sample.
        assert_eq!(t.overall(), None);
        // But dormancy carried through: the next executed dormant counts.
        t.observe(&trace(&[("p", PassOutcome::Dormant)]));
        assert_eq!(t.overall(), Some(1.0));
    }

    #[test]
    fn active_previous_build_is_not_a_sample() {
        let mut t = StabilityTracker::new();
        t.observe(&trace(&[("p", PassOutcome::Active)]));
        t.observe(&trace(&[("p", PassOutcome::Dormant)]));
        assert_eq!(t.overall(), None);
    }
}
