//! Skip policies: how dormancy history turns into skip decisions.
//!
//! [`DbOracle`] implements the pass manager's [`SkipOracle`] against a
//! [`StateDb`], under a configurable [`SkipPolicy`]. The paper's design
//! point is [`SkipPolicy::PreviousBuild`]; the others exist for the
//! ablation study (experiment E10).

use crate::records::StateDb;
use sfcc_passes::{PassQuery, SkipOracle};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which dormant passes may be skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipPolicy {
    /// Never skip — the stateless baseline.
    Never,
    /// Skip a pass that was dormant in the previous build (the paper's
    /// design point).
    PreviousBuild,
    /// Skip a pass only after it has been dormant `k` builds in a row —
    /// a more conservative bet.
    Consecutive(u32),
    /// Skip a pass that was dormant in a strict majority of the last
    /// `window` observed builds (window capped at 8) — tolerant of one-off
    /// activity, unlike the streak policies.
    MajorityDormant(u8),
    /// Skip every pass with *any* record (upper bound on time savings; used
    /// only to bound the ablation, not a correct design).
    AlwaysSkipKnown,
}

impl SkipPolicy {
    /// A short stable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            SkipPolicy::Never => "never".to_string(),
            SkipPolicy::PreviousBuild => "prev-build".to_string(),
            SkipPolicy::Consecutive(k) => format!("consec-{k}"),
            SkipPolicy::MajorityDormant(w) => format!("majority-{w}"),
            SkipPolicy::AlwaysSkipKnown => "always".to_string(),
        }
    }
}

/// A [`SkipOracle`] backed by a [`StateDb`].
///
/// Holds the database by reference for the duration of one compilation; the
/// driver ingests the resulting trace afterwards.
#[derive(Debug)]
pub struct DbOracle<'a> {
    db: &'a StateDb,
    policy: SkipPolicy,
    /// Pipeline slots that must never be skipped (e.g. passes later passes
    /// structurally depend on — `mem2reg` feeds everything).
    protected: HashSet<usize>,
    skips: AtomicU64,
    queries: AtomicU64,
}

impl<'a> DbOracle<'a> {
    /// Creates an oracle over `db` with `policy` and no protected slots.
    pub fn new(db: &'a StateDb, policy: SkipPolicy) -> Self {
        DbOracle {
            db,
            policy,
            protected: HashSet::new(),
            skips: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }
    }

    /// Marks pipeline slots that must always execute.
    pub fn with_protected(mut self, slots: impl IntoIterator<Item = usize>) -> Self {
        self.protected = slots.into_iter().collect();
        self
    }

    /// `(queries, skips)` counters accumulated so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.skips.load(Ordering::Relaxed),
        )
    }
}

impl<'a> SkipOracle for DbOracle<'a> {
    fn should_skip(&self, query: &PassQuery<'_>) -> bool {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if self.policy == SkipPolicy::Never || self.protected.contains(&query.slot) {
            return false;
        }
        let Some(module) = self.db.module(query.module) else {
            return false;
        };
        let Some(record) = module.functions.get(query.function) else {
            return false;
        };
        if query.slot >= record.slots.len() {
            return false; // pipeline grew; unknown slot must run
        }
        let skip = match self.policy {
            SkipPolicy::Never => false,
            SkipPolicy::PreviousBuild => record.is_dormant(query.slot),
            SkipPolicy::Consecutive(k) => {
                record.is_dormant(query.slot) && record.streak(query.slot) >= k
            }
            SkipPolicy::MajorityDormant(window) => {
                let slot = record.slots[query.slot];
                let n = slot.window_len(window);
                n > 0 && slot.dormant_in_window(window) * 2 > n as u32
            }
            SkipPolicy::AlwaysSkipKnown => true,
        };
        if skip {
            self.skips.fetch_add(1, Ordering::Relaxed);
        }
        skip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_ir::Fingerprint;
    use sfcc_passes::{FunctionTrace, PassOutcome, PassRecord, PipelineTrace};

    fn db_with(outcome_rounds: &[&[PassOutcome]]) -> StateDb {
        let mut db = StateDb::new();
        for outcomes in outcome_rounds {
            let trace = PipelineTrace {
                module: "m".into(),
                functions: vec![FunctionTrace {
                    function: "f".into(),
                    entry_fingerprint: Fingerprint(1),
                    exit_fingerprint: Fingerprint(1),
                    records: outcomes
                        .iter()
                        .enumerate()
                        .map(|(slot, &outcome)| PassRecord {
                            pass: format!("p{slot}"),
                            slot,
                            outcome,
                            nanos: 0,
                            cost_units: 0,
                        })
                        .collect(),
                }],
                snapshot_clones: 0,
                snapshot_cost_units: 0,
                snapshot_reused: 0,
                batch_count: 0,
                batch_max_cost: 0,
            };
            db.ingest(&trace, Fingerprint(9));
        }
        db
    }

    fn query<'a>(slot: usize) -> PassQuery<'a> {
        PassQuery {
            module: "m",
            function: "f",
            entry_fingerprint: Fingerprint(1),
            pass: "p",
            slot,
        }
    }

    #[test]
    fn never_policy_never_skips() {
        let db = db_with(&[&[PassOutcome::Dormant]]);
        let oracle = DbOracle::new(&db, SkipPolicy::Never);
        assert!(!oracle.should_skip(&query(0)));
        assert_eq!(oracle.stats(), (1, 0));
    }

    #[test]
    fn previous_build_skips_dormant_only() {
        let db = db_with(&[&[PassOutcome::Dormant, PassOutcome::Active]]);
        let oracle = DbOracle::new(&db, SkipPolicy::PreviousBuild);
        assert!(oracle.should_skip(&query(0)));
        assert!(!oracle.should_skip(&query(1)));
        assert_eq!(oracle.stats(), (2, 1));
    }

    #[test]
    fn consecutive_policy_requires_streak() {
        let one = db_with(&[&[PassOutcome::Dormant]]);
        let oracle = DbOracle::new(&one, SkipPolicy::Consecutive(2));
        assert!(!oracle.should_skip(&query(0)));

        let two = db_with(&[&[PassOutcome::Dormant], &[PassOutcome::Dormant]]);
        let oracle = DbOracle::new(&two, SkipPolicy::Consecutive(2));
        assert!(oracle.should_skip(&query(0)));
    }

    #[test]
    fn unknown_function_never_skips() {
        let db = db_with(&[&[PassOutcome::Dormant]]);
        let oracle = DbOracle::new(&db, SkipPolicy::PreviousBuild);
        let q = PassQuery {
            module: "m",
            function: "brand_new",
            entry_fingerprint: Fingerprint(5),
            pass: "p",
            slot: 0,
        };
        assert!(!oracle.should_skip(&q));
    }

    #[test]
    fn unknown_slot_never_skips() {
        let db = db_with(&[&[PassOutcome::Dormant]]);
        let oracle = DbOracle::new(&db, SkipPolicy::PreviousBuild);
        assert!(!oracle.should_skip(&query(5)));
    }

    #[test]
    fn protected_slots_always_run() {
        let db = db_with(&[&[PassOutcome::Dormant, PassOutcome::Dormant]]);
        let oracle = DbOracle::new(&db, SkipPolicy::PreviousBuild).with_protected([0]);
        assert!(!oracle.should_skip(&query(0)));
        assert!(oracle.should_skip(&query(1)));
    }

    #[test]
    fn always_policy_skips_known_functions() {
        let db = db_with(&[&[PassOutcome::Active]]);
        let oracle = DbOracle::new(&db, SkipPolicy::AlwaysSkipKnown);
        assert!(oracle.should_skip(&query(0)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SkipPolicy::Never.label(), "never");
        assert_eq!(SkipPolicy::PreviousBuild.label(), "prev-build");
        assert_eq!(SkipPolicy::Consecutive(3).label(), "consec-3");
        assert_eq!(SkipPolicy::MajorityDormant(4).label(), "majority-4");
        assert_eq!(SkipPolicy::AlwaysSkipKnown.label(), "always");
    }

    #[test]
    fn majority_policy_tolerates_one_off_activity() {
        // D D A D: 3 of 4 dormant — majority-4 skips, prev-build also skips
        // (last was dormant), but consec-2 does not (streak reset by A).
        let db = db_with(&[
            &[PassOutcome::Dormant],
            &[PassOutcome::Dormant],
            &[PassOutcome::Active],
            &[PassOutcome::Dormant],
        ]);
        assert!(DbOracle::new(&db, SkipPolicy::MajorityDormant(4)).should_skip(&query(0)));
        assert!(!DbOracle::new(&db, SkipPolicy::Consecutive(2)).should_skip(&query(0)));
    }

    #[test]
    fn majority_policy_resists_mostly_active_slots() {
        // A A D: 1 of 3 dormant — last outcome dormant, so prev-build would
        // skip, but majority-4 (3 observed) does not.
        let db = db_with(&[
            &[PassOutcome::Active],
            &[PassOutcome::Active],
            &[PassOutcome::Dormant],
        ]);
        assert!(!DbOracle::new(&db, SkipPolicy::MajorityDormant(4)).should_skip(&query(0)));
        assert!(DbOracle::new(&db, SkipPolicy::PreviousBuild).should_skip(&query(0)));
    }

    #[test]
    fn majority_policy_with_no_observations_never_skips() {
        let db = StateDb::new();
        let oracle = DbOracle::new(&db, SkipPolicy::MajorityDormant(4));
        assert!(!oracle.should_skip(&query(0)));
    }
}
