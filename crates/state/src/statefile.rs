//! On-disk persistence of the [`StateDb`].
//!
//! Format: `"SFCCST\0" + version + payload + fnv64(payload)`. Any decoding
//! problem — truncation, corruption, version skew — degrades to a cold
//! start rather than an error the user sees, because losing dormancy state
//! only costs speed, never correctness.

use crate::codec::{fnv64, DecodeError, Reader, Writer};
use crate::records::{FunctionRecord, ModuleState, SlotRecord, StateDb};
use sfcc_faultfs::Durability;
use sfcc_ir::Fingerprint;
use std::collections::HashMap;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 7] = b"SFCCST\0";
/// Current format version. Version 2 added the per-slot outcome-history
/// window; older files are rejected and the compiler cold-starts.
pub const FORMAT_VERSION: u32 = 2;

/// Serializes the database to bytes.
pub fn to_bytes(db: &StateDb) -> Vec<u8> {
    let mut payload = Writer::new();
    // Deterministic ordering: sort module and function names.
    let mut module_names: Vec<&String> = db.modules.keys().collect();
    module_names.sort();
    payload.usize(module_names.len());
    for name in module_names {
        let module = &db.modules[name];
        payload.str(name);
        payload.u128(module.pipeline_hash.0);
        payload.u64(module.build_counter);
        let mut fn_names: Vec<&String> = module.functions.keys().collect();
        fn_names.sort();
        payload.usize(fn_names.len());
        for fname in fn_names {
            let rec = &module.functions[fname];
            payload.str(fname);
            payload.u128(rec.fingerprint.0);
            payload.u128(rec.exit_fingerprint.0);
            payload.u64(rec.last_build);
            payload.usize(rec.slots.len());
            for slot in &rec.slots {
                payload.u8(slot.dormant as u8);
                payload.u32(slot.dormant_streak);
                payload.u32(slot.times_skipped);
                payload.u8(slot.history);
                payload.u8(slot.observations);
            }
        }
    }
    let payload = payload.into_bytes();

    let mut out = Writer::new();
    out.raw(MAGIC);
    out.u32(FORMAT_VERSION);
    out.raw(&payload);
    out.u64(fnv64(&payload));
    out.into_bytes()
}

/// Deserializes a database from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on any malformed input; callers should treat
/// that as a cold start.
pub fn from_bytes(bytes: &[u8]) -> Result<StateDb, DecodeError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    // The trailer checksum is a varint at the very end; decode the payload
    // first, then compare against the checksum of the consumed region.
    let after_header = MAGIC.len() + (bytes.len() - MAGIC.len() - r.remaining());
    let mut modules = HashMap::new();
    let module_count = r.usize()?;
    for _ in 0..module_count {
        let name = r.str()?;
        let pipeline_hash = Fingerprint(r.u128()?);
        let build_counter = r.u64()?;
        let fn_count = r.usize()?;
        let mut functions = HashMap::new();
        for _ in 0..fn_count {
            let fname = r.str()?;
            let fingerprint = Fingerprint(r.u128()?);
            let exit_fingerprint = Fingerprint(r.u128()?);
            let last_build = r.u64()?;
            let slot_count = r.usize()?;
            if slot_count > r.remaining() {
                return Err(DecodeError::BadLength);
            }
            let mut slots = Vec::with_capacity(slot_count);
            for _ in 0..slot_count {
                slots.push(SlotRecord {
                    dormant: r.u8()? != 0,
                    dormant_streak: r.u32()?,
                    times_skipped: r.u32()?,
                    history: r.u8()?,
                    observations: r.u8()?,
                });
            }
            functions.insert(
                fname,
                FunctionRecord {
                    fingerprint,
                    exit_fingerprint,
                    slots,
                    last_build,
                },
            );
        }
        modules.insert(
            name,
            ModuleState {
                pipeline_hash,
                functions,
                build_counter,
            },
        );
    }
    let payload_end = MAGIC.len() + (bytes.len() - MAGIC.len() - r.remaining());
    let declared = r.u64()?;
    if !r.is_done() {
        return Err(DecodeError::Corrupt);
    }
    if fnv64(&bytes[after_header..payload_end]) != declared {
        return Err(DecodeError::Corrupt);
    }
    Ok(StateDb { modules })
}

/// Writes the database to `path` atomically (unique temp + rename, via the
/// fault-injectable I/O layer), with no sync points.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(db: &StateDb, path: &Path) -> io::Result<()> {
    save_with(db, path, Durability::Fast)
}

/// [`save`] with an explicit [`Durability`] mode.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_with(db: &StateDb, path: &Path, durability: Durability) -> io::Result<()> {
    sfcc_faultfs::atomic_write(path, &to_bytes(db), durability)
}

/// Loads the database from `path`; any missing/corrupt file yields a cold
/// start (`StateDb::new()`), with the reason in the second tuple slot.
pub fn load_or_default(path: &Path) -> (StateDb, Option<DecodeError>) {
    match sfcc_faultfs::read(path) {
        Ok(bytes) => match from_bytes(&bytes) {
            Ok(db) => (db, None),
            Err(e) => (StateDb::new(), Some(e)),
        },
        Err(_) => (StateDb::new(), None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_db() -> StateDb {
        let mut db = StateDb::new();
        let mut functions = HashMap::new();
        functions.insert(
            "f".to_string(),
            FunctionRecord {
                fingerprint: Fingerprint(42),
                exit_fingerprint: Fingerprint(43),
                slots: vec![
                    SlotRecord {
                        dormant: true,
                        dormant_streak: 3,
                        times_skipped: 1,
                        history: 0b0111,
                        observations: 4,
                    },
                    SlotRecord {
                        dormant: false,
                        dormant_streak: 0,
                        times_skipped: 0,
                        history: 0,
                        observations: 1,
                    },
                ],
                last_build: 7,
            },
        );
        db.modules.insert(
            "m".to_string(),
            ModuleState {
                pipeline_hash: Fingerprint(11),
                functions,
                build_counter: 7,
            },
        );
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let bytes = to_bytes(&db);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = StateDb::new();
        assert_eq!(from_bytes(&to_bytes(&db)).unwrap(), db);
    }

    #[test]
    fn serialization_is_deterministic() {
        let db = sample_db();
        assert_eq!(to_bytes(&db), to_bytes(&db));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample_db());
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = to_bytes(&sample_db());
        bytes[7] = 99; // version varint
        assert_eq!(from_bytes(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn flipped_payload_byte_detected() {
        let mut bytes = to_bytes(&sample_db());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = to_bytes(&sample_db());
        for cut in [bytes.len() - 1, bytes.len() / 2, 8] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let dir = std::env::temp_dir().join(format!("sfcc-state-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        let db = sample_db();
        save(&db, &path).unwrap();
        let (loaded, err) = load_or_default(&path);
        assert!(err.is_none());
        assert_eq!(loaded, db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_cold_start() {
        let (db, err) = load_or_default(Path::new("/nonexistent/sfcc-state"));
        assert!(err.is_none());
        assert_eq!(db, StateDb::new());
    }

    #[test]
    fn corrupt_file_is_cold_start_with_reason() {
        let dir = std::env::temp_dir().join(format!("sfcc-state-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        std::fs::write(&path, b"garbage").unwrap();
        let (db, err) = load_or_default(&path);
        assert!(err.is_some());
        assert_eq!(db, StateDb::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            streaks in proptest::collection::vec((any::<bool>(), 0u32..100, 0u32..100), 0..30),
            build in 0u64..1000,
            fp in any::<u128>(),
        ) {
            let mut db = StateDb::new();
            let mut functions = HashMap::new();
            functions.insert("f".to_string(), FunctionRecord {
                fingerprint: Fingerprint(fp),
                exit_fingerprint: Fingerprint(fp ^ 1),
                slots: streaks.iter().map(|&(d, s, k)| SlotRecord {
                    dormant: d,
                    dormant_streak: s,
                    times_skipped: k,
                    history: (s % 251) as u8,
                    observations: (k % 9) as u8,
                }).collect(),
                last_build: build,
            });
            db.modules.insert("m".to_string(), ModuleState {
                pipeline_hash: Fingerprint(fp ^ 2),
                functions,
                build_counter: build,
            });
            prop_assert_eq!(from_bytes(&to_bytes(&db)).unwrap(), db);
        }
    }
}
