//! Dormancy records: what the stateful compiler remembers between builds.
//!
//! The paper's central data structure. For every function the compiler
//! keeps, per pipeline *slot* (pass position), whether the pass was active
//! or dormant in the previous build and how many consecutive builds it has
//! been dormant — enough to drive every skip policy in the evaluation.

use sfcc_ir::Fingerprint;
use sfcc_passes::{FunctionTrace, PassOutcome, PipelineTrace};
use std::collections::HashMap;

/// Per-(function, slot) dormancy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotRecord {
    /// Outcome of the most recent *executed* run of this slot
    /// (`true` = dormant). Skipped slots keep their previous value — a skip
    /// is a bet that the pass is still dormant.
    pub dormant: bool,
    /// Number of consecutive builds (executed or skipped) this slot has been
    /// dormant; reset to zero when the pass fires.
    pub dormant_streak: u32,
    /// Total times this slot was skipped for this function (statistics).
    pub times_skipped: u32,
    /// Sliding window of the last up-to-8 builds' outcomes, newest in bit 0
    /// (`1` = dormant or skipped-as-dormant). Drives the majority policy.
    pub history: u8,
    /// How many builds have contributed to `history` (saturates at 8).
    pub observations: u8,
}

impl SlotRecord {
    /// Number of dormant outcomes among the last `window` observed builds.
    pub fn dormant_in_window(&self, window: u8) -> u32 {
        let n = window.min(self.observations).min(8);
        if n == 0 {
            return 0;
        }
        let mask = if n >= 8 { u8::MAX } else { (1u8 << n) - 1 };
        (self.history & mask).count_ones()
    }

    /// Builds actually observed within `window` (≤ 8).
    pub fn window_len(&self, window: u8) -> u8 {
        window.min(self.observations).min(8)
    }
}

/// What the compiler remembers about one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionRecord {
    /// Structural fingerprint at pipeline entry in the recorded build.
    pub fingerprint: Fingerprint,
    /// Fingerprint after the pipeline (used to detect output changes).
    pub exit_fingerprint: Fingerprint,
    /// One record per pipeline slot.
    pub slots: Vec<SlotRecord>,
    /// Build counter value when this record was last refreshed.
    pub last_build: u64,
}

impl FunctionRecord {
    /// Whether the slot at `index` is recorded dormant.
    pub fn is_dormant(&self, index: usize) -> bool {
        self.slots.get(index).is_some_and(|s| s.dormant)
    }

    /// The dormant streak of the slot at `index` (0 when unknown).
    pub fn streak(&self, index: usize) -> u32 {
        self.slots.get(index).map_or(0, |s| s.dormant_streak)
    }
}

impl ModuleState {
    /// A deterministic stamp of this module's dormancy content, for change
    /// detection by incremental engines: equal stamps mean the state would
    /// drive identical skip decisions. Function order does not matter.
    pub fn content_stamp(&self) -> u64 {
        let mut repr = String::new();
        repr.push_str(&format!(
            "ph={:x};bc={};",
            self.pipeline_hash.0, self.build_counter
        ));
        let mut names: Vec<&String> = self.functions.keys().collect();
        names.sort();
        for name in names {
            let record = &self.functions[name];
            repr.push_str(&format!(
                "{name}:{:x}/{:x}@{}",
                record.fingerprint.0, record.exit_fingerprint.0, record.last_build
            ));
            for slot in &record.slots {
                repr.push_str(&format!(
                    "|{}{}s{}h{}o{}",
                    slot.dormant as u8,
                    slot.dormant_streak,
                    slot.times_skipped,
                    slot.history,
                    slot.observations
                ));
            }
            repr.push(';');
        }
        crate::codec::fnv64(repr.as_bytes())
    }
}

/// Per-module dormancy state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleState {
    /// Hash of the pipeline's slot names; a mismatch invalidates the state.
    pub pipeline_hash: Fingerprint,
    /// Function name → record. Keyed by *name* so that an edited function
    /// inherits its predecessor's dormancy profile (the paper's transfer
    /// assumption: small edits rarely change which passes matter).
    pub functions: HashMap<String, FunctionRecord>,
    /// Monotonic build counter for this module.
    pub build_counter: u64,
}

/// The complete on-disk state: one entry per module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateDb {
    /// Module name → state.
    pub modules: HashMap<String, ModuleState>,
}

impl StateDb {
    /// Creates an empty database (a cold start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total function records across all modules.
    pub fn function_count(&self) -> usize {
        self.modules.values().map(|m| m.functions.len()).sum()
    }

    /// Read access to a module's state.
    pub fn module(&self, name: &str) -> Option<&ModuleState> {
        self.modules.get(name)
    }

    /// Slots currently believed dormant, across all modules and functions
    /// (telemetry gauge for the metrics registry).
    pub fn dormant_slot_count(&self) -> u64 {
        self.modules
            .values()
            .flat_map(|m| m.functions.values())
            .flat_map(|f| f.slots.iter())
            .filter(|s| s.dormant)
            .count() as u64
    }

    /// Lifetime skip decisions recorded across all slots (telemetry gauge
    /// for the metrics registry).
    pub fn total_recorded_skips(&self) -> u64 {
        self.modules
            .values()
            .flat_map(|m| m.functions.values())
            .flat_map(|f| f.slots.iter())
            .map(|s| u64::from(s.times_skipped))
            .sum()
    }

    /// Hash of a pipeline's slot names, for invalidation.
    pub fn pipeline_hash(slot_names: &[&str]) -> Fingerprint {
        Fingerprint::of_str(&slot_names.join("\u{1f}"))
    }

    /// Folds one build's [`PipelineTrace`] into the database.
    ///
    /// * Skipped slots extend their dormant streak (the skip presumed
    ///   dormancy) and bump the skip counter.
    /// * Function records absent from the trace are dropped (garbage
    ///   collection of deleted functions).
    /// * A pipeline-hash mismatch resets the module before ingesting.
    pub fn ingest(&mut self, trace: &PipelineTrace, pipeline_hash: Fingerprint) {
        let module = self.modules.entry(trace.module.clone()).or_default();
        if module.pipeline_hash != pipeline_hash {
            module.functions.clear();
            module.pipeline_hash = pipeline_hash;
        }
        module.build_counter += 1;
        let build = module.build_counter;

        let mut fresh: HashMap<String, FunctionRecord> = HashMap::new();
        for ftrace in &trace.functions {
            let old = module.functions.get(&ftrace.function);
            fresh.insert(ftrace.function.clone(), merge(old, ftrace, build));
        }
        module.functions = fresh;
    }
}

/// Merges one function's new trace into its previous record.
fn merge(old: Option<&FunctionRecord>, trace: &FunctionTrace, build: u64) -> FunctionRecord {
    let mut slots = Vec::with_capacity(trace.records.len());
    for (i, rec) in trace.records.iter().enumerate() {
        let prev = old
            .and_then(|o| o.slots.get(i))
            .copied()
            .unwrap_or_default();
        let push_history = |dormant_bit: bool| -> (u8, u8) {
            (
                (prev.history << 1) | dormant_bit as u8,
                prev.observations.saturating_add(1).min(8),
            )
        };
        let slot = match rec.outcome {
            PassOutcome::Active => {
                let (history, observations) = push_history(false);
                SlotRecord {
                    dormant: false,
                    dormant_streak: 0,
                    times_skipped: prev.times_skipped,
                    history,
                    observations,
                }
            }
            PassOutcome::Dormant => {
                let (history, observations) = push_history(true);
                SlotRecord {
                    dormant: true,
                    dormant_streak: prev.dormant_streak.saturating_add(1),
                    times_skipped: prev.times_skipped,
                    history,
                    observations,
                }
            }
            // A skip presumes dormancy; record it as such so the window
            // reflects the compiler's acted-upon belief.
            PassOutcome::Skipped => {
                let (history, observations) = push_history(true);
                SlotRecord {
                    dormant: prev.dormant,
                    dormant_streak: prev.dormant_streak.saturating_add(1),
                    times_skipped: prev.times_skipped.saturating_add(1),
                    history,
                    observations,
                }
            }
        };
        slots.push(slot);
    }
    FunctionRecord {
        fingerprint: trace.entry_fingerprint,
        exit_fingerprint: trace.exit_fingerprint,
        slots,
        last_build: build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_passes::PassRecord;

    fn trace_of(module: &str, func: &str, outcomes: &[PassOutcome]) -> PipelineTrace {
        PipelineTrace {
            module: module.to_string(),
            functions: vec![FunctionTrace {
                function: func.to_string(),
                entry_fingerprint: Fingerprint(1),
                exit_fingerprint: Fingerprint(2),
                records: outcomes
                    .iter()
                    .enumerate()
                    .map(|(slot, &outcome)| PassRecord {
                        pass: format!("p{slot}"),
                        slot,
                        outcome,
                        nanos: 1,
                        cost_units: 1,
                    })
                    .collect(),
            }],
        }
    }

    const HASH: Fingerprint = Fingerprint(99);

    #[test]
    fn ingest_creates_records() {
        let mut db = StateDb::new();
        db.ingest(
            &trace_of("m", "f", &[PassOutcome::Active, PassOutcome::Dormant]),
            HASH,
        );
        let rec = &db.module("m").unwrap().functions["f"];
        assert!(!rec.is_dormant(0));
        assert!(rec.is_dormant(1));
        assert_eq!(rec.streak(1), 1);
        assert_eq!(db.function_count(), 1);
    }

    #[test]
    fn streaks_accumulate_and_reset() {
        let mut db = StateDb::new();
        for _ in 0..3 {
            db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        }
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 3);
        db.ingest(&trace_of("m", "f", &[PassOutcome::Active]), HASH);
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 0);
    }

    #[test]
    fn skip_extends_streak_and_counts() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        db.ingest(&trace_of("m", "f", &[PassOutcome::Skipped]), HASH);
        let rec = &db.module("m").unwrap().functions["f"];
        assert!(rec.is_dormant(0));
        assert_eq!(rec.streak(0), 2);
        assert_eq!(rec.slots[0].times_skipped, 1);
    }

    #[test]
    fn deleted_functions_are_garbage_collected() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        db.ingest(&trace_of("m", "g", &[PassOutcome::Dormant]), HASH);
        assert!(!db.module("m").unwrap().functions.contains_key("f"));
        assert!(db.module("m").unwrap().functions.contains_key("g"));
    }

    #[test]
    fn pipeline_change_resets_module() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 1);
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), Fingerprint(7));
        // Reset: streak restarts at 1, not 2.
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 1);
    }

    #[test]
    fn build_counter_increments() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[]), HASH);
        db.ingest(&trace_of("m", "f", &[]), HASH);
        assert_eq!(db.module("m").unwrap().build_counter, 2);
        assert_eq!(db.module("m").unwrap().functions["f"].last_build, 2);
    }

    #[test]
    fn pipeline_hash_distinguishes_orders() {
        let a = StateDb::pipeline_hash(&["x", "y"]);
        let b = StateDb::pipeline_hash(&["y", "x"]);
        let c = StateDb::pipeline_hash(&["x", "y"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn modules_are_independent() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("a", "f", &[PassOutcome::Dormant]), HASH);
        db.ingest(&trace_of("b", "f", &[PassOutcome::Active]), HASH);
        assert!(db.module("a").unwrap().functions["f"].is_dormant(0));
        assert!(!db.module("b").unwrap().functions["f"].is_dormant(0));
    }
}
