//! Dormancy records: what the stateful compiler remembers between builds.
//!
//! The paper's central data structure. For every function the compiler
//! keeps, per pipeline *slot* (pass position), whether the pass was active
//! or dormant in the previous build and how many consecutive builds it has
//! been dormant — enough to drive every skip policy in the evaluation.

use sfcc_ir::Fingerprint;
use sfcc_passes::{FunctionTrace, PassOutcome, PipelineTrace};
use std::collections::HashMap;

/// Per-(function, slot) dormancy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotRecord {
    /// Outcome of the most recent *executed* run of this slot
    /// (`true` = dormant). Skipped slots keep their previous value — a skip
    /// is a bet that the pass is still dormant.
    pub dormant: bool,
    /// Number of consecutive builds (executed or skipped) this slot has been
    /// dormant; reset to zero when the pass fires.
    pub dormant_streak: u32,
    /// Total times this slot was skipped for this function (statistics).
    pub times_skipped: u32,
    /// Sliding window of the last up-to-8 builds' outcomes, newest in bit 0
    /// (`1` = dormant or skipped-as-dormant). Drives the majority policy.
    pub history: u8,
    /// How many builds have contributed to `history` (saturates at 8).
    pub observations: u8,
}

impl SlotRecord {
    /// Number of dormant outcomes among the last `window` observed builds.
    pub fn dormant_in_window(&self, window: u8) -> u32 {
        let n = window.min(self.observations).min(8);
        if n == 0 {
            return 0;
        }
        let mask = if n >= 8 { u8::MAX } else { (1u8 << n) - 1 };
        (self.history & mask).count_ones()
    }

    /// Builds actually observed within `window` (≤ 8).
    pub fn window_len(&self, window: u8) -> u8 {
        window.min(self.observations).min(8)
    }
}

/// What the compiler remembers about one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionRecord {
    /// Structural fingerprint at pipeline entry in the recorded build.
    pub fingerprint: Fingerprint,
    /// Fingerprint after the pipeline (used to detect output changes).
    pub exit_fingerprint: Fingerprint,
    /// One record per pipeline slot.
    pub slots: Vec<SlotRecord>,
    /// Build counter value when this record was last refreshed.
    pub last_build: u64,
}

impl FunctionRecord {
    /// A deterministic stamp of this record's skip-relevant content.
    ///
    /// Unlike [`ModuleState::content_stamp`] this excludes `last_build` and
    /// any module-wide counter: equal stamps mean the record would drive
    /// identical skip decisions for this one function. That makes the stamp
    /// stable across no-op rebuilds and independent of the order in which
    /// sibling functions were re-optimized — the property the per-function
    /// `state:module::function` build input relies on.
    pub fn content_stamp(&self) -> u64 {
        let mut repr = format!("{:x}/{:x}", self.fingerprint.0, self.exit_fingerprint.0);
        for slot in &self.slots {
            repr.push_str(&format!(
                "|{}{}s{}h{}o{}",
                slot.dormant as u8,
                slot.dormant_streak,
                slot.times_skipped,
                slot.history,
                slot.observations
            ));
        }
        crate::codec::fnv64(repr.as_bytes())
    }

    /// Whether the slot at `index` is recorded dormant.
    pub fn is_dormant(&self, index: usize) -> bool {
        self.slots.get(index).is_some_and(|s| s.dormant)
    }

    /// The dormant streak of the slot at `index` (0 when unknown).
    pub fn streak(&self, index: usize) -> u32 {
        self.slots.get(index).map_or(0, |s| s.dormant_streak)
    }
}

impl ModuleState {
    /// A deterministic stamp of this module's dormancy content, for change
    /// detection by incremental engines: equal stamps mean the state would
    /// drive identical skip decisions. Function order does not matter.
    pub fn content_stamp(&self) -> u64 {
        let mut repr = String::new();
        repr.push_str(&format!(
            "ph={:x};bc={};",
            self.pipeline_hash.0, self.build_counter
        ));
        let mut names: Vec<&String> = self.functions.keys().collect();
        names.sort();
        for name in names {
            let record = &self.functions[name];
            repr.push_str(&format!(
                "{name}:{:x}/{:x}@{}",
                record.fingerprint.0, record.exit_fingerprint.0, record.last_build
            ));
            for slot in &record.slots {
                repr.push_str(&format!(
                    "|{}{}s{}h{}o{}",
                    slot.dormant as u8,
                    slot.dormant_streak,
                    slot.times_skipped,
                    slot.history,
                    slot.observations
                ));
            }
            repr.push(';');
        }
        crate::codec::fnv64(repr.as_bytes())
    }
}

/// Per-module dormancy state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleState {
    /// Hash of the pipeline's slot names; a mismatch invalidates the state.
    pub pipeline_hash: Fingerprint,
    /// Function name → record. Keyed by *name* so that an edited function
    /// inherits its predecessor's dormancy profile (the paper's transfer
    /// assumption: small edits rarely change which passes matter).
    pub functions: HashMap<String, FunctionRecord>,
    /// Monotonic build counter for this module.
    pub build_counter: u64,
}

/// The complete on-disk state: one entry per module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateDb {
    /// Module name → state.
    pub modules: HashMap<String, ModuleState>,
}

impl StateDb {
    /// Creates an empty database (a cold start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total function records across all modules.
    pub fn function_count(&self) -> usize {
        self.modules.values().map(|m| m.functions.len()).sum()
    }

    /// Read access to a module's state.
    pub fn module(&self, name: &str) -> Option<&ModuleState> {
        self.modules.get(name)
    }

    /// Slots currently believed dormant, across all modules and functions
    /// (telemetry gauge for the metrics registry).
    pub fn dormant_slot_count(&self) -> u64 {
        self.modules
            .values()
            .flat_map(|m| m.functions.values())
            .flat_map(|f| f.slots.iter())
            .filter(|s| s.dormant)
            .count() as u64
    }

    /// Lifetime skip decisions recorded across all slots (telemetry gauge
    /// for the metrics registry).
    pub fn total_recorded_skips(&self) -> u64 {
        self.modules
            .values()
            .flat_map(|m| m.functions.values())
            .flat_map(|f| f.slots.iter())
            .map(|s| u64::from(s.times_skipped))
            .sum()
    }

    /// Hash of a pipeline's slot names, for invalidation.
    pub fn pipeline_hash(slot_names: &[&str]) -> Fingerprint {
        Fingerprint::of_str(&slot_names.join("\u{1f}"))
    }

    /// Folds one build's [`PipelineTrace`] into the database.
    ///
    /// * Skipped slots extend their dormant streak (the skip presumed
    ///   dormancy) and bump the skip counter.
    /// * Function records absent from the trace are dropped (garbage
    ///   collection of deleted functions).
    /// * A pipeline-hash mismatch resets the module before ingesting.
    pub fn ingest(&mut self, trace: &PipelineTrace, pipeline_hash: Fingerprint) {
        let module = self.modules.entry(trace.module.clone()).or_default();
        if module.pipeline_hash != pipeline_hash {
            module.functions.clear();
            module.pipeline_hash = pipeline_hash;
        }
        module.build_counter += 1;
        let build = module.build_counter;

        let mut fresh: HashMap<String, FunctionRecord> = HashMap::new();
        for ftrace in &trace.functions {
            let old = module.functions.get(&ftrace.function);
            fresh.insert(ftrace.function.clone(), merge(old, ftrace, build));
        }
        module.functions = fresh;
    }

    /// Folds a single function's trace into `module_name`'s state, leaving
    /// every sibling record untouched (no garbage collection — callers that
    /// ingest function-by-function GC deleted functions explicitly with
    /// [`StateDb::retain_functions`]).
    ///
    /// The module's build counter is *not* bumped here; drivers bump it once
    /// per build session via [`StateDb::bump_build_counter`] so that
    /// per-function ingest order cannot influence any stamp.
    ///
    /// A pipeline-hash mismatch resets the module before ingesting.
    pub fn ingest_function(
        &mut self,
        module_name: &str,
        ftrace: &FunctionTrace,
        pipeline_hash: Fingerprint,
    ) {
        let module = self.modules.entry(module_name.to_string()).or_default();
        if module.pipeline_hash != pipeline_hash {
            module.functions.clear();
            module.pipeline_hash = pipeline_hash;
        }
        let build = module.build_counter;
        let old = module.functions.get(&ftrace.function);
        let fresh = merge(old, ftrace, build);
        module.functions.insert(ftrace.function.clone(), fresh);
    }

    /// Advances `module_name`'s build counter by one, creating the module
    /// entry if needed, and returns the new value. Companion to
    /// [`StateDb::ingest_function`].
    pub fn bump_build_counter(&mut self, module_name: &str) -> u64 {
        let module = self.modules.entry(module_name.to_string()).or_default();
        module.build_counter += 1;
        module.build_counter
    }

    /// Drops function records of `module_name` whose names fail `keep` —
    /// the explicit garbage-collection companion to
    /// [`StateDb::ingest_function`] (whole-module [`StateDb::ingest`] GCs
    /// implicitly by rebuilding the record map from the trace).
    pub fn retain_functions(&mut self, module_name: &str, mut keep: impl FnMut(&str) -> bool) {
        if let Some(module) = self.modules.get_mut(module_name) {
            module.functions.retain(|name, _| keep(name));
        }
    }

    /// The stamp of one function's record, or `None` when the module or
    /// function has no state yet.
    pub fn function_stamp(&self, module_name: &str, function: &str) -> Option<u64> {
        self.modules
            .get(module_name)?
            .functions
            .get(function)
            .map(FunctionRecord::content_stamp)
    }
}

/// Merges one function's new trace into its previous record.
fn merge(old: Option<&FunctionRecord>, trace: &FunctionTrace, build: u64) -> FunctionRecord {
    let mut slots = Vec::with_capacity(trace.records.len());
    for (i, rec) in trace.records.iter().enumerate() {
        let prev = old
            .and_then(|o| o.slots.get(i))
            .copied()
            .unwrap_or_default();
        let push_history = |dormant_bit: bool| -> (u8, u8) {
            (
                (prev.history << 1) | dormant_bit as u8,
                prev.observations.saturating_add(1).min(8),
            )
        };
        let slot = match rec.outcome {
            PassOutcome::Active => {
                let (history, observations) = push_history(false);
                SlotRecord {
                    dormant: false,
                    dormant_streak: 0,
                    times_skipped: prev.times_skipped,
                    history,
                    observations,
                }
            }
            PassOutcome::Dormant => {
                let (history, observations) = push_history(true);
                SlotRecord {
                    dormant: true,
                    dormant_streak: prev.dormant_streak.saturating_add(1),
                    times_skipped: prev.times_skipped,
                    history,
                    observations,
                }
            }
            // A skip presumes dormancy; record it as such so the window
            // reflects the compiler's acted-upon belief.
            PassOutcome::Skipped => {
                let (history, observations) = push_history(true);
                SlotRecord {
                    dormant: prev.dormant,
                    dormant_streak: prev.dormant_streak.saturating_add(1),
                    times_skipped: prev.times_skipped.saturating_add(1),
                    history,
                    observations,
                }
            }
        };
        slots.push(slot);
    }
    FunctionRecord {
        fingerprint: trace.entry_fingerprint,
        exit_fingerprint: trace.exit_fingerprint,
        slots,
        last_build: build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_passes::PassRecord;

    fn trace_of(module: &str, func: &str, outcomes: &[PassOutcome]) -> PipelineTrace {
        PipelineTrace {
            module: module.to_string(),
            functions: vec![FunctionTrace {
                function: func.to_string(),
                entry_fingerprint: Fingerprint(1),
                exit_fingerprint: Fingerprint(2),
                records: outcomes
                    .iter()
                    .enumerate()
                    .map(|(slot, &outcome)| PassRecord {
                        pass: format!("p{slot}"),
                        slot,
                        outcome,
                        nanos: 1,
                        cost_units: 1,
                    })
                    .collect(),
            }],
            snapshot_clones: 0,
            snapshot_cost_units: 0,
            snapshot_reused: 0,
            batch_count: 0,
            batch_max_cost: 0,
        }
    }

    const HASH: Fingerprint = Fingerprint(99);

    #[test]
    fn ingest_creates_records() {
        let mut db = StateDb::new();
        db.ingest(
            &trace_of("m", "f", &[PassOutcome::Active, PassOutcome::Dormant]),
            HASH,
        );
        let rec = &db.module("m").unwrap().functions["f"];
        assert!(!rec.is_dormant(0));
        assert!(rec.is_dormant(1));
        assert_eq!(rec.streak(1), 1);
        assert_eq!(db.function_count(), 1);
    }

    #[test]
    fn streaks_accumulate_and_reset() {
        let mut db = StateDb::new();
        for _ in 0..3 {
            db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        }
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 3);
        db.ingest(&trace_of("m", "f", &[PassOutcome::Active]), HASH);
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 0);
    }

    #[test]
    fn skip_extends_streak_and_counts() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        db.ingest(&trace_of("m", "f", &[PassOutcome::Skipped]), HASH);
        let rec = &db.module("m").unwrap().functions["f"];
        assert!(rec.is_dormant(0));
        assert_eq!(rec.streak(0), 2);
        assert_eq!(rec.slots[0].times_skipped, 1);
    }

    #[test]
    fn deleted_functions_are_garbage_collected() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        db.ingest(&trace_of("m", "g", &[PassOutcome::Dormant]), HASH);
        assert!(!db.module("m").unwrap().functions.contains_key("f"));
        assert!(db.module("m").unwrap().functions.contains_key("g"));
    }

    #[test]
    fn pipeline_change_resets_module() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 1);
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), Fingerprint(7));
        // Reset: streak restarts at 1, not 2.
        assert_eq!(db.module("m").unwrap().functions["f"].streak(0), 1);
    }

    #[test]
    fn build_counter_increments() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[]), HASH);
        db.ingest(&trace_of("m", "f", &[]), HASH);
        assert_eq!(db.module("m").unwrap().build_counter, 2);
        assert_eq!(db.module("m").unwrap().functions["f"].last_build, 2);
    }

    #[test]
    fn pipeline_hash_distinguishes_orders() {
        let a = StateDb::pipeline_hash(&["x", "y"]);
        let b = StateDb::pipeline_hash(&["y", "x"]);
        let c = StateDb::pipeline_hash(&["x", "y"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn ingest_function_leaves_siblings_alone() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        let g = trace_of("m", "g", &[PassOutcome::Active]);
        db.ingest_function("m", &g.functions[0], HASH);
        let module = db.module("m").unwrap();
        assert!(module.functions.contains_key("f"), "sibling survives");
        assert!(module.functions.contains_key("g"));
    }

    #[test]
    fn ingest_function_merges_like_whole_module_ingest() {
        let mut whole = StateDb::new();
        let mut fngrain = StateDb::new();
        for outcome in [PassOutcome::Dormant, PassOutcome::Skipped] {
            let t = trace_of("m", "f", &[outcome]);
            whole.ingest(&t, HASH);
            fngrain.bump_build_counter("m");
            fngrain.ingest_function("m", &t.functions[0], HASH);
        }
        assert_eq!(
            whole.module("m").unwrap().functions["f"],
            fngrain.module("m").unwrap().functions["f"],
        );
    }

    #[test]
    fn ingest_function_pipeline_mismatch_resets_module() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("m", "f", &[PassOutcome::Dormant]), HASH);
        let g = trace_of("m", "g", &[PassOutcome::Dormant]);
        db.ingest_function("m", &g.functions[0], Fingerprint(7));
        let module = db.module("m").unwrap();
        assert!(!module.functions.contains_key("f"), "old pipeline cleared");
        assert_eq!(module.functions["g"].streak(0), 1);
    }

    #[test]
    fn retain_functions_gcs_deleted_names() {
        let mut db = StateDb::new();
        let f = trace_of("m", "f", &[PassOutcome::Dormant]);
        let g = trace_of("m", "g", &[PassOutcome::Dormant]);
        db.ingest_function("m", &f.functions[0], HASH);
        db.ingest_function("m", &g.functions[0], HASH);
        db.retain_functions("m", |name| name == "g");
        assert!(!db.module("m").unwrap().functions.contains_key("f"));
        assert!(db.module("m").unwrap().functions.contains_key("g"));
    }

    #[test]
    fn function_stamp_ignores_build_counters() {
        let mut a = StateDb::new();
        let mut b = StateDb::new();
        let t = trace_of("m", "f", &[PassOutcome::Dormant]);
        a.ingest_function("m", &t.functions[0], HASH);
        for _ in 0..5 {
            b.bump_build_counter("m");
        }
        b.ingest_function("m", &t.functions[0], HASH);
        assert_eq!(
            a.function_stamp("m", "f").unwrap(),
            b.function_stamp("m", "f").unwrap(),
            "stamps must not depend on how many builds have run"
        );
        assert!(a.function_stamp("m", "nope").is_none());
        assert!(a.function_stamp("other", "f").is_none());
    }

    #[test]
    fn function_stamp_tracks_slot_content() {
        let mut db = StateDb::new();
        let t = trace_of("m", "f", &[PassOutcome::Dormant]);
        db.ingest_function("m", &t.functions[0], HASH);
        let before = db.function_stamp("m", "f").unwrap();
        db.ingest_function("m", &t.functions[0], HASH);
        let after = db.function_stamp("m", "f").unwrap();
        assert_ne!(before, after, "streak growth is skip-relevant content");
    }

    #[test]
    fn modules_are_independent() {
        let mut db = StateDb::new();
        db.ingest(&trace_of("a", "f", &[PassOutcome::Dormant]), HASH);
        db.ingest(&trace_of("b", "f", &[PassOutcome::Active]), HASH);
        assert!(db.module("a").unwrap().functions["f"].is_dormant(0));
        assert!(!db.module("b").unwrap().functions["f"].is_dormant(0));
    }
}
