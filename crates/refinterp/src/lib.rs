//! # sfcc-refinterp
//!
//! A reference tree-walking interpreter for MiniC, written directly against
//! the AST with no shared code below the front end. Its only purpose is to
//! be an *independent* definition of MiniC semantics: the differential test
//! suite runs generated programs through this interpreter and through the
//! full compile-optimize-execute pipeline and requires identical observable
//! behaviour (prints, return value, and trap kind).
//!
//! Semantics mirrored from the language definition:
//! * `int` is a wrapping 64-bit signed integer; `/` and `%` trap on zero
//!   divisors and on `i64::MIN / -1`;
//! * shift amounts are masked to 6 bits; `>>` is arithmetic;
//! * `&&`/`||` short-circuit;
//! * arrays are zero-initialized and bounds-checked;
//! * `print` appends to the program output;
//! * call depth and total evaluated steps are limited (like the VM's stack
//!   and fuel limits), yielding [`RefError::StackOverflow`] /
//!   [`RefError::OutOfFuel`].
//!
//! # Examples
//!
//! ```
//! use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv};
//! use sfcc_refinterp::{Machine, RefOptions};
//!
//! let mut diags = Diagnostics::new();
//! let checked = parse_and_check(
//!     "main",
//!     "fn main(n: int) -> int { let s: int = 0;
//!      for (let i: int = 0; i <= n; i = i + 1) { s = s + i; } return s; }",
//!     &ModuleEnv::new(),
//!     &mut diags,
//! ).expect("valid");
//!
//! let machine = Machine::new(vec![checked]);
//! let out = machine.run("main", "main", &[10], RefOptions::default()).unwrap();
//! assert_eq!(out.return_value, Some(55));
//! ```

use sfcc_frontend::ast::{
    BinOp, Block, Expr, ExprKind, FunctionDef, LValue, Stmt, StmtKind, TypeAst, UnOp,
};
use sfcc_frontend::sema::{CheckedModule, BUILTIN_PRINT};
use std::collections::HashMap;
use std::fmt;

/// Default step budget.
pub const DEFAULT_FUEL: u64 = 50_000_000;
/// Default call-depth limit.
pub const DEFAULT_MAX_DEPTH: usize = 256;

/// Why reference execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// Division by zero or `i64::MIN / -1`.
    ArithmeticTrap,
    /// Array access out of bounds.
    OutOfBounds {
        /// The offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Step budget exhausted.
    OutOfFuel,
    /// Call depth exceeded.
    StackOverflow,
    /// Entry function not found.
    NoSuchFunction(String),
    /// Wrong number of entry arguments.
    BadArity,
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::ArithmeticTrap => write!(f, "arithmetic trap"),
            RefError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            RefError::OutOfFuel => write!(f, "fuel exhausted"),
            RefError::StackOverflow => write!(f, "call depth exceeded"),
            RefError::NoSuchFunction(n) => write!(f, "no such function '{n}'"),
            RefError::BadArity => write!(f, "wrong number of arguments"),
        }
    }
}

impl std::error::Error for RefError {}

/// Observable result of a reference run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefOutput {
    /// Values printed, in order.
    pub prints: Vec<i64>,
    /// The entry function's return value (if it returns one).
    pub return_value: Option<i64>,
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct RefOptions {
    /// Step budget (each evaluated statement/expression node is a step).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for RefOptions {
    fn default() -> Self {
        RefOptions {
            fuel: DEFAULT_FUEL,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }
}

/// A runtime value: scalar or array storage.
#[derive(Debug, Clone)]
enum Value {
    Int(i64),
    Array(Vec<i64>),
}

/// Control-flow signal bubbling out of statements.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<i64>),
}

/// A loaded multi-module MiniC program.
#[derive(Debug)]
pub struct Machine {
    modules: HashMap<String, CheckedModule>,
}

impl Machine {
    /// Creates a machine from type-checked modules.
    pub fn new(modules: Vec<CheckedModule>) -> Self {
        Machine {
            modules: modules
                .into_iter()
                .map(|m| (m.ast.name.clone(), m))
                .collect(),
        }
    }

    /// Runs `module::function` with integer arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`RefError`] on traps or resource exhaustion.
    pub fn run(
        &self,
        module: &str,
        function: &str,
        args: &[i64],
        options: RefOptions,
    ) -> Result<RefOutput, RefError> {
        let mut state = Exec {
            machine: self,
            prints: Vec::new(),
            fuel: options.fuel,
            max_depth: options.max_depth,
        };
        let ret = state.call(module, function, args, 0)?;
        Ok(RefOutput {
            prints: state.prints,
            return_value: ret,
        })
    }
}

struct Exec<'m> {
    machine: &'m Machine,
    prints: Vec<i64>,
    fuel: u64,
    max_depth: usize,
}

/// One function invocation's local environment (a scope stack).
struct Env {
    scopes: Vec<HashMap<String, Value>>,
}

impl Env {
    fn lookup(&mut self, name: &str) -> Option<&mut Value> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    fn declare(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), value);
    }
}

impl<'m> Exec<'m> {
    fn tick(&mut self) -> Result<(), RefError> {
        if self.fuel == 0 {
            return Err(RefError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn module(&self, name: &str) -> Result<&'m CheckedModule, RefError> {
        self.machine
            .modules
            .get(name)
            .ok_or_else(|| RefError::NoSuchFunction(format!("{name}::?")))
    }

    fn call(
        &mut self,
        module_name: &str,
        function: &str,
        args: &[i64],
        depth: usize,
    ) -> Result<Option<i64>, RefError> {
        if depth >= self.max_depth {
            return Err(RefError::StackOverflow);
        }
        let module = self.module(module_name)?;
        let func: &FunctionDef = module
            .ast
            .function(function)
            .ok_or_else(|| RefError::NoSuchFunction(format!("{module_name}::{function}")))?;
        if func.params.len() != args.len() {
            return Err(RefError::BadArity);
        }
        let mut env = Env {
            scopes: vec![HashMap::new()],
        };
        for (param, &value) in func.params.iter().zip(args) {
            env.declare(&param.name, Value::Int(value));
        }
        match self.block(module, func, &mut env, &func.body, depth)? {
            Flow::Return(v) => Ok(v),
            // Falling off the end: sema guarantees this only happens for
            // void functions.
            _ => Ok(None),
        }
    }

    fn block(
        &mut self,
        module: &'m CheckedModule,
        func: &'m FunctionDef,
        env: &mut Env,
        block: &'m Block,
        depth: usize,
    ) -> Result<Flow, RefError> {
        env.scopes.push(HashMap::new());
        let result = (|| {
            for stmt in &block.stmts {
                match self.stmt(module, func, env, stmt, depth)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            }
            Ok(Flow::Normal)
        })();
        env.scopes.pop();
        result
    }

    fn stmt(
        &mut self,
        module: &'m CheckedModule,
        func: &'m FunctionDef,
        env: &mut Env,
        stmt: &'m Stmt,
        depth: usize,
    ) -> Result<Flow, RefError> {
        self.tick()?;
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let value = match (ty, init) {
                    (TypeAst::IntArray(n) | TypeAst::BoolArray(n), _) => {
                        Value::Array(vec![0; *n as usize])
                    }
                    (_, Some(e)) => Value::Int(self.expr(module, func, env, e, depth)?),
                    (_, None) => Value::Int(0), // unreachable per sema
                };
                env.declare(name, value);
                Ok(Flow::Normal)
            }
            StmtKind::Assign(lv, e) => {
                let value = self.expr(module, func, env, e, depth)?;
                match lv {
                    LValue::Var(name, _) => {
                        let slot = env.lookup(name).expect("sema resolved");
                        *slot = Value::Int(value);
                    }
                    LValue::Index(name, idx, _) => {
                        let index = self.expr(module, func, env, idx, depth)?;
                        let slot = env.lookup(name).expect("sema resolved");
                        let Value::Array(data) = slot else {
                            unreachable!("sema typed")
                        };
                        let len = data.len();
                        if index < 0 || index as usize >= len {
                            return Err(RefError::OutOfBounds { index, len });
                        }
                        data[index as usize] = value;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.expr(module, func, env, cond, depth)? != 0 {
                    self.block(module, func, env, then_block, depth)
                } else if let Some(eb) = else_block {
                    self.block(module, func, env, eb, depth)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => loop {
                self.tick()?;
                if self.expr(module, func, env, cond, depth)? == 0 {
                    return Ok(Flow::Normal);
                }
                match self.block(module, func, env, body, depth)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                env.scopes.push(HashMap::new());
                let result = (|| {
                    if let Some(init) = init {
                        match self.stmt(module, func, env, init, depth)? {
                            Flow::Normal => {}
                            other => return Ok(other),
                        }
                    }
                    loop {
                        self.tick()?;
                        if let Some(cond) = cond {
                            if self.expr(module, func, env, cond, depth)? == 0 {
                                return Ok(Flow::Normal);
                            }
                        }
                        match self.block(module, func, env, body, depth)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => return Ok(Flow::Normal),
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                        if let Some(step) = step {
                            match self.stmt(module, func, env, step, depth)? {
                                Flow::Normal => {}
                                other => return Ok(other),
                            }
                        }
                    }
                })();
                env.scopes.pop();
                result
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.expr(module, func, env, e, depth)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr(e) => {
                self.expr_maybe_void(module, func, env, e, depth)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => self.block(module, func, env, b, depth),
        }
    }

    fn expr(
        &mut self,
        module: &'m CheckedModule,
        func: &'m FunctionDef,
        env: &mut Env,
        expr: &'m Expr,
        depth: usize,
    ) -> Result<i64, RefError> {
        Ok(self
            .expr_maybe_void(module, func, env, expr, depth)?
            .expect("sema rejected void value uses"))
    }

    fn expr_maybe_void(
        &mut self,
        module: &'m CheckedModule,
        func: &'m FunctionDef,
        env: &mut Env,
        expr: &'m Expr,
        depth: usize,
    ) -> Result<Option<i64>, RefError> {
        self.tick()?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(Some(*v)),
            ExprKind::Bool(b) => Ok(Some(*b as i64)),
            ExprKind::Var(name) => match env.lookup(name) {
                Some(Value::Int(v)) => Ok(Some(*v)),
                Some(Value::Array(_)) => unreachable!("sema rejects array-as-value"),
                None => Ok(Some(module.global_values[name])),
            },
            ExprKind::Index(name, idx) => {
                let index = self.expr(module, func, env, idx, depth)?;
                let Some(Value::Array(data)) = env.lookup(name) else {
                    unreachable!("sema typed")
                };
                let len = data.len();
                if index < 0 || index as usize >= len {
                    return Err(RefError::OutOfBounds { index, len });
                }
                Ok(Some(data[index as usize]))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.expr(module, func, env, inner, depth)?;
                Ok(Some(match op {
                    UnOp::Neg => 0i64.wrapping_sub(v),
                    UnOp::Not => (v == 0) as i64,
                }))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                // Short-circuit forms first.
                match op {
                    BinOp::And => {
                        let l = self.expr(module, func, env, lhs, depth)?;
                        if l == 0 {
                            return Ok(Some(0));
                        }
                        return Ok(Some(self.expr(module, func, env, rhs, depth)?));
                    }
                    BinOp::Or => {
                        let l = self.expr(module, func, env, lhs, depth)?;
                        if l != 0 {
                            return Ok(Some(1));
                        }
                        return Ok(Some(self.expr(module, func, env, rhs, depth)?));
                    }
                    _ => {}
                }
                let a = self.expr(module, func, env, lhs, depth)?;
                let b = self.expr(module, func, env, rhs, depth)?;
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div | BinOp::Rem => {
                        if b == 0 || (a == i64::MIN && b == -1) {
                            return Err(RefError::ArithmeticTrap);
                        }
                        if *op == BinOp::Div {
                            a / b
                        } else {
                            a % b
                        }
                    }
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Shl => a.wrapping_shl((b & 63) as u32),
                    BinOp::Shr => a.wrapping_shr((b & 63) as u32),
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(Some(v))
            }
            ExprKind::Call {
                module: target_module,
                name,
                args,
            } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.expr(module, func, env, a, depth)?);
                }
                if target_module.is_none() && name == BUILTIN_PRINT {
                    self.prints.push(argv[0]);
                    return Ok(None);
                }
                let callee_module = match target_module {
                    Some(m) => m.as_str(),
                    None => module.ast.name.as_str(),
                };
                self.call(callee_module, name, &argv, depth + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv, ModuleInterface};

    fn machine(sources: &[(&str, &str)]) -> Machine {
        let mut env = ModuleEnv::new();
        let mut modules = Vec::new();
        for (name, src) in sources {
            let mut diags = Diagnostics::new();
            let checked = parse_and_check(name, src, &env, &mut diags)
                .unwrap_or_else(|| panic!("invalid source: {diags:?}"));
            env.insert(name.to_string(), ModuleInterface::of(&checked.ast));
            modules.push(checked);
        }
        Machine::new(modules)
    }

    fn run_main(m: &Machine, args: &[i64]) -> Result<RefOutput, RefError> {
        m.run("main", "main", args, RefOptions::default())
    }

    #[test]
    fn arithmetic_and_loops() {
        let m = machine(&[(
            "main",
            "fn main(n: int) -> int { let s: int = 0; for (let i: int = 1; i <= n; i = i + 1) { s = s + i * i; } return s; }",
        )]);
        assert_eq!(run_main(&m, &[4]).unwrap().return_value, Some(30));
    }

    #[test]
    fn division_traps() {
        let m = machine(&[("main", "fn main(n: int) -> int { return 10 / n; }")]);
        assert_eq!(run_main(&m, &[0]).unwrap_err(), RefError::ArithmeticTrap);
        assert_eq!(run_main(&m, &[3]).unwrap().return_value, Some(3));
        let m = machine(&[("main", "fn main(n: int) -> int { return n % 0; }")]);
        assert_eq!(run_main(&m, &[1]).unwrap_err(), RefError::ArithmeticTrap);
    }

    #[test]
    fn min_div_minus_one_traps() {
        // i64::MIN spelled without an overflowing literal.
        let m = machine(&[(
            "main",
            "fn main(n: int) -> int { return (0 - 9223372036854775807 - 1) / n; }",
        )]);
        assert_eq!(run_main(&m, &[-1]).unwrap_err(), RefError::ArithmeticTrap);
        assert_eq!(run_main(&m, &[1]).unwrap().return_value, Some(i64::MIN));
    }

    #[test]
    fn arrays_and_bounds() {
        let m = machine(&[(
            "main",
            "fn main(i: int) -> int { let a: [int; 4]; a[2] = 9; return a[i]; }",
        )]);
        assert_eq!(run_main(&m, &[2]).unwrap().return_value, Some(9));
        assert_eq!(run_main(&m, &[0]).unwrap().return_value, Some(0)); // zero-init
        assert!(matches!(
            run_main(&m, &[4]),
            Err(RefError::OutOfBounds { .. })
        ));
        assert!(matches!(
            run_main(&m, &[-1]),
            Err(RefError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn short_circuit_side_effects() {
        let m = machine(&[(
            "main",
            "fn noisy(x: int) -> bool { print(x); return x > 0; }
             fn main(n: int) -> int {
                if (n > 5 && noisy(1)) { return 1; }
                if (n > 5 || noisy(2)) { return 2; }
                return 3;
             }",
        )]);
        let out = run_main(&m, &[0]).unwrap();
        // n>5 false: && skips noisy(1); || evaluates noisy(2), which is
        // truthy, so the second branch is taken.
        assert_eq!(out.prints, vec![2]);
        assert_eq!(out.return_value, Some(2));
    }

    #[test]
    fn break_continue_semantics() {
        let m = machine(&[(
            "main",
            "fn main(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) {
                    if (i == 2) { continue; }
                    if (i == 5) { break; }
                    s = s + i;
                }
                return s;
            }",
        )]);
        // 0+1+3+4 = 8
        assert_eq!(run_main(&m, &[10]).unwrap().return_value, Some(8));
    }

    #[test]
    fn cross_module_calls() {
        let m = machine(&[
            ("util", "fn triple(x: int) -> int { return x * 3; }"),
            (
                "main",
                "import util;\nfn main(n: int) -> int { return util::triple(n) + 1; }",
            ),
        ]);
        assert_eq!(run_main(&m, &[5]).unwrap().return_value, Some(16));
    }

    #[test]
    fn globals_resolve() {
        let m = machine(&[(
            "main",
            "const K: int = 6 * 7;\nfn main(n: int) -> int { return K + n; }",
        )]);
        assert_eq!(run_main(&m, &[1]).unwrap().return_value, Some(43));
    }

    #[test]
    fn recursion_and_depth_limit() {
        let m = machine(&[(
            "main",
            "fn main(n: int) -> int { if (n <= 0) { return 0; } return main(n - 1) + 1; }",
        )]);
        assert_eq!(run_main(&m, &[50]).unwrap().return_value, Some(50));
        let deep = m.run("main", "main", &[100_000], RefOptions::default());
        assert_eq!(deep.unwrap_err(), RefError::StackOverflow);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let m = machine(&[(
            "main",
            "fn main(n: int) -> int { while (true) {} return n; }",
        )]);
        let out = m.run(
            "main",
            "main",
            &[1],
            RefOptions {
                fuel: 10_000,
                max_depth: 8,
            },
        );
        assert_eq!(out.unwrap_err(), RefError::OutOfFuel);
    }

    #[test]
    fn wrapping_arithmetic() {
        let m = machine(&[(
            "main",
            &format!("fn main(n: int) -> int {{ return ({}) + n; }}", i64::MAX),
        )]);
        assert_eq!(run_main(&m, &[1]).unwrap().return_value, Some(i64::MIN));
    }

    #[test]
    fn shift_masking() {
        let m = machine(&[("main", "fn main(n: int) -> int { return 1 << n; }")]);
        // Shift of 64 masks to 0.
        assert_eq!(run_main(&m, &[64]).unwrap().return_value, Some(1));
        assert_eq!(run_main(&m, &[3]).unwrap().return_value, Some(8));
    }

    #[test]
    fn scoping_shadows_correctly() {
        let m = machine(&[(
            "main",
            "fn main(n: int) -> int { let x: int = 1; { let x: int = 2; print(x); } return x + n; }",
        )]);
        let out = run_main(&m, &[0]).unwrap();
        assert_eq!(out.prints, vec![2]);
        assert_eq!(out.return_value, Some(1));
    }

    #[test]
    fn void_functions_work() {
        let m = machine(&[(
            "main",
            "fn tell(x: int) { print(x); }\nfn main(n: int) -> int { tell(n); tell(n + 1); return 0; }",
        )]);
        assert_eq!(run_main(&m, &[7]).unwrap().prints, vec![7, 8]);
    }
}
