//! Span-free structural fingerprints and callee discovery over the AST.
//!
//! The incremental build keys per-function work on *structure*: editing one
//! function's body shifts the source offsets of every later definition in
//! the file, so any fingerprint that folds in [`crate::source::Span`]s would
//! invalidate the whole module on each keystroke. The walkers here serialize
//! definitions to a canonical text form that carries no location data.

use crate::ast::*;
use std::fmt::Write as _;

/// 64-bit FNV-1a over `bytes` (the frontend deliberately has no codec
/// dependency; this mirrors `sfcc_codec::fnv64`).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic, span-free fingerprint of one function definition.
///
/// Two definitions fingerprint equal iff they are structurally identical
/// (same name, parameters, return type, and body) regardless of where they
/// sit in the file or what surrounds them.
pub fn def_fingerprint(def: &FunctionDef) -> u64 {
    fnv64(def_repr(def).as_bytes())
}

/// The canonical text form backing [`def_fingerprint`] (exposed for tests).
pub fn def_repr(def: &FunctionDef) -> String {
    let mut out = String::new();
    out.push_str("fn ");
    out.push_str(&def.name);
    out.push('(');
    for (i, p) in def.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", p.name, p.ty);
    }
    out.push(')');
    if let Some(ret) = def.ret {
        let _ = write!(out, "->{ret}");
    }
    block_repr(&def.body, &mut out);
    out
}

fn block_repr(block: &Block, out: &mut String) {
    out.push('{');
    for stmt in &block.stmts {
        stmt_repr(stmt, out);
    }
    out.push('}');
}

fn stmt_repr(stmt: &Stmt, out: &mut String) {
    match &stmt.kind {
        StmtKind::Let { name, ty, init } => {
            let _ = write!(out, "let {name}:{ty}");
            if let Some(e) = init {
                out.push('=');
                expr_repr(e, out);
            }
            out.push(';');
        }
        StmtKind::Assign(lv, value) => {
            lvalue_repr(lv, out);
            out.push('=');
            expr_repr(value, out);
            out.push(';');
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            out.push_str("if(");
            expr_repr(cond, out);
            out.push(')');
            block_repr(then_block, out);
            if let Some(eb) = else_block {
                out.push_str("else");
                block_repr(eb, out);
            }
        }
        StmtKind::While { cond, body } => {
            out.push_str("while(");
            expr_repr(cond, out);
            out.push(')');
            block_repr(body, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for(");
            if let Some(init) = init {
                stmt_repr(init, out);
            }
            out.push(';');
            if let Some(cond) = cond {
                expr_repr(cond, out);
            }
            out.push(';');
            if let Some(step) = step {
                stmt_repr(step, out);
            }
            out.push(')');
            block_repr(body, out);
        }
        StmtKind::Return(value) => {
            out.push_str("return");
            if let Some(e) = value {
                out.push(' ');
                expr_repr(e, out);
            }
            out.push(';');
        }
        StmtKind::Break => out.push_str("break;"),
        StmtKind::Continue => out.push_str("continue;"),
        StmtKind::Expr(e) => {
            expr_repr(e, out);
            out.push(';');
        }
        StmtKind::Block(b) => block_repr(b, out),
    }
}

fn lvalue_repr(lv: &LValue, out: &mut String) {
    match lv {
        LValue::Var(name, _) => out.push_str(name),
        LValue::Index(name, idx, _) => {
            out.push_str(name);
            out.push('[');
            expr_repr(idx, out);
            out.push(']');
        }
    }
}

fn expr_repr(expr: &Expr, out: &mut String) {
    match &expr.kind {
        ExprKind::Int(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Index(name, idx) => {
            out.push_str(name);
            out.push('[');
            expr_repr(idx, out);
            out.push(']');
        }
        ExprKind::Unary(op, inner) => {
            let _ = write!(out, "{op}");
            out.push('(');
            expr_repr(inner, out);
            out.push(')');
        }
        ExprKind::Binary(op, lhs, rhs) => {
            out.push('(');
            expr_repr(lhs, out);
            let _ = write!(out, "{op}");
            expr_repr(rhs, out);
            out.push(')');
        }
        ExprKind::Call { module, name, args } => {
            if let Some(m) = module {
                out.push_str(m);
                out.push_str("::");
            }
            out.push_str(name);
            out.push('(');
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                expr_repr(arg, out);
            }
            out.push(')');
        }
    }
}

/// Every function call site in `def`, as `(module qualifier, callee name)`,
/// sorted and deduplicated. The builtin `print` (unqualified) is omitted —
/// it has no signature to depend on.
///
/// This is purely syntactic: the set is an over-approximation of resolvable
/// callees (unknown names still appear) and is exactly the set of signatures
/// semantic analysis of `def` can consult.
pub fn callees_of(def: &FunctionDef) -> Vec<(Option<String>, String)> {
    let mut out = Vec::new();
    block_callees(&def.body, &mut out);
    out.sort();
    out.dedup();
    out
}

fn block_callees(block: &Block, out: &mut Vec<(Option<String>, String)>) {
    for stmt in &block.stmts {
        stmt_callees(stmt, out);
    }
}

fn stmt_callees(stmt: &Stmt, out: &mut Vec<(Option<String>, String)>) {
    match &stmt.kind {
        StmtKind::Let { init, .. } => {
            if let Some(e) = init {
                expr_callees(e, out);
            }
        }
        StmtKind::Assign(lv, value) => {
            if let LValue::Index(_, idx, _) = lv {
                expr_callees(idx, out);
            }
            expr_callees(value, out);
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            expr_callees(cond, out);
            block_callees(then_block, out);
            if let Some(eb) = else_block {
                block_callees(eb, out);
            }
        }
        StmtKind::While { cond, body } => {
            expr_callees(cond, out);
            block_callees(body, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                stmt_callees(init, out);
            }
            if let Some(cond) = cond {
                expr_callees(cond, out);
            }
            if let Some(step) = step {
                stmt_callees(step, out);
            }
            block_callees(body, out);
        }
        StmtKind::Return(value) => {
            if let Some(e) = value {
                expr_callees(e, out);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Expr(e) => expr_callees(e, out),
        StmtKind::Block(b) => block_callees(b, out),
    }
}

fn expr_callees(expr: &Expr, out: &mut Vec<(Option<String>, String)>) {
    match &expr.kind {
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
        ExprKind::Index(_, idx) => expr_callees(idx, out),
        ExprKind::Unary(_, inner) => expr_callees(inner, out),
        ExprKind::Binary(_, lhs, rhs) => {
            expr_callees(lhs, out);
            expr_callees(rhs, out);
        }
        ExprKind::Call { module, name, args } => {
            if !(module.is_none() && name == crate::sema::BUILTIN_PRINT) {
                out.push((module.clone(), name.clone()));
            }
            for arg in args {
                expr_callees(arg, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;

    fn parse_module(src: &str) -> Module {
        let mut d = Diagnostics::new();
        let m = parse("test", src, &mut d);
        assert!(!d.has_errors(), "parse errors: {d:?}");
        m
    }

    #[test]
    fn fingerprint_ignores_position_in_file() {
        let a = parse_module("fn f(x: int) -> int { return x + 1; }");
        let b = parse_module("fn pad() { print(0); }\n\n\nfn f(x: int) -> int { return x + 1; }");
        let fa = a.function("f").unwrap();
        let fb = b.function("f").unwrap();
        assert_ne!(fa.span, fb.span, "spans must differ for the test to bite");
        assert_eq!(def_fingerprint(fa), def_fingerprint(fb));
    }

    #[test]
    fn fingerprint_ignores_whitespace_but_not_structure() {
        let a = parse_module("fn f(x: int) -> int { return x + 1; }");
        let b = parse_module("fn f(x: int) -> int {\n    return x + 1;\n}");
        let c = parse_module("fn f(x: int) -> int { return x + 2; }");
        let fp = |m: &Module| def_fingerprint(m.function("f").unwrap());
        assert_eq!(fp(&a), fp(&b));
        assert_ne!(fp(&a), fp(&c));
    }

    #[test]
    fn fingerprint_covers_signature_parts() {
        let a = parse_module("fn f(x: int) -> int { return x; }");
        let b = parse_module("fn f(y: int) -> int { return y; }");
        let fp = |m: &Module| def_fingerprint(m.function("f").unwrap());
        assert_ne!(fp(&a), fp(&b), "parameter names are structure");
    }

    #[test]
    fn callees_found_in_every_position() {
        let m = parse_module(
            "import util;\n\
             fn g(x: int) -> int { return x; }\n\
             fn h() -> bool { return true; }\n\
             fn f(n: int) -> int {\n\
                 let a: int = g(n);\n\
                 let arr: [int; 4];\n\
                 arr[g(0)] = util::helper(a);\n\
                 for (let i: int = g(1); h(); i = g(i)) { print(i); }\n\
                 while (h()) { break; }\n\
                 if (h()) { return util::helper(a); } else { return g(a); }\n\
             }",
        );
        let callees = callees_of(m.function("f").unwrap());
        assert_eq!(
            callees,
            vec![
                (None, "g".to_string()),
                (None, "h".to_string()),
                (Some("util".to_string()), "helper".to_string()),
            ]
        );
    }

    #[test]
    fn builtin_print_is_not_a_callee() {
        let m = parse_module("fn f() { print(1); }");
        assert!(callees_of(m.function("f").unwrap()).is_empty());
    }

    #[test]
    fn recursive_call_lists_self() {
        let m = parse_module("fn f(n: int) -> int { if (n < 1) { return 0; } return f(n - 1); }");
        assert_eq!(
            callees_of(m.function("f").unwrap()),
            vec![(None, "f".to_string())]
        );
    }
}
