//! Semantic analysis for MiniC: name resolution, type checking, constant
//! evaluation of globals, and structural checks (all paths return, loop
//! context for `break`/`continue`).

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::source::Span;
use std::collections::HashMap;

/// The signature of a function as seen by callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSig {
    /// Function name.
    pub name: String,
    /// Parameter types in order.
    pub params: Vec<TypeAst>,
    /// Return type; `None` for functions returning nothing.
    pub ret: Option<TypeAst>,
}

impl FuncSig {
    /// Builds the signature of an AST function definition.
    pub fn of(def: &FunctionDef) -> Self {
        FuncSig {
            name: def.name.clone(),
            params: def.params.iter().map(|p| p.ty).collect(),
            ret: def.ret,
        }
    }
}

/// The exported interface of a module: its public function signatures.
///
/// Only signatures are visible across modules (globals are module-private),
/// which mirrors how the build system computes interface hashes: a module
/// needs recompiling only when an imported interface changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleInterface {
    /// Function name → signature.
    pub functions: HashMap<String, FuncSig>,
}

impl ModuleInterface {
    /// Extracts the interface of a parsed module.
    pub fn of(module: &Module) -> Self {
        let functions = module
            .functions
            .iter()
            .map(|f| (f.name.clone(), FuncSig::of(f)))
            .collect();
        ModuleInterface { functions }
    }
}

/// Interfaces of every module visible to the one being checked.
#[derive(Debug, Clone, Default)]
pub struct ModuleEnv {
    interfaces: HashMap<String, ModuleInterface>,
}

impl ModuleEnv {
    /// Creates an empty environment (no imports resolvable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `interface` under `name`, replacing any previous entry.
    pub fn insert(&mut self, name: impl Into<String>, interface: ModuleInterface) {
        self.interfaces.insert(name.into(), interface);
    }

    /// Looks up a module interface by name.
    pub fn get(&self, name: &str) -> Option<&ModuleInterface> {
        self.interfaces.get(name)
    }
}

/// A module that passed semantic analysis, with resolved constants.
#[derive(Debug, Clone)]
pub struct CheckedModule {
    /// The underlying AST.
    pub ast: Module,
    /// Global constant values by name (sema restricts globals to scalars).
    pub global_values: HashMap<String, i64>,
    /// Global constant types by name.
    pub global_types: HashMap<String, TypeAst>,
    /// This module's exported interface.
    pub interface: ModuleInterface,
}

/// The builtin print function name: `print(x: int)` writes `x` to the
/// program's output stream.
pub const BUILTIN_PRINT: &str = "print";

/// Type-checks `module` against `env`, returning the checked module when no
/// errors were found.
///
/// # Errors
///
/// Returns `None` after recording at least one error in `diags`. Warnings do
/// not fail the check.
pub fn check(module: Module, env: &ModuleEnv, diags: &mut Diagnostics) -> Option<CheckedModule> {
    let before = diags.error_count();
    let checker = Checker::new(&module, env, diags);
    let (global_values, global_types) = checker.run();
    if diags.error_count() > before {
        return None;
    }
    let interface = ModuleInterface::of(&module);
    Some(CheckedModule {
        ast: module,
        global_values,
        global_types,
        interface,
    })
}

/// Module-level semantic facts shared by every per-function check: import
/// validity, evaluated global constants, and collected local signatures.
///
/// Produced by [`check_module_level`]; consumed by [`check_function_with`].
/// The function-granular build pipeline computes this once per module and
/// then checks each function independently against it.
#[derive(Debug, Clone, Default)]
pub struct ModuleLevel {
    /// Global constant values by name.
    pub global_values: HashMap<String, i64>,
    /// Global constant types by name.
    pub global_types: HashMap<String, TypeAst>,
    /// Signatures of this module's own functions by name.
    pub local_sigs: HashMap<String, FuncSig>,
}

/// Runs the module-level half of semantic analysis: import checks, global
/// constant evaluation, and signature collection (duplicate functions,
/// illegal parameter/return types, builtin redefinition).
///
/// Function bodies are *not* checked — that is [`check_function_with`]'s job.
///
/// # Errors
///
/// Returns `None` after recording at least one error in `diags`.
pub fn check_module_level(
    module: &Module,
    env: &ModuleEnv,
    diags: &mut Diagnostics,
) -> Option<ModuleLevel> {
    let before = diags.error_count();
    let level = {
        let mut checker = Checker::new(module, env, diags);
        checker.check_imports();
        checker.check_globals();
        checker.collect_signatures();
        ModuleLevel {
            global_values: checker
                .globals
                .iter()
                .map(|(k, (_, v))| (k.clone(), *v))
                .collect(),
            global_types: checker
                .globals
                .iter()
                .map(|(k, (t, _))| (k.clone(), *t))
                .collect(),
            local_sigs: checker.local_sigs.clone(),
        }
    };
    if diags.error_count() > before {
        return None;
    }
    Some(level)
}

/// Type-checks one function body against pre-computed module-level facts.
///
/// `module` supplies the import list and module name consulted by call
/// resolution; `level.local_sigs` may be pruned to exactly the signatures
/// the function's call sites can consult (see
/// [`crate::fingerprint::callees_of`]) — body checking never looks at any
/// other local signature. Returns `false` when new errors were recorded.
pub fn check_function_with(
    module: &Module,
    env: &ModuleEnv,
    level: &ModuleLevel,
    func: &FunctionDef,
    diags: &mut Diagnostics,
) -> bool {
    let before = diags.error_count();
    {
        let mut checker = Checker::new(module, env, diags);
        checker.globals = level
            .global_types
            .iter()
            .map(|(k, t)| {
                (
                    k.clone(),
                    (*t, level.global_values.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        checker.local_sigs = level.local_sigs.clone();
        checker.check_function(func);
    }
    diags.error_count() == before
}

struct Checker<'a, 'd> {
    module: &'a Module,
    env: &'a ModuleEnv,
    diags: &'d mut Diagnostics,
    globals: HashMap<String, (TypeAst, i64)>,
    local_sigs: HashMap<String, FuncSig>,
    /// Set by `check_expr_allow_void` when the last expression was a legal
    /// call to a function that returns nothing.
    last_call_was_void: bool,
}

/// One declared local: type, declaration site, and whether it was read.
#[derive(Debug, Clone, Copy)]
struct Local {
    ty: TypeAst,
    span: Span,
    used: bool,
}

/// Local variable scope stack.
#[derive(Default)]
struct Scopes {
    frames: Vec<HashMap<String, Local>>,
}

impl Scopes {
    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Pops a frame, returning its never-read locals for diagnostics.
    fn pop(&mut self) -> Vec<(String, Span)> {
        let frame = self.frames.pop().unwrap_or_default();
        let mut unused: Vec<(String, Span)> = frame
            .into_iter()
            .filter(|(name, local)| !local.used && !name.starts_with('_'))
            .map(|(name, local)| (name, local.span))
            .collect();
        unused.sort_by_key(|(_, span)| span.start);
        unused
    }

    fn declare(&mut self, name: &str, ty: TypeAst, span: Span) -> bool {
        self.frames
            .last_mut()
            .expect("scope stack never empty while checking")
            .insert(
                name.to_string(),
                Local {
                    ty,
                    span,
                    used: false,
                },
            )
            .is_none()
    }

    /// Looks up a variable and marks it read.
    fn lookup(&mut self, name: &str) -> Option<TypeAst> {
        for frame in self.frames.iter_mut().rev() {
            if let Some(local) = frame.get_mut(name) {
                local.used = true;
                return Some(local.ty);
            }
        }
        None
    }

    /// Looks up without marking a read (assignment targets are writes).
    fn lookup_for_write(&self, name: &str) -> Option<TypeAst> {
        self.frames
            .iter()
            .rev()
            .find_map(|f| f.get(name).map(|l| l.ty))
    }
}

impl<'a, 'd> Checker<'a, 'd> {
    fn new(module: &'a Module, env: &'a ModuleEnv, diags: &'d mut Diagnostics) -> Self {
        Checker {
            module,
            env,
            diags,
            globals: HashMap::new(),
            local_sigs: HashMap::new(),
            last_call_was_void: false,
        }
    }

    fn run(mut self) -> (HashMap<String, i64>, HashMap<String, TypeAst>) {
        self.check_imports();
        self.check_globals();
        self.collect_signatures();
        for func in &self.module.functions {
            self.check_function(func);
        }
        let values = self
            .globals
            .iter()
            .map(|(k, (_, v))| (k.clone(), *v))
            .collect();
        let types = self
            .globals
            .iter()
            .map(|(k, (t, _))| (k.clone(), *t))
            .collect();
        (values, types)
    }

    fn check_imports(&mut self) {
        let mut seen: HashMap<&str, Span> = HashMap::new();
        for import in &self.module.imports {
            if import.module == self.module.name {
                self.diags.error("module imports itself", import.span);
            }
            if let Some(prev) = seen.insert(&import.module, import.span) {
                self.diags.push(
                    crate::diag::Diagnostic::warning(
                        format!("duplicate import of '{}'", import.module),
                        import.span,
                    )
                    .with_note("first imported here", prev),
                );
            }
            if self.env.get(&import.module).is_none() {
                self.diags.error(
                    format!("imported module '{}' not found", import.module),
                    import.span,
                );
            }
        }
    }

    fn check_globals(&mut self) {
        for global in &self.module.globals {
            if matches!(global.ty, TypeAst::IntArray(_) | TypeAst::BoolArray(_)) {
                self.diags.error(
                    "global constants must be scalar 'int' or 'bool'",
                    global.span,
                );
                continue;
            }
            if self.globals.contains_key(&global.name) {
                self.diags
                    .error(format!("duplicate constant '{}'", global.name), global.span);
                continue;
            }
            match self.const_eval(&global.init) {
                Some((ty, value)) => {
                    if ty != global.ty {
                        self.diags.error(
                            format!(
                                "constant '{}' declared '{}' but initializer has type '{}'",
                                global.name, global.ty, ty
                            ),
                            global.init.span,
                        );
                    } else {
                        self.globals.insert(global.name.clone(), (ty, value));
                    }
                }
                None => {
                    // const_eval already reported the problem.
                }
            }
        }
    }

    /// Evaluates a constant expression; booleans are represented as 0/1.
    fn const_eval(&mut self, expr: &Expr) -> Option<(TypeAst, i64)> {
        match &expr.kind {
            ExprKind::Int(v) => Some((TypeAst::Int, *v)),
            ExprKind::Bool(b) => Some((TypeAst::Bool, *b as i64)),
            ExprKind::Var(name) => match self.globals.get(name) {
                Some(&(ty, v)) => Some((ty, v)),
                None => {
                    self.diags.error(
                        format!("'{name}' is not a previously defined constant"),
                        expr.span,
                    );
                    None
                }
            },
            ExprKind::Unary(op, inner) => {
                let (ty, v) = self.const_eval(inner)?;
                match op {
                    UnOp::Neg if ty == TypeAst::Int => Some((TypeAst::Int, v.wrapping_neg())),
                    UnOp::Not if ty == TypeAst::Bool => Some((TypeAst::Bool, (v == 0) as i64)),
                    _ => {
                        self.diags.error(
                            format!("cannot apply '{op}' to '{ty}' in constant expression"),
                            expr.span,
                        );
                        None
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let (lt, lv) = self.const_eval(lhs)?;
                let (rt, rv) = self.const_eval(rhs)?;
                let int_args = lt == TypeAst::Int && rt == TypeAst::Int;
                use BinOp::*;
                let result = match op {
                    Add if int_args => (TypeAst::Int, lv.wrapping_add(rv)),
                    Sub if int_args => (TypeAst::Int, lv.wrapping_sub(rv)),
                    Mul if int_args => (TypeAst::Int, lv.wrapping_mul(rv)),
                    Div | Rem if int_args => {
                        if rv == 0 {
                            self.diags
                                .error("division by zero in constant expression", expr.span);
                            return None;
                        }
                        let v = if *op == Div {
                            lv.wrapping_div(rv)
                        } else {
                            lv.wrapping_rem(rv)
                        };
                        (TypeAst::Int, v)
                    }
                    BitAnd if int_args => (TypeAst::Int, lv & rv),
                    BitOr if int_args => (TypeAst::Int, lv | rv),
                    BitXor if int_args => (TypeAst::Int, lv ^ rv),
                    Shl if int_args => (TypeAst::Int, lv.wrapping_shl(rv as u32 & 63)),
                    Shr if int_args => (TypeAst::Int, lv.wrapping_shr(rv as u32 & 63)),
                    Eq | Ne | Lt | Le | Gt | Ge if int_args => {
                        let b = match op {
                            Eq => lv == rv,
                            Ne => lv != rv,
                            Lt => lv < rv,
                            Le => lv <= rv,
                            Gt => lv > rv,
                            _ => lv >= rv,
                        };
                        (TypeAst::Bool, b as i64)
                    }
                    And | Or if lt == TypeAst::Bool && rt == TypeAst::Bool => {
                        let b = if *op == And {
                            lv != 0 && rv != 0
                        } else {
                            lv != 0 || rv != 0
                        };
                        (TypeAst::Bool, b as i64)
                    }
                    _ => {
                        self.diags.error(
                            format!(
                                "cannot apply '{op}' to '{lt}' and '{rt}' in constant expression"
                            ),
                            expr.span,
                        );
                        return None;
                    }
                };
                Some(result)
            }
            _ => {
                self.diags.error(
                    "constant initializer must be a constant expression",
                    expr.span,
                );
                None
            }
        }
    }

    fn collect_signatures(&mut self) {
        for func in &self.module.functions {
            if func.name == BUILTIN_PRINT {
                self.diags.error(
                    format!("'{BUILTIN_PRINT}' is a builtin and cannot be redefined"),
                    func.span,
                );
                continue;
            }
            if self
                .local_sigs
                .insert(func.name.clone(), FuncSig::of(func))
                .is_some()
            {
                self.diags
                    .error(format!("duplicate function '{}'", func.name), func.span);
            }
            for p in &func.params {
                if matches!(p.ty, TypeAst::IntArray(_) | TypeAst::BoolArray(_)) {
                    self.diags.error("array types cannot be parameters", p.span);
                }
            }
            if matches!(
                func.ret,
                Some(TypeAst::IntArray(_)) | Some(TypeAst::BoolArray(_))
            ) {
                self.diags
                    .error("array types cannot be returned", func.span);
            }
        }
    }

    fn check_function(&mut self, func: &FunctionDef) {
        let mut scopes = Scopes::default();
        scopes.push();
        let mut seen_params: HashMap<&str, ()> = HashMap::new();
        for p in &func.params {
            if seen_params.insert(&p.name, ()).is_some() {
                self.diags
                    .error(format!("duplicate parameter '{}'", p.name), p.span);
            }
            scopes.declare(&p.name, p.ty, p.span);
        }
        self.check_block(&func.body, func, &mut scopes, 0);
        scopes.pop(); // parameters: unused params are not warned about
        if func.ret.is_some() && !Self::always_returns(&func.body) {
            self.diags.error(
                format!(
                    "function '{}' does not return a value on all paths",
                    func.name
                ),
                func.span,
            );
        }
    }

    /// Conservative "all paths return" analysis.
    fn always_returns(block: &Block) -> bool {
        block.stmts.iter().any(|stmt| match &stmt.kind {
            StmtKind::Return(_) => true,
            StmtKind::If {
                then_block,
                else_block: Some(eb),
                ..
            } => Self::always_returns(then_block) && Self::always_returns(eb),
            StmtKind::Block(b) => Self::always_returns(b),
            _ => false,
        })
    }

    fn check_block(&mut self, block: &Block, func: &FunctionDef, scopes: &mut Scopes, loops: u32) {
        scopes.push();
        let mut terminated_at: Option<Span> = None;
        for stmt in &block.stmts {
            if let Some(span) = terminated_at.take() {
                self.diags.push(
                    crate::diag::Diagnostic::warning("unreachable statement", stmt.span)
                        .with_note("control flow diverges here", span),
                );
            }
            self.check_stmt(stmt, func, scopes, loops);
            if matches!(
                stmt.kind,
                StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue
            ) {
                terminated_at = Some(stmt.span);
            }
        }
        self.warn_unused(scopes);
    }

    fn warn_unused(&mut self, scopes: &mut Scopes) {
        for (name, span) in scopes.pop() {
            self.diags
                .warning(format!("variable '{name}' is never read"), span);
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt, func: &FunctionDef, scopes: &mut Scopes, loops: u32) {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let is_array = matches!(ty, TypeAst::IntArray(_) | TypeAst::BoolArray(_));
                match (is_array, init) {
                    (true, Some(e)) => {
                        self.diags
                            .error("array declarations cannot have initializers", e.span);
                    }
                    (false, None) => {
                        self.diags
                            .error("scalar 'let' requires an initializer", stmt.span);
                    }
                    (false, Some(e)) => {
                        if let Some(ety) = self.check_expr(e, scopes) {
                            if ety != *ty {
                                self.diags.error(
                                    format!(
                                        "'{name}' declared '{ty}' but initializer has type '{ety}'"
                                    ),
                                    e.span,
                                );
                            }
                        }
                    }
                    (true, None) => {}
                }
                if self.globals.contains_key(name) {
                    self.diags.warning(
                        format!("local '{name}' shadows a module constant"),
                        stmt.span,
                    );
                }
                if !scopes.declare(name, *ty, stmt.span) {
                    self.diags.error(
                        format!("'{name}' is already defined in this scope"),
                        stmt.span,
                    );
                }
            }
            StmtKind::Assign(lv, value) => {
                let target_ty = self.check_lvalue(lv, scopes);
                let value_ty = self.check_expr(value, scopes);
                if let (Some(t), Some(v)) = (target_ty, value_ty) {
                    if t != v {
                        self.diags
                            .error(format!("cannot assign '{v}' to '{t}' location"), value.span);
                    }
                }
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                self.expect_type(cond, TypeAst::Bool, scopes);
                self.check_block(then_block, func, scopes, loops);
                if let Some(eb) = else_block {
                    self.check_block(eb, func, scopes, loops);
                }
            }
            StmtKind::While { cond, body } => {
                self.expect_type(cond, TypeAst::Bool, scopes);
                self.check_block(body, func, scopes, loops + 1);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                scopes.push();
                // (the induction variable is usually read by cond/step)
                if let Some(init) = init {
                    self.check_stmt(init, func, scopes, loops);
                }
                if let Some(cond) = cond {
                    self.expect_type(cond, TypeAst::Bool, scopes);
                }
                if let Some(step) = step {
                    self.check_stmt(step, func, scopes, loops + 1);
                }
                self.check_block(body, func, scopes, loops + 1);
                self.warn_unused(scopes);
            }
            StmtKind::Return(value) => match (func.ret, value) {
                (None, Some(e)) => {
                    self.diags.error(
                        format!(
                            "function '{}' returns nothing but a value is given",
                            func.name
                        ),
                        e.span,
                    );
                }
                (Some(rt), None) => {
                    self.diags.error(
                        format!("function '{}' must return '{}'", func.name, rt),
                        stmt.span,
                    );
                }
                (Some(rt), Some(e)) => {
                    if let Some(ety) = self.check_expr(e, scopes) {
                        if ety != rt {
                            self.diags.error(
                                format!("return type mismatch: expected '{rt}', found '{ety}'"),
                                e.span,
                            );
                        }
                    }
                }
                (None, None) => {}
            },
            StmtKind::Break | StmtKind::Continue => {
                if loops == 0 {
                    let word = if matches!(stmt.kind, StmtKind::Break) {
                        "break"
                    } else {
                        "continue"
                    };
                    self.diags
                        .error(format!("'{word}' outside of a loop"), stmt.span);
                }
            }
            StmtKind::Expr(e) => {
                // Allow calls to void functions as statements; the type
                // checker returns None for them without erroring here.
                self.check_expr_allow_void(e, scopes);
            }
            StmtKind::Block(b) => self.check_block(b, func, scopes, loops),
        }
    }

    fn check_lvalue(&mut self, lv: &LValue, scopes: &mut Scopes) -> Option<TypeAst> {
        match lv {
            LValue::Var(name, span) => match scopes.lookup_for_write(name) {
                Some(TypeAst::IntArray(_)) | Some(TypeAst::BoolArray(_)) => {
                    self.diags.error("cannot assign a whole array", *span);
                    None
                }
                Some(ty) => Some(ty),
                None => {
                    if self.globals.contains_key(name) {
                        self.diags
                            .error(format!("cannot assign to constant '{name}'"), *span);
                    } else {
                        self.diags
                            .error(format!("unknown variable '{name}'"), *span);
                    }
                    None
                }
            },
            LValue::Index(name, idx, span) => {
                self.expect_type(idx, TypeAst::Int, scopes);
                match scopes.lookup(name) {
                    Some(TypeAst::IntArray(_)) => Some(TypeAst::Int),
                    Some(TypeAst::BoolArray(_)) => Some(TypeAst::Bool),
                    Some(ty) => {
                        self.diags
                            .error(format!("cannot index '{ty}' value '{name}'"), *span);
                        None
                    }
                    None => {
                        self.diags
                            .error(format!("unknown variable '{name}'"), *span);
                        None
                    }
                }
            }
        }
    }

    fn expect_type(&mut self, expr: &Expr, want: TypeAst, scopes: &mut Scopes) {
        if let Some(got) = self.check_expr(expr, scopes) {
            if got != want {
                self.diags
                    .error(format!("expected '{want}', found '{got}'"), expr.span);
            }
        }
    }

    /// Type-checks an expression that must produce a value.
    fn check_expr(&mut self, expr: &Expr, scopes: &mut Scopes) -> Option<TypeAst> {
        let ty = self.check_expr_allow_void(expr, scopes);
        if ty.is_none() && matches!(&expr.kind, ExprKind::Call { .. }) && self.last_call_was_void {
            self.diags.error(
                "call to a function that returns nothing used as a value",
                expr.span,
            );
        }
        ty
    }

    /// Type-checks an expression; a `None` result with
    /// `last_call_was_void == true` means a legal void call.
    fn check_expr_allow_void(&mut self, expr: &Expr, scopes: &mut Scopes) -> Option<TypeAst> {
        self.last_call_was_void = false;
        match &expr.kind {
            ExprKind::Int(_) => Some(TypeAst::Int),
            ExprKind::Bool(_) => Some(TypeAst::Bool),
            ExprKind::Var(name) => {
                if let Some(ty) = scopes.lookup(name) {
                    if matches!(ty, TypeAst::IntArray(_) | TypeAst::BoolArray(_)) {
                        self.diags.error(
                            format!("array '{name}' cannot be used as a value; index it"),
                            expr.span,
                        );
                        return None;
                    }
                    Some(ty)
                } else if let Some(&(ty, _)) = self.globals.get(name) {
                    Some(ty)
                } else {
                    self.diags
                        .error(format!("unknown variable '{name}'"), expr.span);
                    None
                }
            }
            ExprKind::Index(name, idx) => {
                self.expect_type(idx, TypeAst::Int, scopes);
                match scopes.lookup(name) {
                    Some(TypeAst::IntArray(_)) => Some(TypeAst::Int),
                    Some(TypeAst::BoolArray(_)) => Some(TypeAst::Bool),
                    Some(ty) => {
                        self.diags
                            .error(format!("cannot index '{ty}' value '{name}'"), expr.span);
                        None
                    }
                    None => {
                        self.diags
                            .error(format!("unknown variable '{name}'"), expr.span);
                        None
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let ity = self.check_expr(inner, scopes)?;
                match (op, ity) {
                    (UnOp::Neg, TypeAst::Int) => Some(TypeAst::Int),
                    (UnOp::Not, TypeAst::Bool) => Some(TypeAst::Bool),
                    _ => {
                        self.diags
                            .error(format!("cannot apply '{op}' to '{ity}'"), expr.span);
                        None
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.check_expr(lhs, scopes);
                let rt = self.check_expr(rhs, scopes);
                let (lt, rt) = (lt?, rt?);
                if op.is_logical() {
                    if lt == TypeAst::Bool && rt == TypeAst::Bool {
                        Some(TypeAst::Bool)
                    } else {
                        self.diags.error(
                            format!("'{op}' requires 'bool' operands, found '{lt}' and '{rt}'"),
                            expr.span,
                        );
                        None
                    }
                } else if *op == BinOp::Eq || *op == BinOp::Ne {
                    if lt == rt && matches!(lt, TypeAst::Int | TypeAst::Bool) {
                        Some(TypeAst::Bool)
                    } else {
                        self.diags
                            .error(format!("cannot compare '{lt}' with '{rt}'"), expr.span);
                        None
                    }
                } else if lt == TypeAst::Int && rt == TypeAst::Int {
                    Some(if op.is_comparison() {
                        TypeAst::Bool
                    } else {
                        TypeAst::Int
                    })
                } else {
                    self.diags.error(
                        format!("'{op}' requires 'int' operands, found '{lt}' and '{rt}'"),
                        expr.span,
                    );
                    None
                }
            }
            ExprKind::Call { module, name, args } => {
                let sig: Option<FuncSig> = match module {
                    Some(m) => {
                        if !self.module.imports.iter().any(|i| &i.module == m) {
                            self.diags
                                .error(format!("module '{m}' is not imported"), expr.span);
                            return None;
                        }
                        match self.env.get(m).and_then(|i| i.functions.get(name)) {
                            Some(sig) => Some(sig.clone()),
                            None => {
                                self.diags.error(
                                    format!("module '{m}' has no function '{name}'"),
                                    expr.span,
                                );
                                return None;
                            }
                        }
                    }
                    None if name == BUILTIN_PRINT => Some(FuncSig {
                        name: BUILTIN_PRINT.to_string(),
                        params: vec![TypeAst::Int],
                        ret: None,
                    }),
                    None => match self.local_sigs.get(name) {
                        Some(sig) => Some(sig.clone()),
                        None => {
                            self.diags
                                .error(format!("unknown function '{name}'"), expr.span);
                            return None;
                        }
                    },
                };
                let sig = sig.expect("resolved above");
                if args.len() != sig.params.len() {
                    self.diags.error(
                        format!(
                            "'{}' expects {} argument(s), {} given",
                            name,
                            sig.params.len(),
                            args.len()
                        ),
                        expr.span,
                    );
                }
                for (arg, want) in args.iter().zip(&sig.params) {
                    self.expect_type(arg, *want, scopes);
                }
                // Still check extra args for their own errors.
                for arg in args.iter().skip(sig.params.len()) {
                    self.check_expr(arg, scopes);
                }
                if sig.ret.is_none() {
                    self.last_call_was_void = true;
                }
                sig.ret
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> (Option<CheckedModule>, Diagnostics) {
        check_src_env(src, &ModuleEnv::new())
    }

    fn check_src_env(src: &str, env: &ModuleEnv) -> (Option<CheckedModule>, Diagnostics) {
        let mut d = Diagnostics::new();
        let m = parse("test", src, &mut d);
        assert!(!d.has_errors(), "parse errors: {d:?}");
        let out = check(m, env, &mut d);
        (out, d)
    }

    fn ok(src: &str) -> CheckedModule {
        let (m, d) = check_src(src);
        m.unwrap_or_else(|| panic!("expected success, got: {d:?}"))
    }

    fn err(src: &str) -> Diagnostics {
        let (m, d) = check_src(src);
        assert!(m.is_none(), "expected failure for {src:?}");
        d
    }

    #[test]
    fn accepts_valid_program() {
        ok("fn add(a: int, b: int) -> int { return a + b; }");
    }

    #[test]
    fn const_eval_globals() {
        let m = ok("const A: int = 6 * 7;\nconst B: bool = A > 40;\nfn f() {}");
        assert_eq!(m.global_values["A"], 42);
        assert_eq!(m.global_values["B"], 1);
    }

    #[test]
    fn rejects_forward_constant_reference() {
        err("const A: int = B;\nconst B: int = 1;");
    }

    #[test]
    fn rejects_const_div_by_zero() {
        err("const A: int = 1 / 0;");
    }

    #[test]
    fn rejects_type_mismatch_in_let() {
        err("fn f() { let x: int = true; }");
    }

    #[test]
    fn rejects_unknown_variable() {
        err("fn f() -> int { return y; }");
    }

    #[test]
    fn rejects_bool_arithmetic() {
        err("fn f() -> int { return true + 1; }");
    }

    #[test]
    fn rejects_int_condition() {
        err("fn f(x: int) { if (x) { return; } }");
    }

    #[test]
    fn rejects_missing_return_path() {
        err("fn f(x: int) -> int { if (x > 0) { return 1; } }");
    }

    #[test]
    fn accepts_if_else_return_paths() {
        ok("fn f(x: int) -> int { if (x > 0) { return 1; } else { return 0; } }");
    }

    #[test]
    fn rejects_break_outside_loop() {
        err("fn f() { break; }");
    }

    #[test]
    fn accepts_break_in_loop() {
        ok("fn f() { while (true) { break; } }");
    }

    #[test]
    fn rejects_duplicate_function() {
        err("fn f() {}\nfn f() {}");
    }

    #[test]
    fn rejects_duplicate_param() {
        err("fn f(a: int, a: int) {}");
    }

    #[test]
    fn rejects_array_param() {
        err("fn f(a: [int; 4]) {}");
    }

    #[test]
    fn rejects_assign_to_constant() {
        err("const A: int = 1;\nfn f() { A = 2; }");
    }

    #[test]
    fn rejects_whole_array_use() {
        err("fn f() -> int { let a: [int; 4]; return a; }");
    }

    #[test]
    fn array_indexing_types() {
        ok("fn f() -> bool { let a: [bool; 4]; a[1] = true; return a[1]; }");
        err("fn f() -> int { let a: [bool; 4]; return a[0]; }");
    }

    #[test]
    fn rejects_index_on_scalar() {
        err("fn f(x: int) -> int { return x[0]; }");
    }

    #[test]
    fn builtin_print_accepts_int() {
        ok("fn f() { print(42); }");
        err("fn f() { print(true); }");
        err("fn f() -> int { return print(1); }");
    }

    #[test]
    fn rejects_redefining_print() {
        err("fn print(x: int) {}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        err("fn g(a: int) -> int { return a; }\nfn f() -> int { return g(1, 2); }");
    }

    #[test]
    fn cross_module_call_checked() {
        let mut env = ModuleEnv::new();
        let mut iface = ModuleInterface::default();
        iface.functions.insert(
            "helper".into(),
            FuncSig {
                name: "helper".into(),
                params: vec![TypeAst::Int],
                ret: Some(TypeAst::Int),
            },
        );
        env.insert("util", iface);
        let (m, d) = check_src_env(
            "import util;\nfn f() -> int { return util::helper(1); }",
            &env,
        );
        assert!(m.is_some(), "{d:?}");
        // Wrong arg type:
        let (m, _) = check_src_env(
            "import util;\nfn f() -> int { return util::helper(true); }",
            &env,
        );
        assert!(m.is_none());
        // Not imported:
        let (m, _) = check_src_env(
            "fn f() -> int { return util::helper(1); }",
            &ModuleEnv::new(),
        );
        assert!(m.is_none());
    }

    #[test]
    fn missing_import_target_is_error() {
        err("import nosuch;\nfn f() {}");
    }

    #[test]
    fn self_import_is_error() {
        err("import test;\nfn f() {}");
    }

    #[test]
    fn shadowing_in_nested_scope_allowed() {
        ok("fn f() -> int { let x: int = 1; { let x: int = 2; print(x); } return x; }");
    }

    #[test]
    fn redeclaration_in_same_scope_rejected() {
        err("fn f() { let x: int = 1; let x: int = 2; }");
    }

    #[test]
    fn for_loop_scoping() {
        // `i` is not visible after the loop.
        err("fn f() -> int { for (let i: int = 0; i < 3; i = i + 1) {} return i; }");
    }

    #[test]
    fn void_function_call_as_statement() {
        ok("fn g() {}\nfn f() { g(); }");
    }

    #[test]
    fn return_value_from_void_function_rejected() {
        err("fn f() { return 1; }");
    }

    #[test]
    fn bare_return_from_value_function_rejected() {
        err("fn f() -> int { return; }");
    }

    #[test]
    fn global_array_rejected() {
        err("const A: [int; 4] = 0;");
    }

    #[test]
    fn interface_extraction() {
        let m = ok("fn a(x: int) -> bool { return x > 0; }\nfn b() {}");
        assert_eq!(m.interface.functions.len(), 2);
        assert_eq!(m.interface.functions["a"].ret, Some(TypeAst::Bool));
    }

    #[test]
    fn warns_on_unused_variable() {
        let (m, d) = check_src("fn f() { let x: int = 1; }");
        assert!(m.is_some());
        assert!(
            d.iter().any(|diag| diag.message.contains("never read")),
            "{d:?}"
        );
    }

    #[test]
    fn underscore_names_suppress_unused_warning() {
        let (_, d) = check_src("fn f() { let _x: int = 1; }");
        assert!(
            !d.iter().any(|diag| diag.message.contains("never read")),
            "{d:?}"
        );
    }

    #[test]
    fn write_only_variable_still_warns() {
        let (_, d) = check_src("fn f() { let x: int = 1; x = 2; }");
        assert!(
            d.iter().any(|diag| diag.message.contains("never read")),
            "{d:?}"
        );
    }

    #[test]
    fn used_variable_does_not_warn() {
        let (_, d) = check_src("fn f() -> int { let x: int = 1; return x; }");
        assert!(
            !d.iter().any(|diag| diag.message.contains("never read")),
            "{d:?}"
        );
    }

    #[test]
    fn unused_parameter_does_not_warn() {
        let (_, d) = check_src("fn f(a: int) {}");
        assert!(
            !d.iter().any(|diag| diag.message.contains("never read")),
            "{d:?}"
        );
    }

    #[test]
    fn warns_on_unreachable_statement() {
        let (m, d) = check_src("fn f() -> int { return 1; print(2); }");
        assert!(m.is_some());
        assert!(
            d.iter().any(|diag| diag.message.contains("unreachable")),
            "{d:?}"
        );
    }

    #[test]
    fn warns_on_code_after_break() {
        let (_, d) = check_src("fn f() { while (true) { break; print(1); } }");
        assert!(
            d.iter().any(|diag| diag.message.contains("unreachable")),
            "{d:?}"
        );
    }

    #[test]
    fn split_check_matches_whole_module_check() {
        let src = "const K: int = 3;\n\
                   fn g(x: int) -> int { return x * K; }\n\
                   fn f(x: int) -> int { return g(x) + 1; }";
        let mut d = Diagnostics::new();
        let m = parse("test", src, &mut d);
        let env = ModuleEnv::new();
        let level = check_module_level(&m, &env, &mut d).expect("module level ok");
        assert_eq!(level.global_values["K"], 3);
        assert_eq!(level.local_sigs.len(), 2);
        for func in &m.functions {
            assert!(check_function_with(&m, &env, &level, func, &mut d));
        }
        assert!(!d.has_errors());
    }

    #[test]
    fn split_check_surfaces_body_errors_per_function() {
        let src = "fn ok() {}\nfn bad() -> int { return true; }";
        let mut d = Diagnostics::new();
        let m = parse("test", src, &mut d);
        let env = ModuleEnv::new();
        let level = check_module_level(&m, &env, &mut d).expect("module level ok");
        assert!(check_function_with(
            &m,
            &env,
            &level,
            m.function("ok").unwrap(),
            &mut d
        ));
        assert!(!check_function_with(
            &m,
            &env,
            &level,
            m.function("bad").unwrap(),
            &mut d
        ));
    }

    #[test]
    fn module_level_rejects_duplicate_functions() {
        let mut d = Diagnostics::new();
        let m = parse("test", "fn f() {}\nfn f() {}", &mut d);
        assert!(check_module_level(&m, &ModuleEnv::new(), &mut d).is_none());
    }

    #[test]
    fn pruned_local_sigs_make_unlisted_callees_unknown() {
        let src = "fn g() {}\nfn f() { g(); }";
        let mut d = Diagnostics::new();
        let m = parse("test", src, &mut d);
        let env = ModuleEnv::new();
        let mut level = check_module_level(&m, &env, &mut d).expect("module level ok");
        level.local_sigs.remove("g");
        assert!(!check_function_with(
            &m,
            &env,
            &level,
            m.function("f").unwrap(),
            &mut d
        ));
        assert!(d
            .iter()
            .any(|diag| diag.message.contains("unknown function")));
    }

    #[test]
    fn no_unreachable_warning_for_straightline() {
        let (_, d) = check_src("fn f() { print(1); print(2); }");
        assert!(
            !d.iter().any(|diag| diag.message.contains("unreachable")),
            "{d:?}"
        );
    }
}
