//! # sfcc-frontend
//!
//! The MiniC front end of the `sfcc` stateful compiler: lexing, parsing,
//! and semantic analysis.
//!
//! MiniC is a small C-like language (64-bit integers, booleans, fixed-size
//! arrays, functions, module imports) designed so that a complete optimizing
//! pipeline — the substrate required to reproduce *"Enabling Fine-Grained
//! Incremental Builds by Making Compiler Stateful"* (CGO 2024) — can be built
//! and evaluated end to end.
//!
//! # Examples
//!
//! ```
//! use sfcc_frontend::{parse_and_check, ModuleEnv, Diagnostics};
//!
//! let src = "fn double(x: int) -> int { return x * 2; }";
//! let mut diags = Diagnostics::new();
//! let checked = parse_and_check("demo", src, &ModuleEnv::new(), &mut diags)
//!     .expect("valid program");
//! assert_eq!(checked.ast.functions[0].name, "double");
//! ```

pub mod ast;
pub mod diag;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod source;
pub mod token;

pub use ast::Module;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use fingerprint::{callees_of, def_fingerprint};
pub use sema::{
    check, check_function_with, check_module_level, CheckedModule, FuncSig, ModuleEnv,
    ModuleInterface, ModuleLevel, BUILTIN_PRINT,
};
pub use source::{LineCol, SourceFile, Span};

/// Parses and type-checks `text` as module `name` in one step.
///
/// # Errors
///
/// Returns `None` when any parse or semantic error was recorded in `diags`.
pub fn parse_and_check(
    name: &str,
    text: &str,
    env: &ModuleEnv,
    diags: &mut Diagnostics,
) -> Option<CheckedModule> {
    let module = parser::parse(name, text, diags);
    if diags.has_errors() {
        return None;
    }
    sema::check(module, env, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_check_roundtrip() {
        let mut d = Diagnostics::new();
        let m = parse_and_check(
            "m",
            "const K: int = 3;\nfn f(x: int) -> int { return x * K; }",
            &ModuleEnv::new(),
            &mut d,
        );
        assert!(m.is_some());
    }

    #[test]
    fn parse_errors_short_circuit_sema() {
        let mut d = Diagnostics::new();
        let m = parse_and_check("m", "fn f( {", &ModuleEnv::new(), &mut d);
        assert!(m.is_none());
        assert!(d.has_errors());
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The lexer+parser+checker must never panic, whatever the input.
        #[test]
        fn frontend_never_panics_on_arbitrary_text(src in ".{0,400}") {
            let mut d = Diagnostics::new();
            let _ = parse_and_check("fuzz", &src, &ModuleEnv::new(), &mut d);
        }

        /// Same for inputs biased toward MiniC's own alphabet, which reach
        /// much deeper into the parser.
        #[test]
        fn frontend_never_panics_on_minic_alphabet(
            src in "[a-z0-9_ \\t\\n(){}\\[\\];:,+\\-*/%<>=!&|^]{0,400}"
        ) {
            let mut d = Diagnostics::new();
            let _ = parse_and_check("fuzz", &src, &ModuleEnv::new(), &mut d);
        }

        /// Every diagnostic's span must be renderable against the source
        /// (in bounds, on char boundaries).
        #[test]
        fn diagnostics_always_render(src in "[a-zλ0-9_ \\t\\n(){};:,+\\-*/<>=!]{0,200}") {
            let mut d = Diagnostics::new();
            let _ = parser::parse("fuzz", &src, &mut d);
            let file = SourceFile::new("fuzz.mc", src);
            for diag in d.iter() {
                let _ = diag.render(&file);
            }
        }
    }
}
