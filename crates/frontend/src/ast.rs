//! Abstract syntax tree for MiniC.
//!
//! A MiniC source file defines one *module*: a list of imports, global
//! constants, and functions. The grammar is C-like with Rust-flavoured
//! syntax:
//!
//! ```text
//! import util;
//!
//! const LIMIT: int = 64;
//!
//! fn clamp(x: int) -> int {
//!     if (x > LIMIT) { return LIMIT; }
//!     return x;
//! }
//! ```

use crate::source::Span;
use std::fmt;

/// A type written in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeAst {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Fixed-size array of `int`, e.g. `[int; 16]`.
    IntArray(u32),
    /// Fixed-size array of `bool`, e.g. `[bool; 16]`.
    BoolArray(u32),
}

impl fmt::Display for TypeAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeAst::Int => f.write_str("int"),
            TypeAst::Bool => f.write_str("bool"),
            TypeAst::IntArray(n) => write!(f, "[int; {n}]"),
            TypeAst::BoolArray(n) => write!(f, "[bool; {n}]"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (traps on division by zero)
    Div,
    /// `%` (traps on division by zero)
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<` (shift amount masked to 0..63)
    Shl,
    /// `>>` (arithmetic; shift amount masked to 0..63)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Whether this is a comparison producing `bool` from two `int`s.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this is short-circuit boolean logic.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            And => "&&",
            Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!b`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable or global-constant reference.
    Var(String),
    /// Array element read: `name[index]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call; `module` is `None` for same-module or builtin calls.
    Call {
        /// Imported module qualifier, as in `util::helper(x)`.
        module: Option<String>,
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Creates an expression with the given kind and span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Number of nodes in this expression tree (used by workload statistics).
    pub fn node_count(&self) -> usize {
        1 + match &self.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => 0,
            ExprKind::Index(_, e) | ExprKind::Unary(_, e) => e.node_count(),
            ExprKind::Binary(_, l, r) => l.node_count() + r.node_count(),
            ExprKind::Call { args, .. } => args.iter().map(Expr::node_count).sum(),
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String, Span),
    /// An array element: `name[index]`.
    Index(String, Box<Expr>, Span),
}

impl LValue {
    /// The source span of the whole lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, s) => *s,
            LValue::Index(_, _, s) => *s,
        }
    }

    /// The root variable name.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n, _) => n,
            LValue::Index(n, _, _) => n,
        }
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name: ty = init;` — `init` is `None` for array declarations.
    Let {
        /// Declared variable name.
        name: String,
        /// Declared type.
        ty: TypeAst,
        /// Initializer (required for scalars, absent for arrays).
        init: Option<Expr>,
    },
    /// `lvalue = expr;`
    Assign(LValue, Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition (must be `bool`).
        cond: Expr,
        /// Taken when the condition is true.
        then_block: Block,
        /// Taken when the condition is false, if present.
        else_block: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition (must be `bool`).
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; step) { .. }` — desugared by the lowerer.
    For {
        /// Loop-scoped init statement (a `Let` or `Assign`), if present.
        init: Option<Box<Stmt>>,
        /// Loop condition, if present (absent means `true`).
        cond: Option<Expr>,
        /// Step statement (an `Assign`), if present.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return expr;` or bare `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An expression evaluated for effect (must be a call).
    Expr(Expr),
    /// A nested `{ .. }` scope.
    Block(Block),
}

/// A brace-delimited statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Span of the whole block including braces.
    pub span: Span,
}

impl Block {
    /// Counts every statement, recursing into nested blocks and bodies.
    pub fn stmt_count(&self) -> usize {
        fn count(stmt: &Stmt) -> usize {
            1 + match &stmt.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => then_block.stmt_count() + else_block.as_ref().map_or(0, Block::stmt_count),
                StmtKind::While { body, .. } => body.stmt_count(),
                StmtKind::For {
                    body, init, step, ..
                } => {
                    body.stmt_count()
                        + init.as_deref().map_or(0, count)
                        + step.as_deref().map_or(0, count)
                }
                StmtKind::Block(b) => b.stmt_count(),
                _ => 0,
            }
        }
        self.stmts.iter().map(count).sum()
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (scalars only — arrays cannot be parameters).
    pub ty: TypeAst,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name, unique within its module.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type; `None` means the function returns nothing.
    pub ret: Option<TypeAst>,
    /// Function body.
    pub body: Block,
    /// Span of the whole definition.
    pub span: Span,
}

/// A module-level constant: `const NAME: int = <const expr>;`.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Constant name, unique within its module.
    pub name: String,
    /// Declared type.
    pub ty: TypeAst,
    /// Initializer, restricted by sema to a constant expression.
    pub init: Expr,
    /// Span of the whole definition.
    pub span: Span,
}

/// An `import other_module;` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Name of the imported module.
    pub module: String,
    /// Source location.
    pub span: Span,
}

/// A parsed MiniC source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name (derived from the file name by the driver).
    pub name: String,
    /// Imports in source order.
    pub imports: Vec<Import>,
    /// Global constants in source order.
    pub globals: Vec<GlobalDef>,
    /// Functions in source order.
    pub functions: Vec<FunctionDef>,
}

impl Module {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total statement count across all functions.
    pub fn stmt_count(&self) -> usize {
        self.functions.iter().map(|f| f.body.stmt_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn type_display() {
        assert_eq!(TypeAst::Int.to_string(), "int");
        assert_eq!(TypeAst::IntArray(8).to_string(), "[int; 8]");
    }

    #[test]
    fn expr_node_count() {
        let s = Span::point(0);
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::new(ExprKind::Int(1), s)),
                Box::new(Expr::new(ExprKind::Var("x".into()), s)),
            ),
            s,
        );
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn block_stmt_count_recurses() {
        let s = Span::point(0);
        let inner = Block {
            stmts: vec![Stmt {
                kind: StmtKind::Break,
                span: s,
            }],
            span: s,
        };
        let b = Block {
            stmts: vec![Stmt {
                kind: StmtKind::While {
                    cond: Expr::new(ExprKind::Bool(true), s),
                    body: inner,
                },
                span: s,
            }],
            span: s,
        };
        assert_eq!(b.stmt_count(), 2);
    }
}
