//! The MiniC lexer: converts source text into a token stream.

use crate::diag::Diagnostics;
use crate::source::Span;
use crate::token::{Token, TokenKind};

/// Lexes `text` into tokens, recording malformed input in `diags`.
///
/// The returned vector always ends with a single [`TokenKind::Eof`] token.
/// Lexing never fails outright: unknown characters produce an error
/// diagnostic and are skipped so the parser can keep going.
pub fn lex(text: &str, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer::new(text, diags).run()
}

struct Lexer<'a, 'd> {
    bytes: &'a [u8],
    pos: usize,
    diags: &'d mut Diagnostics,
    tokens: Vec<Token>,
}

impl<'a, 'd> Lexer<'a, 'd> {
    fn new(text: &'a str, diags: &'d mut Diagnostics) -> Self {
        Lexer {
            bytes: text.as_bytes(),
            pos: 0,
            diags,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos as u32;
            let b = self.bytes[self.pos];
            match b {
                b'0'..=b'9' => self.lex_number(start),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                _ => self.lex_operator(start),
            }
        }
        let end = self.bytes.len() as u32;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::point(end)));
        self.tokens
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek(0) {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == b'*' => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut closed = false;
                    while self.pos < self.bytes.len() {
                        if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        self.diags.error(
                            "unterminated block comment",
                            Span::new(start, self.pos as u32),
                        );
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_number(&mut self, start: u32) {
        let mut value: i64 = 0;
        let mut overflow = false;
        if self.peek(0) == b'0' && (self.peek(1) == b'x' || self.peek(1) == b'X') {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek(0).is_ascii_hexdigit() || self.peek(0) == b'_' {
                let b = self.bytes[self.pos];
                self.pos += 1;
                if b == b'_' {
                    continue;
                }
                let digit = (b as char).to_digit(16).expect("hex digit") as i64;
                let (v, o1) = value.overflowing_mul(16);
                let (v, o2) = v.overflowing_add(digit);
                value = v;
                overflow |= o1 | o2;
            }
            if self.pos == digits_start {
                self.diags.error(
                    "hex literal needs at least one digit",
                    Span::new(start, self.pos as u32),
                );
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                let b = self.bytes[self.pos];
                self.pos += 1;
                if b == b'_' {
                    continue;
                }
                let digit = (b - b'0') as i64;
                let (v, o1) = value.overflowing_mul(10);
                let (v, o2) = v.overflowing_add(digit);
                value = v;
                overflow |= o1 | o2;
            }
        }
        let span = Span::new(start, self.pos as u32);
        if overflow {
            self.diags
                .error("integer literal does not fit in 64 bits", span);
            value = 0;
        }
        self.tokens.push(Token::int(span, value));
    }

    fn lex_ident(&mut self, start: u32) {
        while matches!(self.peek(0), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let span = Span::new(start, self.pos as u32);
        let text = std::str::from_utf8(&self.bytes[start as usize..self.pos]).expect("ascii ident");
        let kind = TokenKind::keyword(text).unwrap_or(TokenKind::Ident);
        self.tokens.push(Token::new(kind, span));
    }

    fn lex_operator(&mut self, start: u32) {
        use TokenKind::*;
        let b = self.bytes[self.pos];
        let two = |l: &Self| (l.peek(0), l.peek(1));
        let (kind, len) = match b {
            b'(' => (LParen, 1),
            b')' => (RParen, 1),
            b'{' => (LBrace, 1),
            b'}' => (RBrace, 1),
            b'[' => (LBracket, 1),
            b']' => (RBracket, 1),
            b',' => (Comma, 1),
            b';' => (Semi, 1),
            b':' if two(self) == (b':', b':') => (PathSep, 2),
            b':' => (Colon, 1),
            b'+' => (Plus, 1),
            b'-' if self.peek(1) == b'>' => (Arrow, 2),
            b'-' => (Minus, 1),
            b'*' => (Star, 1),
            b'/' => (Slash, 1),
            b'%' => (Percent, 1),
            b'=' if self.peek(1) == b'=' => (EqEq, 2),
            b'=' => (Eq, 1),
            b'!' if self.peek(1) == b'=' => (BangEq, 2),
            b'!' => (Bang, 1),
            b'<' if self.peek(1) == b'=' => (Le, 2),
            b'<' if self.peek(1) == b'<' => (Shl, 2),
            b'<' => (Lt, 1),
            b'>' if self.peek(1) == b'=' => (Ge, 2),
            b'>' if self.peek(1) == b'>' => (Shr, 2),
            b'>' => (Gt, 1),
            b'&' if self.peek(1) == b'&' => (AmpAmp, 2),
            b'&' => (Amp, 1),
            b'|' if self.peek(1) == b'|' => (PipePipe, 2),
            b'|' => (Pipe, 1),
            b'^' => (Caret, 1),
            _ => {
                // Skip one whole UTF-8 char so we never split a code point.
                let text = std::str::from_utf8(&self.bytes[self.pos..]).unwrap_or("?");
                let ch = text.chars().next().unwrap_or('?');
                let clen = ch.len_utf8();
                self.diags.error(
                    format!("unexpected character '{ch}'"),
                    Span::new(start, start + clen as u32),
                );
                self.pos += clen;
                return;
            }
        };
        self.pos += len;
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos as u32)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut d = Diagnostics::new();
        let toks = lex(src, &mut d);
        assert!(!d.has_errors(), "unexpected lex errors: {d:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("fn main() -> int"),
            vec![KwFn, Ident, LParen, RParen, Arrow, KwInt, Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        let mut d = Diagnostics::new();
        let toks = lex("42 0x2A 1_000", &mut d);
        assert!(!d.has_errors());
        assert_eq!(toks[0].value, 42);
        assert_eq!(toks[1].value, 42);
        assert_eq!(toks[2].value, 1000);
    }

    #[test]
    fn lexes_all_multichar_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("== != <= >= && || << >> -> ::"),
            vec![EqEq, BangEq, Le, Ge, AmpAmp, PipePipe, Shl, Shr, Arrow, PathSep, Eof]
        );
    }

    #[test]
    fn adjacent_angle_brackets() {
        use TokenKind::*;
        assert_eq!(kinds("a < b > c"), vec![Ident, Lt, Ident, Gt, Ident, Eof]);
    }

    #[test]
    fn skips_line_and_block_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // c\n b /* x\n y */ c"),
            vec![Ident, Ident, Ident, Eof]
        );
    }

    #[test]
    fn reports_unterminated_block_comment() {
        let mut d = Diagnostics::new();
        lex("a /* never closed", &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn reports_unknown_char_and_continues() {
        let mut d = Diagnostics::new();
        let toks = lex("a @ b", &mut d);
        assert!(d.has_errors());
        assert_eq!(toks.len(), 3); // a, b, eof
    }

    #[test]
    fn reports_overflowing_literal() {
        let mut d = Diagnostics::new();
        let toks = lex("99999999999999999999999", &mut d);
        assert!(d.has_errors());
        assert_eq!(toks[0].value, 0);
    }

    #[test]
    fn eof_token_at_end() {
        let mut d = Diagnostics::new();
        let toks = lex("", &mut d);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }

    #[test]
    fn non_ascii_char_is_single_error() {
        let mut d = Diagnostics::new();
        let toks = lex("a λ b", &mut d);
        assert_eq!(d.error_count(), 1);
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn spans_are_correct() {
        let mut d = Diagnostics::new();
        let toks = lex("let x", &mut d);
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 5));
    }
}
