//! Source text management: byte spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// Spans are attached to tokens, AST nodes and diagnostics so that errors can
/// be reported with precise locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// A zero-length span at `pos`.
    pub fn point(pos: u32) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column pair, both 1-based, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, not grapheme clusters).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source file: its name, full text, and a lazily built line index.
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    /// Byte offsets of the first character of every line.
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Creates a source file from a name (used in diagnostics) and its text.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The file name used in diagnostics.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The complete source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The text covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or not on a char boundary.
    pub fn snippet(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }

    /// Resolves a byte offset to a 1-based line/column pair.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Number of lines in the file (at least 1, even when empty).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Returns the text of the 1-based `line`, without its trailing newline,
    /// or `None` when out of range.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let idx = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(idx)? as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&s| s as usize)
            .unwrap_or(self.text.len());
        Some(self.text[start..end].trim_end_matches(['\n', '\r']))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_point_is_empty() {
        assert!(Span::point(9).is_empty());
        assert_eq!(Span::new(2, 4).len(), 2);
    }

    #[test]
    fn line_col_resolution() {
        let f = SourceFile::new("t.mc", "ab\ncd\n\nefg");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(f.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn line_text_lookup() {
        let f = SourceFile::new("t.mc", "ab\ncd\n\nefg");
        assert_eq!(f.line_text(1), Some("ab"));
        assert_eq!(f.line_text(2), Some("cd"));
        assert_eq!(f.line_text(3), Some(""));
        assert_eq!(f.line_text(4), Some("efg"));
        assert_eq!(f.line_text(5), None);
        assert_eq!(f.line_text(0), None);
    }

    #[test]
    fn empty_file_has_one_line() {
        let f = SourceFile::new("e.mc", "");
        assert_eq!(f.line_count(), 1);
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn snippet_extracts_span() {
        let f = SourceFile::new("t.mc", "let x = 42;");
        assert_eq!(f.snippet(Span::new(4, 5)), "x");
    }
}
