//! Token definitions for the MiniC lexer.

use crate::source::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal; the value is stored in [`Token::value`].
    IntLit,
    /// An identifier.
    Ident,

    // Keywords
    /// `fn`
    KwFn,
    /// `let`
    KwLet,
    /// `const`
    KwConst,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `int`
    KwInt,
    /// `bool`
    KwBool,
    /// `import`
    KwImport,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `::` (module path separator)
    PathSep,

    // Operators
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description, used in parse errors.
    pub fn describe(self) -> &'static str {
        use TokenKind::*;
        match self {
            IntLit => "integer literal",
            Ident => "identifier",
            KwFn => "'fn'",
            KwLet => "'let'",
            KwConst => "'const'",
            KwIf => "'if'",
            KwElse => "'else'",
            KwWhile => "'while'",
            KwFor => "'for'",
            KwReturn => "'return'",
            KwBreak => "'break'",
            KwContinue => "'continue'",
            KwTrue => "'true'",
            KwFalse => "'false'",
            KwInt => "'int'",
            KwBool => "'bool'",
            KwImport => "'import'",
            LParen => "'('",
            RParen => "')'",
            LBrace => "'{'",
            RBrace => "'}'",
            LBracket => "'['",
            RBracket => "']'",
            Comma => "','",
            Semi => "';'",
            Colon => "':'",
            Arrow => "'->'",
            PathSep => "'::'",
            Plus => "'+'",
            Minus => "'-'",
            Star => "'*'",
            Slash => "'/'",
            Percent => "'%'",
            Eq => "'='",
            EqEq => "'=='",
            BangEq => "'!='",
            Lt => "'<'",
            Le => "'<='",
            Gt => "'>'",
            Ge => "'>='",
            AmpAmp => "'&&'",
            PipePipe => "'||'",
            Bang => "'!'",
            Amp => "'&'",
            Pipe => "'|'",
            Caret => "'^'",
            Shl => "'<<'",
            Shr => "'>>'",
            Eof => "end of input",
        }
    }

    /// Looks up the keyword kind for an identifier-shaped lexeme.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match text {
            "fn" => KwFn,
            "let" => KwLet,
            "const" => KwConst,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "for" => KwFor,
            "return" => KwReturn,
            "break" => KwBreak,
            "continue" => KwContinue,
            "true" => KwTrue,
            "false" => KwFalse,
            "int" => KwInt,
            "bool" => KwBool,
            "import" => KwImport,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A lexical token: kind, source span, and (for integer literals) the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
    /// The parsed value for [`TokenKind::IntLit`]; `0` otherwise.
    pub value: i64,
}

impl Token {
    /// Creates a non-literal token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token {
            kind,
            span,
            value: 0,
        }
    }

    /// Creates an integer-literal token with its parsed value.
    pub fn int(span: Span, value: i64) -> Self {
        Token {
            kind: TokenKind::IntLit,
            span,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("fn"), Some(TokenKind::KwFn));
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("notakw"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        assert!(!TokenKind::Eof.describe().is_empty());
        assert_eq!(TokenKind::Arrow.describe(), "'->'");
    }
}
