//! Diagnostics: structured errors and warnings with source locations.

use crate::source::{SourceFile, Span};
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A note attached to another diagnostic or informational output.
    Note,
    /// A condition that is suspicious but does not prevent compilation.
    Warning,
    /// A condition that prevents successful compilation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// A single compiler diagnostic: severity, message, and primary location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the condition is.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary notes with their own locations.
    pub notes: Vec<(String, Span)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note; returns `self` for chaining.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic against its source file, e.g.
    /// `t.mc:3:5: error: unknown variable 'y'`.
    pub fn render(&self, file: &SourceFile) -> String {
        use std::fmt::Write as _;
        let lc = file.line_col(self.span.start);
        let mut out = format!(
            "{}:{}: {}: {}",
            file.name(),
            lc,
            self.severity,
            self.message
        );
        if let Some(line) = file.line_text(lc.line) {
            let _ = write!(
                out,
                "\n  | {line}\n  | {:>width$}",
                "^",
                width = lc.col as usize
            );
        }
        for (msg, span) in &self.notes {
            let nlc = file.line_col(span.start);
            let _ = write!(out, "\n{}:{}: note: {}", file.name(), nlc, msg);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {}", self.severity, self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

/// A collection of diagnostics accumulated during a front-end phase.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.items.push(diag);
    }

    /// Records an error with the given message and span.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Records a warning with the given message and span.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// All recorded diagnostics, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.len(); // keep clippy happy about unused receiver in some configs
        self.items.iter()
    }

    /// Whether no diagnostics were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Moves all diagnostics from `other` into `self`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Renders every diagnostic against `file`, one per line group.
    pub fn render_all(&self, file: &SourceFile) -> String {
        self.items
            .iter()
            .map(|d| d.render(file))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn diagnostics_track_errors() {
        let mut d = Diagnostics::new();
        assert!(!d.has_errors());
        d.warning("suspicious", Span::point(0));
        assert!(!d.has_errors());
        d.error("broken", Span::point(1));
        assert!(d.has_errors());
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn render_includes_location_and_caret() {
        let f = SourceFile::new("t.mc", "let y = x;");
        let diag = Diagnostic::error("unknown variable 'x'", Span::new(8, 9));
        let rendered = diag.render(&f);
        assert!(
            rendered.starts_with("t.mc:1:9: error: unknown variable 'x'"),
            "{rendered}"
        );
        assert!(rendered.contains("let y = x;"), "{rendered}");
    }

    #[test]
    fn notes_are_rendered() {
        let f = SourceFile::new("t.mc", "fn a() -> int {}\n");
        let diag = Diagnostic::error("duplicate function 'a'", Span::new(3, 4))
            .with_note("previous definition here", Span::new(3, 4));
        let rendered = diag.render(&f);
        assert!(
            rendered.contains("note: previous definition here"),
            "{rendered}"
        );
    }

    #[test]
    fn extend_merges() {
        let mut a = Diagnostics::new();
        a.error("one", Span::point(0));
        let mut b = Diagnostics::new();
        b.error("two", Span::point(1));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
