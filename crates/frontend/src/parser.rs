//! Recursive-descent parser for MiniC with panic-mode error recovery.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::source::Span;
use crate::token::{Token, TokenKind};

/// Parses `text` into a [`Module`] named `module_name`.
///
/// Parsing always produces a module; syntax errors are recorded in `diags`
/// and the parser recovers at the next statement or item boundary, so a
/// partially valid file still yields the valid parts.
pub fn parse(module_name: &str, text: &str, diags: &mut Diagnostics) -> Module {
    let tokens = lex(text, diags);
    Parser {
        source: text,
        tokens,
        pos: 0,
        diags,
    }
    .module(module_name)
}

struct Parser<'a, 'd> {
    source: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    diags: &'d mut Diagnostics,
}

/// Binding powers for binary operators (higher binds tighter).
fn binop_power(kind: TokenKind) -> Option<(BinOp, u8)> {
    use TokenKind::*;
    Some(match kind {
        PipePipe => (BinOp::Or, 1),
        AmpAmp => (BinOp::And, 2),
        EqEq => (BinOp::Eq, 3),
        BangEq => (BinOp::Ne, 3),
        Lt => (BinOp::Lt, 4),
        Le => (BinOp::Le, 4),
        Gt => (BinOp::Gt, 4),
        Ge => (BinOp::Ge, 4),
        Pipe => (BinOp::BitOr, 5),
        Caret => (BinOp::BitXor, 6),
        Amp => (BinOp::BitAnd, 7),
        Shl => (BinOp::Shl, 8),
        Shr => (BinOp::Shr, 8),
        Plus => (BinOp::Add, 9),
        Minus => (BinOp::Sub, 9),
        Star => (BinOp::Mul, 10),
        Slash => (BinOp::Div, 10),
        Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

impl<'a, 'd> Parser<'a, 'd> {
    fn peek(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> TokenKind {
        self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Option<Token> {
        if self.at(kind) {
            Some(self.bump())
        } else {
            let got = self.peek();
            self.diags.error(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    got.kind.describe()
                ),
                got.span,
            );
            None
        }
    }

    fn ident_text(&mut self) -> Option<(String, Span)> {
        if self.at(TokenKind::Ident) {
            let t = self.bump();
            Some((self.snippet(t.span), t.span))
        } else {
            let got = self.peek();
            self.diags.error(
                format!("expected identifier, found {}", got.kind.describe()),
                got.span,
            );
            None
        }
    }

    fn snippet(&self, span: Span) -> String {
        self.source[span.start as usize..span.end as usize].to_string()
    }

    // --- items ---------------------------------------------------------

    fn module(mut self, name: &str) -> Module {
        let mut module = Module {
            name: name.to_string(),
            ..Module::default()
        };
        while !self.at(TokenKind::Eof) {
            match self.peek_kind() {
                TokenKind::KwImport => {
                    let start = self.bump().span;
                    if let Some((m, span)) = self.ident_text() {
                        self.expect(TokenKind::Semi);
                        module.imports.push(Import {
                            module: m,
                            span: start.merge(span),
                        });
                    } else {
                        self.recover_to_item();
                    }
                }
                TokenKind::KwConst => {
                    if let Some(g) = self.global() {
                        module.globals.push(g);
                    } else {
                        self.recover_to_item();
                    }
                }
                TokenKind::KwFn => {
                    if let Some(f) = self.function() {
                        module.functions.push(f);
                    } else {
                        self.recover_to_item();
                    }
                }
                _ => {
                    let got = self.peek();
                    self.diags.error(
                        format!(
                            "expected 'fn', 'const' or 'import', found {}",
                            got.kind.describe()
                        ),
                        got.span,
                    );
                    self.recover_to_item();
                }
            }
        }
        module
    }

    fn recover_to_item(&mut self) {
        while !matches!(
            self.peek_kind(),
            TokenKind::Eof | TokenKind::KwFn | TokenKind::KwConst | TokenKind::KwImport
        ) {
            self.bump();
        }
    }

    fn global(&mut self) -> Option<GlobalDef> {
        let start = self.expect(TokenKind::KwConst)?.span;
        let (name, _) = self.ident_text()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_ast()?;
        self.expect(TokenKind::Eq)?;
        let init = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Some(GlobalDef {
            name,
            ty,
            init,
            span: start.merge(end),
        })
    }

    fn function(&mut self) -> Option<FunctionDef> {
        let start = self.expect(TokenKind::KwFn)?.span;
        let (name, _) = self.ident_text()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.at(TokenKind::RParen) && !self.at(TokenKind::Eof) {
            let (pname, pspan) = self.ident_text()?;
            self.expect(TokenKind::Colon)?;
            let ty = self.type_ast()?;
            params.push(Param {
                name: pname,
                ty,
                span: pspan,
            });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(TokenKind::Arrow) {
            Some(self.type_ast()?)
        } else {
            None
        };
        let body = self.block()?;
        let span = start.merge(body.span);
        Some(FunctionDef {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn type_ast(&mut self) -> Option<TypeAst> {
        match self.peek_kind() {
            TokenKind::KwInt => {
                self.bump();
                Some(TypeAst::Int)
            }
            TokenKind::KwBool => {
                self.bump();
                Some(TypeAst::Bool)
            }
            TokenKind::LBracket => {
                self.bump();
                let elem_is_int = match self.peek_kind() {
                    TokenKind::KwInt => true,
                    TokenKind::KwBool => false,
                    other => {
                        let span = self.peek().span;
                        self.diags.error(
                            format!(
                                "expected 'int' or 'bool' array element, found {}",
                                other.describe()
                            ),
                            span,
                        );
                        return None;
                    }
                };
                self.bump();
                self.expect(TokenKind::Semi)?;
                let len_tok = self.expect(TokenKind::IntLit)?;
                self.expect(TokenKind::RBracket)?;
                let len = len_tok.value;
                if !(1..=1 << 20).contains(&len) {
                    self.diags
                        .error("array length must be between 1 and 2^20", len_tok.span);
                    return None;
                }
                Some(if elem_is_int {
                    TypeAst::IntArray(len as u32)
                } else {
                    TypeAst::BoolArray(len as u32)
                })
            }
            other => {
                let span = self.peek().span;
                self.diags
                    .error(format!("expected type, found {}", other.describe()), span);
                None
            }
        }
    }

    // --- statements ----------------------------------------------------

    fn block(&mut self) -> Option<Block> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => self.recover_to_stmt(),
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Some(Block {
            stmts,
            span: start.merge(end),
        })
    }

    fn recover_to_stmt(&mut self) {
        loop {
            match self.peek_kind() {
                TokenKind::Eof | TokenKind::RBrace => return,
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::KwLet => self.let_stmt(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                let span = start.merge(body.span);
                Some(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Some(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.merge(end),
                })
            }
            TokenKind::KwBreak => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Some(Stmt {
                    kind: StmtKind::Break,
                    span: start.merge(end),
                })
            }
            TokenKind::KwContinue => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Some(Stmt {
                    kind: StmtKind::Continue,
                    span: start.merge(end),
                })
            }
            TokenKind::LBrace => {
                let b = self.block()?;
                let span = b.span;
                Some(Stmt {
                    kind: StmtKind::Block(b),
                    span,
                })
            }
            _ => self.assign_or_expr_stmt(),
        }
    }

    fn let_stmt(&mut self) -> Option<Stmt> {
        let start = self.expect(TokenKind::KwLet)?.span;
        let (name, _) = self.ident_text()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_ast()?;
        let init = if self.eat(TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Some(Stmt {
            kind: StmtKind::Let { name, ty, init },
            span: start.merge(end),
        })
    }

    fn if_stmt(&mut self) -> Option<Stmt> {
        let start = self.expect(TokenKind::KwIf)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_block = self.block()?;
        let mut span = start.merge(then_block.span);
        let else_block = if self.eat(TokenKind::KwElse) {
            if self.at(TokenKind::KwIf) {
                // `else if` chains: wrap the nested if in a synthetic block.
                let nested = self.if_stmt()?;
                let nspan = nested.span;
                span = span.merge(nspan);
                Some(Block {
                    stmts: vec![nested],
                    span: nspan,
                })
            } else {
                let b = self.block()?;
                span = span.merge(b.span);
                Some(b)
            }
        } else {
            None
        };
        Some(Stmt {
            kind: StmtKind::If {
                cond,
                then_block,
                else_block,
            },
            span,
        })
    }

    fn for_stmt(&mut self) -> Option<Stmt> {
        let start = self.expect(TokenKind::KwFor)?.span;
        self.expect(TokenKind::LParen)?;
        let init = if self.at(TokenKind::Semi) {
            self.bump();
            None
        } else if self.at(TokenKind::KwLet) {
            Some(Box::new(self.let_stmt()?))
        } else {
            let s = self.simple_assign()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(s))
        };
        let cond = if self.at(TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.at(TokenKind::RParen) {
            None
        } else {
            Some(Box::new(self.simple_assign()?))
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.merge(body.span);
        Some(Stmt {
            kind: StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            span,
        })
    }

    /// Parses `lvalue = expr` without the trailing semicolon (for `for` headers).
    fn simple_assign(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        let lv = self.lvalue()?;
        self.expect(TokenKind::Eq)?;
        let value = self.expr()?;
        let span = start.merge(value.span);
        Some(Stmt {
            kind: StmtKind::Assign(lv, value),
            span,
        })
    }

    fn lvalue(&mut self) -> Option<LValue> {
        let (name, span) = self.ident_text()?;
        if self.eat(TokenKind::LBracket) {
            let idx = self.expr()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            Some(LValue::Index(name, Box::new(idx), span.merge(end)))
        } else {
            Some(LValue::Var(name, span))
        }
    }

    fn assign_or_expr_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        // Distinguish `x = ..` / `x[i] = ..` from a call expression by
        // parsing a full expression and inspecting what follows.
        let expr = self.expr()?;
        if self.at(TokenKind::Eq) {
            // Reinterpret the parsed expression as an lvalue.
            let lv = match expr.kind {
                ExprKind::Var(name) => LValue::Var(name, expr.span),
                ExprKind::Index(name, idx) => LValue::Index(name, idx, expr.span),
                _ => {
                    self.diags.error("invalid assignment target", expr.span);
                    self.recover_to_stmt();
                    return None;
                }
            };
            self.bump(); // `=`
            let value = self.expr()?;
            let end = self.expect(TokenKind::Semi)?.span;
            Some(Stmt {
                kind: StmtKind::Assign(lv, value),
                span: start.merge(end),
            })
        } else {
            let end = self.expect(TokenKind::Semi)?.span;
            if !matches!(expr.kind, ExprKind::Call { .. }) {
                self.diags
                    .warning("expression statement has no effect", expr.span);
            }
            Some(Stmt {
                kind: StmtKind::Expr(expr),
                span: start.merge(end),
            })
        }
    }

    // --- expressions -----------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> Option<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = binop_power(self.peek_kind()) {
            if bp <= min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr_bp(bp)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Some(lhs)
    }

    fn unary(&mut self) -> Option<Expr> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Some(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), span))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Some(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), span))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Option<Expr> {
        let tok = self.peek();
        match tok.kind {
            TokenKind::IntLit => {
                self.bump();
                Some(Expr::new(ExprKind::Int(tok.value), tok.span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Some(Expr::new(ExprKind::Bool(true), tok.span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Some(Expr::new(ExprKind::Bool(false), tok.span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Some(e)
            }
            TokenKind::Ident => {
                let (name, span) = self.ident_text()?;
                match self.peek_kind() {
                    TokenKind::LParen => self.call(None, name, span),
                    TokenKind::PathSep => {
                        self.bump();
                        let (fname, fspan) = self.ident_text()?;
                        if !self.at(TokenKind::LParen) {
                            self.diags
                                .error("module path must be followed by a call", span.merge(fspan));
                            return None;
                        }
                        self.call(Some(name), fname, span.merge(fspan))
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        let end = self.expect(TokenKind::RBracket)?.span;
                        Some(Expr::new(
                            ExprKind::Index(name, Box::new(idx)),
                            span.merge(end),
                        ))
                    }
                    _ => Some(Expr::new(ExprKind::Var(name), span)),
                }
            }
            other => {
                self.diags.error(
                    format!("expected expression, found {}", other.describe()),
                    tok.span,
                );
                None
            }
        }
    }

    fn call(&mut self, module: Option<String>, name: String, start: Span) -> Option<Expr> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        while !self.at(TokenKind::RParen) && !self.at(TokenKind::Eof) {
            args.push(self.expr()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(TokenKind::RParen)?.span;
        Some(Expr::new(
            ExprKind::Call { module, name, args },
            start.merge(end),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        let mut d = Diagnostics::new();
        let m = parse("test", src, &mut d);
        assert!(!d.has_errors(), "unexpected errors:\n{d:?}");
        m
    }

    fn parse_err(src: &str) -> Diagnostics {
        let mut d = Diagnostics::new();
        parse("test", src, &mut d);
        assert!(d.has_errors(), "expected errors for {src:?}");
        d
    }

    #[test]
    fn parses_empty_module() {
        let m = parse_ok("");
        assert!(m.functions.is_empty());
    }

    #[test]
    fn parses_simple_function() {
        let m = parse_ok("fn add(a: int, b: int) -> int { return a + b; }");
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(TypeAst::Int));
    }

    #[test]
    fn parses_imports_and_globals() {
        let m = parse_ok("import util;\nconst N: int = 8;\nfn f() { return; }");
        assert_eq!(m.imports.len(), 1);
        assert_eq!(m.imports[0].module, "util");
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.globals[0].name, "N");
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse_ok("fn f() -> int { return 1 + 2 * 3; }");
        let body = &m.functions[0].body.stmts[0];
        let StmtKind::Return(Some(e)) = &body.kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected add at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn precedence_cmp_over_logic() {
        let m = parse_ok("fn f(a: int, b: int) -> bool { return a < b && b < 10; }");
        let StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn parses_else_if_chain() {
        let m = parse_ok(
            "fn f(x: int) -> int { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }",
        );
        let StmtKind::If {
            else_block: Some(eb),
            ..
        } = &m.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(matches!(eb.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_for_loop() {
        let m = parse_ok(
            "fn f() -> int { let s: int = 0; for (let i: int = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
        );
        let StmtKind::For {
            init, cond, step, ..
        } = &m.functions[0].body.stmts[1].kind
        else {
            panic!()
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());
    }

    #[test]
    fn parses_for_with_empty_parts() {
        let m = parse_ok("fn f() { for (;;) { break; } }");
        let StmtKind::For {
            init, cond, step, ..
        } = &m.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn parses_arrays() {
        let m = parse_ok("fn f() -> int { let a: [int; 4]; a[0] = 7; return a[0]; }");
        let f = &m.functions[0];
        assert!(matches!(
            f.body.stmts[0].kind,
            StmtKind::Let {
                ty: TypeAst::IntArray(4),
                init: None,
                ..
            }
        ));
        assert!(matches!(
            f.body.stmts[1].kind,
            StmtKind::Assign(LValue::Index(..), _)
        ));
    }

    #[test]
    fn parses_cross_module_call() {
        let m = parse_ok("import util;\nfn f() -> int { return util::g(1, 2); }");
        let StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call { module, name, args } = &e.kind else {
            panic!()
        };
        assert_eq!(module.as_deref(), Some("util"));
        assert_eq!(name, "g");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_unary_chain() {
        let m = parse_ok("fn f(x: int) -> int { return --x; }");
        let StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Unary(UnOp::Neg, inner) = &e.kind else {
            panic!()
        };
        assert!(matches!(inner.kind, ExprKind::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn error_recovery_keeps_later_functions() {
        let mut d = Diagnostics::new();
        let m = parse(
            "test",
            "fn broken( { }\nfn ok() -> int { return 1; }",
            &mut d,
        );
        assert!(d.has_errors());
        assert!(m.function("ok").is_some());
    }

    #[test]
    fn error_recovery_within_block() {
        let mut d = Diagnostics::new();
        let m = parse(
            "test",
            "fn f() -> int { let x: int = ; let y: int = 2; return y; }",
            &mut d,
        );
        assert!(d.has_errors());
        // The second let survived recovery.
        assert!(m.functions[0].body.stmts.iter().any(|s| matches!(
            &s.kind,
            StmtKind::Let { name, .. } if name == "y"
        )));
    }

    #[test]
    fn rejects_bad_assignment_target() {
        parse_err("fn f() { 1 + 2 = 3; }");
    }

    #[test]
    fn rejects_zero_length_array() {
        parse_err("fn f() { let a: [int; 0]; }");
    }

    #[test]
    fn warns_on_pure_expression_statement() {
        let mut d = Diagnostics::new();
        parse("test", "fn f(x: int) { x + 1; }", &mut d);
        assert!(!d.has_errors());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn parses_bare_return() {
        let m = parse_ok("fn f() { return; }");
        assert!(matches!(
            m.functions[0].body.stmts[0].kind,
            StmtKind::Return(None)
        ));
    }

    #[test]
    fn parses_nested_blocks() {
        let m = parse_ok("fn f() { { { return; } } }");
        assert!(matches!(
            m.functions[0].body.stmts[0].kind,
            StmtKind::Block(_)
        ));
    }
}
