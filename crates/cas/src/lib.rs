//! Content-addressed shared artifact store (`sfcc-cas`).
//!
//! The function cache ([`sfcc` fncache]) keeps one project's optimized
//! function bodies keyed on context fingerprints. This crate generalizes
//! that store so *distinct projects, builders, and (eventually) machines*
//! can share artifacts: every artifact is filed under a key derived from
//! the **full compiler identity**, not just the function's content:
//!
//! ```text
//! key = H(fn context fingerprint, pass-pipeline hash,
//!         compiler flag digest,   backend format version)
//! ```
//!
//! Omitting any component reintroduces the classic incremental-build lie —
//! a config change silently served stale code ("The Devil Is in the
//! Command Line") — so each component is independently droppable *only*
//! through the adversarial test hook ([`CasStore::set_key_drops`]), which
//! exists precisely so tests can prove every component is load-bearing.
//!
//! # Soundness invariants
//!
//! - **Hit ⇒ byte-identical.** A lookup returns a function only if the
//!   stored bytes pass checksum + armor validation and (in honest mode)
//!   the embedded provenance key matches the key looked up. Anything else
//!   is quarantined and treated as a miss — a corrupt or evicted entry can
//!   cost a recompile, never a wrong build.
//! - **Crash-safe.** All durable I/O goes through `sfcc-faultfs` and the
//!   directory backend publishes through the [`CommitDir`] manifest
//!   discipline: a crash at any operation leaves the store logically
//!   all-old or all-new, and `fsck` reclaims debris.
//! - **Auditable.** Every artifact embeds a full [`Provenance`] record
//!   (key, components, and their human-readable reprs) so [`fsck`] can
//!   re-derive the key and verify the filing, and so a consumer can detect
//!   that a served artifact was produced under a different identity (the
//!   depcheck stale-serve oracle builds on this).
//! - **Attributed.** Store I/O runs under the dedicated
//!   [`CAS_TASK_LABEL`] task scope, giving depcheck a channel to separate
//!   tracked store traffic from rogue ad-hoc I/O inside build tasks.
//!
//! # Concurrency
//!
//! Handles are `&self`-shareable (interior mutexes + atomic counters).
//! Cross-process safety comes entirely from the backend's publish
//! discipline: racing publishers can lose entries to each other (the loser
//! re-publishes or re-misses later — a lost update, never corruption), and
//! a reader holding a stale manifest view simply misses.

use sfcc_codec::{fnv64, DecodeError, Reader, Writer};
use sfcc_faultfs::{self as ffs, CommitDir, Durability, EntryError, Manifest, ManifestError};
use sfcc_ir::{Fingerprint, Function};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every serialized artifact.
pub const ARTIFACT_MAGIC: &[u8; 7] = b"SFCCAR\0";
/// Current artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;
/// The backend (object/IR) format version baked into every key. Bump when
/// the optimized-IR encoding changes meaning; tests override it via
/// [`KeyComponents`] to prove the component is load-bearing.
pub const DEFAULT_BACKEND_VERSION: u32 = 1;
/// Task label every store operation runs under ([`ffs::task_scope`]), so
/// depcheck can tell tracked store traffic from rogue task I/O.
pub const CAS_TASK_LABEL: &str = "cas";
/// The named key components, in derivation order. [`CasStore::set_key_drops`]
/// accepts exactly these names.
pub const KEY_COMPONENTS: [&str; 4] = ["fn", "pipeline", "flags", "backend"];

/// File name of the store's commit base inside the store directory.
pub const CAS_BASE: &str = ".sfcc-cas";
/// Logical name of the recency (LRU) sidecar entry in the manifest.
const LRU_LOGICAL: &str = "lru";

/// The session-constant half of every key this store derives: everything
/// about the compiler's identity except the per-function fingerprint.
#[derive(Debug, Clone)]
pub struct KeyComponents {
    /// Hash of the pass pipeline's slot names.
    pub pipeline: Fingerprint,
    /// Digest of the semantically relevant compiler flags (mode, opt
    /// level, verification) — see [`KeyComponents::flag_repr`].
    pub flags: u64,
    /// Backend format version ([`DEFAULT_BACKEND_VERSION`] normally).
    pub backend: u32,
    /// Human-readable rendering of the flag set, embedded in provenance
    /// records so `fsck` output and audits stay legible.
    pub flag_repr: String,
    /// Human-readable rendering of the pipeline (slot names), embedded in
    /// provenance records.
    pub pipeline_repr: String,
}

/// The provenance record embedded in every artifact: the full key, each
/// component it was derived from, and their readable reprs. [`fsck`]
/// re-derives the key from the components and checks both the embedded
/// digest and the manifest filing against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The full (honest, no components dropped) key digest.
    pub key: Fingerprint,
    /// The function's context fingerprint.
    pub fn_ctx: Fingerprint,
    /// The pipeline hash component.
    pub pipeline: Fingerprint,
    /// The compiler flag digest component.
    pub flags: u64,
    /// The backend format version component.
    pub backend: u32,
    /// Readable flag rendering (audit output).
    pub flag_repr: String,
    /// Readable pipeline rendering (audit output).
    pub pipeline_repr: String,
}

/// One stored artifact: provenance plus the optimized function in
/// canonical IR text (the printer/parser round-trip is exact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Who produced this and under what identity.
    pub provenance: Provenance,
    /// The function's name.
    pub name: String,
    /// The optimized body, canonical IR text.
    pub ir_text: String,
}

impl Artifact {
    /// Serializes the artifact behind magic/version/checksum armor.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        payload.u128(self.provenance.key.0);
        payload.u128(self.provenance.fn_ctx.0);
        payload.u128(self.provenance.pipeline.0);
        payload.u64(self.provenance.flags);
        payload.u32(self.provenance.backend);
        payload.str(&self.provenance.flag_repr);
        payload.str(&self.provenance.pipeline_repr);
        payload.str(&self.name);
        payload.str(&self.ir_text);
        let payload = payload.into_bytes();
        let mut out = Writer::new();
        out.raw(ARTIFACT_MAGIC);
        out.u32(ARTIFACT_VERSION);
        out.raw(&payload);
        out.u64(fnv64(&payload));
        out.into_bytes()
    }

    /// Deserializes an artifact; any malformed input fails (callers treat
    /// that as corruption and quarantine).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated, version-skewed, or
    /// bit-flipped input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < ARTIFACT_MAGIC.len() || &bytes[..ARTIFACT_MAGIC.len()] != ARTIFACT_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut r = Reader::new(&bytes[ARTIFACT_MAGIC.len()..]);
        let version = r.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let payload_start = bytes.len() - r.remaining();
        let art = Artifact {
            provenance: Provenance {
                key: Fingerprint(r.u128()?),
                fn_ctx: Fingerprint(r.u128()?),
                pipeline: Fingerprint(r.u128()?),
                flags: r.u64()?,
                backend: r.u32()?,
                flag_repr: r.str()?,
                pipeline_repr: r.str()?,
            },
            name: r.str()?,
            ir_text: r.str()?,
        };
        let payload_end = bytes.len() - r.remaining();
        let declared = r.u64()?;
        if !r.is_done() || fnv64(&bytes[payload_start..payload_end]) != declared {
            return Err(DecodeError::Corrupt);
        }
        Ok(art)
    }
}

/// The manifest's logical name for a key digest.
pub fn logical_name(key: Fingerprint) -> String {
    format!("a{:032x}", key.0)
}

/// Counters of one [`CasStore`] handle (per-handle, not per-directory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CasStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries this handle evicted under the size budget.
    pub evictions: u64,
    /// Artifacts this handle published.
    pub publishes: u64,
    /// Publish batches that failed with an I/O error (the store degrades
    /// to a miss, it never fails the build).
    pub publish_errors: u64,
    /// Artifact bytes read on hits.
    pub bytes_read: u64,
    /// Artifact bytes written by publishes.
    pub bytes_written: u64,
    /// Artifacts currently published (backend view).
    pub entries: u64,
    /// Total artifact bytes currently published (backend view).
    pub bytes: u64,
}

/// The stamps recorded for one served function, for the depcheck audit:
/// what provenance the artifact *claimed* vs. what an honest key
/// derivation demands right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedStamps {
    /// Folded digest of the served artifact's embedded provenance key.
    pub served: u64,
    /// Folded digest of the honest (no components dropped) key.
    pub honest: u64,
}

/// Storage backend of a [`CasStore`]: where published artifacts live and
/// how they become visible. The local [`DirBackend`] is the only
/// implementation today; a remote backend slots in behind the same trait.
///
/// Implementations must publish atomically (all-or-nothing visibility),
/// verify content on load (returning `None` — never wrong bytes — for
/// anything that fails validation), and route every durable operation
/// through `sfcc-faultfs` so crash/fault injection and task attribution
/// apply.
pub trait CasBackend: fmt::Debug + Send + Sync {
    /// A short human-readable identifier (e.g. the directory path).
    fn describe(&self) -> String;
    /// Currently published artifacts as `(logical name, byte length)`,
    /// internal sidecars excluded.
    fn entries(&self) -> Vec<(String, u64)>;
    /// Loads one published artifact's bytes, verified against the
    /// publish-time checksum; `None` on absence or any validation failure
    /// (corrupt entries are quarantined as a side effect). Marks the entry
    /// recently used.
    fn load(&self, logical: &str) -> Option<Vec<u8>>;
    /// Moves a published entry aside as corrupt (store-level validation
    /// failed after the byte-level checksum passed).
    fn quarantine(&self, logical: &str);
    /// Publishes a batch atomically and persists recency bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed publish leaves the previous
    /// generation fully intact.
    fn publish(&self, batch: &[(String, Vec<u8>)]) -> io::Result<()>;
    /// Evicts least-recently-used artifacts until the published total is
    /// within `budget` bytes. Returns how many were evicted.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from republishing the manifest.
    fn evict_to(&self, budget: u64) -> io::Result<u64>;
    /// Drops any cached view so the next operation observes commits made
    /// by other processes.
    fn refresh(&self);
}

/// Recency map carried in the manifest's `lru` sidecar: logical name →
/// the manifest generation at which it was last used.
fn lru_to_bytes(map: &HashMap<String, u64>) -> Vec<u8> {
    let mut items: Vec<(&String, &u64)> = map.iter().collect();
    items.sort();
    let mut w = Writer::new();
    w.usize(items.len());
    for (logical, tick) in items {
        w.str(logical);
        w.u64(*tick);
    }
    w.into_bytes()
}

fn lru_from_bytes(bytes: &[u8]) -> HashMap<String, u64> {
    // Best-effort: the manifest checksum already guards integrity, and a
    // lost recency map only degrades eviction order, never correctness.
    let mut r = Reader::new(bytes);
    let Ok(count) = r.usize() else {
        return HashMap::new();
    };
    let mut map = HashMap::new();
    for _ in 0..count {
        let (Ok(logical), Ok(tick)) = (r.str(), r.u64()) else {
            return HashMap::new();
        };
        map.insert(logical, tick);
    }
    map
}

/// The local directory backend: artifacts live beside a
/// [`CommitDir`]-managed manifest at `<dir>/.sfcc-cas.manifest`, each as
/// an immutable generation file. Visibility is a single manifest rename;
/// recency for LRU eviction rides in the same commit as an `lru` sidecar
/// entry, stamped with the manifest generation as a logical clock.
#[derive(Debug)]
pub struct DirBackend {
    cd: CommitDir,
    durability: Durability,
    /// Cached manifest view: `None` = not loaded yet.
    manifest: Mutex<Option<Option<Manifest>>>,
    /// Logical names used since the last publish (recency to persist).
    touched: Mutex<HashSet<String>>,
}

impl DirBackend {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path, durability: Durability) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(DirBackend {
            cd: CommitDir::new(&dir.join(CAS_BASE)),
            durability,
            manifest: Mutex::new(None),
            touched: Mutex::new(HashSet::new()),
        })
    }

    /// The current manifest, loading (and caching) it on first use. A
    /// corrupt manifest is quarantined and treated as absent; an
    /// unreadable one is treated as absent without caching the verdict.
    fn manifest(&self) -> Option<Manifest> {
        let mut cached = self.manifest.lock().unwrap();
        if let Some(view) = cached.as_ref() {
            return view.clone();
        }
        let view = match self.cd.read_manifest() {
            Ok(m) => m,
            Err(ManifestError::Corrupt(_)) => {
                let _ = ffs::quarantine(&self.cd.manifest_path());
                None
            }
            Err(ManifestError::Io(_)) => return None,
        };
        *cached = Some(view.clone());
        view
    }

    fn drop_from_cache(&self, logical: &str) {
        let mut cached = self.manifest.lock().unwrap();
        if let Some(Some(m)) = cached.as_mut() {
            m.entries.retain(|e| e.logical != logical);
        }
    }

    fn lru_map(&self, manifest: &Manifest) -> HashMap<String, u64> {
        manifest
            .entry(LRU_LOGICAL)
            .and_then(|e| self.cd.load_entry(e).ok())
            .map(|bytes| lru_from_bytes(&bytes))
            .unwrap_or_default()
    }
}

impl CasBackend for DirBackend {
    fn describe(&self) -> String {
        self.cd.base().display().to_string()
    }

    fn entries(&self) -> Vec<(String, u64)> {
        self.manifest()
            .map(|m| {
                m.entries
                    .iter()
                    .filter(|e| e.logical != LRU_LOGICAL)
                    .map(|e| (e.logical.clone(), e.len))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn load(&self, logical: &str) -> Option<Vec<u8>> {
        let manifest = self.manifest()?;
        let entry = manifest.entry(logical)?;
        match self.cd.load_entry(entry) {
            Ok(bytes) => {
                self.touched.lock().unwrap().insert(logical.to_string());
                Some(bytes)
            }
            Err(EntryError::Corrupt(_)) => {
                // Bit-flipped or truncated on disk: move it aside so the
                // next fsck sees the evidence, and miss.
                let _ = ffs::quarantine(&self.cd.entry_path(entry));
                self.drop_from_cache(logical);
                None
            }
            Err(EntryError::Io(_)) => None,
        }
    }

    fn quarantine(&self, logical: &str) {
        if let Some(manifest) = self.manifest() {
            if let Some(entry) = manifest.entry(logical) {
                let _ = ffs::quarantine(&self.cd.entry_path(entry));
            }
        }
        self.drop_from_cache(logical);
    }

    fn publish(&self, batch: &[(String, Vec<u8>)]) -> io::Result<()> {
        let old = self.manifest();
        let tick = old.as_ref().map(|m| m.generation).unwrap_or(0) + 1;
        let mut lru = old.as_ref().map(|m| self.lru_map(m)).unwrap_or_default();
        for logical in self.touched.lock().unwrap().drain() {
            lru.insert(logical, tick);
        }
        for (logical, _) in batch {
            lru.insert(logical.clone(), tick);
        }
        // Prune recency for logicals no longer (or not about to be)
        // published.
        let live: HashSet<&str> = old
            .iter()
            .flat_map(|m| m.entries.iter())
            .map(|e| e.logical.as_str())
            .chain(batch.iter().map(|(l, _)| l.as_str()))
            .collect();
        lru.retain(|logical, _| live.contains(logical.as_str()));
        let lru_bytes = lru_to_bytes(&lru);
        let mut files: Vec<(&str, &[u8])> = batch
            .iter()
            .map(|(logical, bytes)| (logical.as_str(), bytes.as_slice()))
            .collect();
        files.push((LRU_LOGICAL, &lru_bytes));
        // `commit_shared`: the store directory is shared by racing
        // processes, so replaced generation files must stay on disk — a
        // concurrent committer may carry them forward into the winning
        // manifest. fsck sweeps the debris.
        let manifest = self.cd.commit_shared(&files, self.durability)?;
        *self.manifest.lock().unwrap() = Some(Some(manifest));
        Ok(())
    }

    fn evict_to(&self, budget: u64) -> io::Result<u64> {
        let Some(manifest) = self.manifest() else {
            return Ok(0);
        };
        let mut total: u64 = manifest
            .entries
            .iter()
            .filter(|e| e.logical != LRU_LOGICAL)
            .map(|e| e.len)
            .sum();
        if total <= budget {
            return Ok(0);
        }
        let mut lru = self.lru_map(&manifest);
        // Oldest tick first; ties broken by name for determinism. Entries
        // with no recorded recency count as oldest.
        let mut candidates: Vec<_> = manifest
            .entries
            .iter()
            .filter(|e| e.logical != LRU_LOGICAL)
            .collect();
        candidates.sort_by_key(|e| (lru.get(&e.logical).copied().unwrap_or(0), e.logical.clone()));
        let mut evicted = Vec::new();
        for entry in candidates {
            if total <= budget {
                break;
            }
            total -= entry.len;
            evicted.push(entry.clone());
        }
        if evicted.is_empty() {
            return Ok(0);
        }
        for e in &evicted {
            lru.remove(&e.logical);
        }
        let lru_bytes = lru_to_bytes(&lru);
        let mut survivors: Vec<_> = manifest
            .entries
            .iter()
            .filter(|e| e.logical != LRU_LOGICAL && !evicted.iter().any(|v| v.logical == e.logical))
            .cloned()
            .collect();
        // Rewrite the recency sidecar as part of the same generation bump.
        let lru_file = format!(
            "{CAS_BASE}.{LRU_LOGICAL}.g{}-{}-{}",
            manifest.generation + 1,
            std::process::id(),
            ffs::unique_seq()
        );
        let lru_path = self.cd.base().with_file_name(&lru_file);
        ffs::write(&lru_path, &lru_bytes)?;
        survivors.push(sfcc_faultfs::ManifestEntry {
            logical: LRU_LOGICAL.to_string(),
            file: lru_file,
            len: lru_bytes.len() as u64,
            checksum: fnv64(&lru_bytes),
        });
        let old_lru = manifest.entry(LRU_LOGICAL).cloned();
        let new = self
            .cd
            .publish(manifest.generation + 1, survivors, self.durability)?;
        // The evicted generation files (and the replaced lru sidecar) are
        // garbage now that no manifest references them. A racing committer
        // in another process may still carry an evicted entry forward; its
        // manifest then points at a missing file, which degrades to a miss
        // (and an fsck manifest repair) — never to wrong bytes, since every
        // serve is checksum- and provenance-verified.
        for e in &evicted {
            let _ = ffs::remove_file(&self.cd.entry_path(e));
        }
        if let Some(old) = old_lru {
            let _ = ffs::remove_file(&self.cd.entry_path(&old));
        }
        *self.manifest.lock().unwrap() = Some(Some(new));
        Ok(evicted.len() as u64)
    }

    fn refresh(&self) {
        *self.manifest.lock().unwrap() = None;
    }
}

/// A handle on a content-addressed artifact store. Shareable by `&self`
/// across threads; cross-process coordination is the backend's publish
/// discipline.
#[derive(Debug)]
pub struct CasStore {
    backend: Box<dyn CasBackend>,
    components: KeyComponents,
    budget: Option<u64>,
    /// Adversarial test hook: key components (by [`KEY_COMPONENTS`] name)
    /// to omit from derivation, seeding cross-identity collisions.
    drops: Mutex<BTreeSet<String>>,
    /// `module::function` → stamps of the artifact served this session.
    served: Mutex<HashMap<String, ServedStamps>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    publishes: AtomicU64,
    publish_errors: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl CasStore {
    /// Opens a store over the local directory backend.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_dir(
        dir: &Path,
        components: KeyComponents,
        durability: Durability,
    ) -> io::Result<Self> {
        let backend = DirBackend::open(dir, durability)?;
        Ok(Self::with_backend(Box::new(backend), components))
    }

    /// Wraps an arbitrary backend.
    pub fn with_backend(backend: Box<dyn CasBackend>, components: KeyComponents) -> Self {
        CasStore {
            backend,
            components,
            budget: None,
            drops: Mutex::new(BTreeSet::new()),
            served: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            publish_errors: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// Sets the size budget: publishes evict least-recently-used
    /// artifacts until the store fits. `None` (the default) never evicts.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// The backend's identifier (for reports and debugging).
    pub fn describe(&self) -> String {
        self.backend.describe()
    }

    /// The session-constant key components this handle derives with.
    pub fn components(&self) -> &KeyComponents {
        &self.components
    }

    /// Adversarial test hook: omit the named [`KEY_COMPONENTS`] from key
    /// derivation (both lookup and publish), seeding the
    /// cross-configuration collisions the depcheck soundness tests prove
    /// are caught. Unknown names are ignored. Honest builds never call
    /// this.
    pub fn set_key_drops(&self, components: &[String]) {
        let mut drops = self.drops.lock().unwrap();
        drops.clear();
        drops.extend(components.iter().cloned());
    }

    /// Starts a fresh build session: clears per-session serve records and
    /// drops cached backend views so other processes' commits become
    /// visible.
    pub fn begin_session(&self) {
        self.served.lock().unwrap().clear();
        self.backend.refresh();
    }

    fn derive(&self, fn_ctx: Fingerprint, drops: &BTreeSet<String>) -> Fingerprint {
        let mut key = Fingerprint::of_str("sfcc-cas/v1");
        if !drops.contains("fn") {
            key = key.combine(fn_ctx);
        }
        if !drops.contains("pipeline") {
            key = key.combine(self.components.pipeline);
        }
        if !drops.contains("flags") {
            key = key.combine(Fingerprint(self.components.flags as u128));
        }
        if !drops.contains("backend") {
            key = key.combine(Fingerprint(self.components.backend as u128));
        }
        key
    }

    /// The honest (no components dropped) key for a context fingerprint.
    pub fn honest_key(&self, fn_ctx: Fingerprint) -> Fingerprint {
        self.derive(fn_ctx, &BTreeSet::new())
    }

    /// The folded honest-key stamp depcheck audits serve records against.
    pub fn honest_stamp(&self, fn_ctx: Fingerprint) -> u64 {
        self.honest_key(fn_ctx).short()
    }

    /// Looks up the optimized body for `module::function` with context
    /// fingerprint `fn_ctx`. A hit records [`ServedStamps`] for the
    /// depcheck audit. Every validation failure (checksum, armor,
    /// provenance, parse) quarantines the entry and misses.
    pub fn lookup(&self, module: &str, function: &str, fn_ctx: Fingerprint) -> Option<Function> {
        let drops = self.drops.lock().unwrap().clone();
        let key = self.derive(fn_ctx, &drops);
        let honest = self.derive(fn_ctx, &BTreeSet::new());
        let logical = logical_name(key);
        let _scope = ffs::task_scope(CAS_TASK_LABEL);
        let Some(bytes) = self.backend.load(&logical) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let Ok(artifact) = Artifact::from_bytes(&bytes) else {
            self.backend.quarantine(&logical);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // Defense in depth: with honest derivation, an artifact filed
        // under a key its provenance does not match is debris, never a
        // hit. (With adversarial drops active the mismatch is the seeded
        // lie itself; it is served so depcheck can prove it catches it.)
        if drops.is_empty() && artifact.provenance.key != key {
            self.backend.quarantine(&logical);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let Ok(mut func) = sfcc_ir::parse_function(&artifact.ir_text) else {
            self.backend.quarantine(&logical);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // Serve the body under the *requested* name: the artifact's
        // recorded name is provenance, not identity — identical bodies
        // legitimately hit across differently-named functions.
        func.name = function.to_string();
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.served.lock().unwrap().insert(
            format!("{module}::{function}"),
            ServedStamps {
                served: artifact.provenance.key.short(),
                honest: honest.short(),
            },
        );
        Some(func)
    }

    /// The serve record for `module::function` from this session, if the
    /// store answered its lookup.
    pub fn served(&self, module: &str, function: &str) -> Option<ServedStamps> {
        self.served
            .lock()
            .unwrap()
            .get(&format!("{module}::{function}"))
            .copied()
    }

    /// Publishes freshly optimized functions. Keys already published (or
    /// duplicated within the batch) are skipped — the store is
    /// content-addressed, so racing publishers of one key write identical
    /// bytes and the first visible one wins. I/O errors degrade to a
    /// counted no-op: a cache must never fail the build.
    pub fn publish(&self, inserts: &[(Fingerprint, Function)]) {
        if inserts.is_empty() {
            return;
        }
        let drops = self.drops.lock().unwrap().clone();
        let _scope = ffs::task_scope(CAS_TASK_LABEL);
        let existing: HashSet<String> =
            self.backend.entries().into_iter().map(|(l, _)| l).collect();
        let mut batch: Vec<(String, Vec<u8>)> = Vec::new();
        let mut seen = HashSet::new();
        for (fn_ctx, func) in inserts {
            let key = self.derive(*fn_ctx, &drops);
            let logical = logical_name(key);
            if existing.contains(&logical) || !seen.insert(logical.clone()) {
                continue;
            }
            let artifact = Artifact {
                provenance: Provenance {
                    // Provenance always records the honest identity, even
                    // when an adversarial drop mis-files the artifact —
                    // that is what makes the lie auditable.
                    key: self.derive(*fn_ctx, &BTreeSet::new()),
                    fn_ctx: *fn_ctx,
                    pipeline: self.components.pipeline,
                    flags: self.components.flags,
                    backend: self.components.backend,
                    flag_repr: self.components.flag_repr.clone(),
                    pipeline_repr: self.components.pipeline_repr.clone(),
                },
                name: func.name.clone(),
                ir_text: sfcc_ir::function_to_string(func),
            };
            batch.push((logical, artifact.to_bytes()));
        }
        if batch.is_empty() {
            return;
        }
        let bytes: u64 = batch.iter().map(|(_, b)| b.len() as u64).sum();
        match self.backend.publish(&batch) {
            Ok(()) => {
                self.publishes
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(_) => {
                self.publish_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if let Some(budget) = self.budget {
            if let Ok(evicted) = self.backend.evict_to(budget) {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Current counters plus the backend's published entry/byte totals.
    pub fn stats(&self) -> CasStats {
        let entries = self.backend.entries();
        CasStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            publish_errors: self.publish_errors.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            entries: entries.len() as u64,
            bytes: entries.iter().map(|(_, len)| len).sum(),
        }
    }
}

/// The outcome of one store audit ([`fsck`]).
#[derive(Debug, Clone, Default)]
pub struct CasFsckReport {
    /// Manifest entries examined.
    pub checked: usize,
    /// Files moved aside as corrupt (`*.corrupt`), by path.
    pub quarantined: Vec<String>,
    /// Orphaned temp/generation files deleted.
    pub removed: usize,
    /// Whether a repaired manifest was published (entries dropped or the
    /// manifest itself replaced).
    pub repaired_manifest: bool,
}

impl CasFsckReport {
    /// Whether the store needed no repair at all.
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.removed == 0 && !self.repaired_manifest
    }
}

/// Validates an artifact's provenance: the armor decodes, the embedded
/// key digest equals a re-derivation from the embedded components, the
/// manifest filed it under that key, and the body parses.
fn artifact_is_sound(logical: &str, bytes: &[u8]) -> bool {
    let Ok(artifact) = Artifact::from_bytes(bytes) else {
        return false;
    };
    let p = &artifact.provenance;
    let rederived = Fingerprint::of_str("sfcc-cas/v1")
        .combine(p.fn_ctx)
        .combine(p.pipeline)
        .combine(Fingerprint(p.flags as u128))
        .combine(Fingerprint(p.backend as u128));
    rederived == p.key
        && logical_name(p.key) == logical
        && sfcc_ir::parse_function(&artifact.ir_text).is_ok()
}

/// Audits and repairs a store directory: quarantines a corrupt manifest,
/// validates every published artifact's checksum *and* provenance record
/// (quarantining mismatches — including artifacts filed under a key their
/// provenance does not derive), republishes the surviving entries, and
/// deletes orphaned temp/generation debris. Never deletes evidence:
/// everything suspicious is moved aside, not removed.
///
/// # Errors
///
/// Propagates I/O failures from the repair itself (reads that merely fail
/// validation are handled, not propagated).
pub fn fsck(dir: &Path) -> io::Result<CasFsckReport> {
    let base = dir.join(CAS_BASE);
    let cd = CommitDir::new(&base);
    let mut report = CasFsckReport::default();
    let manifest = match cd.read_manifest() {
        Ok(m) => m,
        Err(ManifestError::Corrupt(_)) => {
            if let Some(q) = ffs::quarantine(&cd.manifest_path()) {
                report.quarantined.push(q.display().to_string());
            }
            report.repaired_manifest = true;
            None
        }
        Err(ManifestError::Io(e)) => return Err(e),
    };
    if let Some(manifest) = &manifest {
        let mut survivors = Vec::new();
        for entry in &manifest.entries {
            report.checked += 1;
            let sound = match cd.load_entry(entry) {
                Ok(bytes) => {
                    entry.logical == LRU_LOGICAL || artifact_is_sound(&entry.logical, &bytes)
                }
                Err(_) => false,
            };
            if sound {
                survivors.push(entry.clone());
            } else if let Some(q) = ffs::quarantine(&cd.entry_path(entry)) {
                report.quarantined.push(q.display().to_string());
            }
        }
        if survivors.len() != manifest.entries.len() {
            cd.publish(manifest.generation + 1, survivors, Durability::Fast)?;
            report.repaired_manifest = true;
        }
    }
    let current = cd.read_manifest().ok().flatten();
    for orphan in cd.orphans(current.as_ref())? {
        ffs::remove_file(&orphan)?;
        report.removed += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfcc-cas-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn components() -> KeyComponents {
        KeyComponents {
            pipeline: Fingerprint(0xabcd),
            flags: 0x1234,
            backend: DEFAULT_BACKEND_VERSION,
            flag_repr: "mode=test;opt=O2".to_string(),
            pipeline_repr: "ssa,fold".to_string(),
        }
    }

    fn sample_fn(name: &str, k: i64) -> Function {
        sfcc_ir::parse_function(&format!(
            "fn @{name}(i64) -> i64 {{\nbb0:\n  v0 = mul i64 p0, {k}\n  ret v0\n}}"
        ))
        .unwrap()
    }

    fn store(dir: &Path) -> CasStore {
        CasStore::open_dir(dir, components(), Durability::Fast).unwrap()
    }

    #[test]
    fn artifact_roundtrips_and_rejects_corruption() {
        let art = Artifact {
            provenance: Provenance {
                key: Fingerprint(7),
                fn_ctx: Fingerprint(8),
                pipeline: Fingerprint(9),
                flags: 10,
                backend: 1,
                flag_repr: "mode=x".to_string(),
                pipeline_repr: "p".to_string(),
            },
            name: "f".to_string(),
            ir_text: "fn @f() -> i64 {\nbb0:\n  v0 = const i64 1\n  ret v0\n}".to_string(),
        };
        let bytes = art.to_bytes();
        assert_eq!(Artifact::from_bytes(&bytes).unwrap(), art);
        for cut in 0..bytes.len() {
            assert!(Artifact::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            assert!(
                Artifact::from_bytes(&flipped).is_err(),
                "single bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn publish_then_lookup_hits_byte_identically() {
        let dir = tmpdir("roundtrip");
        let s = store(&dir);
        let f = sample_fn("helper", 3);
        let ctx = Fingerprint(42);
        s.publish(&[(ctx, f.clone())]);
        let got = s.lookup("m", "helper", ctx).expect("hit");
        assert_eq!(
            sfcc_ir::function_to_string(&got),
            sfcc_ir::function_to_string(&f)
        );
        let stats = s.stats();
        assert_eq!((stats.hits, stats.misses, stats.publishes), (1, 0, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        // A second handle on the same directory sees the entry (shared
        // across "processes").
        let other = store(&dir);
        assert!(other.lookup("m", "helper", ctx).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_key_component_forces_a_miss() {
        let dir = tmpdir("components");
        let s = store(&dir);
        let ctx = Fingerprint(42);
        s.publish(&[(ctx, sample_fn("f", 3))]);
        assert!(s.lookup("m", "f", ctx).is_some());

        // fn component: a different context fingerprint misses.
        assert!(s.lookup("m", "f", Fingerprint(43)).is_none());

        // pipeline / flags / backend: change one component, keep the rest.
        let variants = [
            KeyComponents {
                pipeline: Fingerprint(0xdead),
                ..components()
            },
            KeyComponents {
                flags: 0x9999,
                ..components()
            },
            KeyComponents {
                backend: DEFAULT_BACKEND_VERSION + 1,
                ..components()
            },
        ];
        for (i, comps) in variants.into_iter().enumerate() {
            let other = CasStore::open_dir(&dir, comps, Durability::Fast).unwrap();
            assert!(
                other.lookup("m", "f", ctx).is_none(),
                "variant {i} must miss"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_key_component_serves_cross_identity_and_is_auditable() {
        let dir = tmpdir("drops");
        let publisher = store(&dir);
        publisher.set_key_drops(&["flags".to_string()]);
        let ctx = Fingerprint(42);
        publisher.publish(&[(ctx, sample_fn("f", 3))]);

        let mut other_comps = components();
        other_comps.flags = 0x9999;
        let consumer = CasStore::open_dir(&dir, other_comps, Durability::Fast).unwrap();
        consumer.set_key_drops(&["flags".to_string()]);
        assert!(
            consumer.lookup("m", "f", ctx).is_some(),
            "dropped component collides across identities"
        );
        let stamps = consumer.served("m", "f").unwrap();
        assert_ne!(
            stamps.served, stamps.honest,
            "the lie is visible in the serve record"
        );
        // An honest consumer never hits the mis-filed entry.
        let honest = store(&dir);
        assert!(honest.lookup("m", "f", ctx).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflipped_entry_is_quarantined_and_missed() {
        let dir = tmpdir("bitflip");
        let s = store(&dir);
        let ctx = Fingerprint(42);
        s.publish(&[(ctx, sample_fn("f", 3))]);
        // Flip one bit in the artifact's generation file.
        let cd = CommitDir::new(&dir.join(CAS_BASE));
        let manifest = cd.read_manifest().unwrap().unwrap();
        let entry = manifest.entry(&logical_name(s.honest_key(ctx))).unwrap();
        let path = cd.entry_path(entry);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        let fresh = store(&dir);
        assert!(
            fresh.lookup("m", "f", ctx).is_none(),
            "corrupt entry missed"
        );
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .any(|e| ffs::is_quarantine_name(&e.file_name().to_string_lossy())),
            "corrupt entry quarantined"
        );
        let report = fsck(&dir).unwrap();
        assert!(report.repaired_manifest || report.checked > 0);
        assert!(fsck(&dir).unwrap().clean(), "second fsck is clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_respects_budget_and_never_serves_wrong_bytes() {
        let dir = tmpdir("evict");
        let mut s = store(&dir);
        // Budget fits roughly two artifacts.
        let one = Artifact {
            provenance: Provenance {
                key: Fingerprint(0),
                fn_ctx: Fingerprint(0),
                pipeline: components().pipeline,
                flags: components().flags,
                backend: components().backend,
                flag_repr: components().flag_repr,
                pipeline_repr: components().pipeline_repr,
            },
            name: "f0".to_string(),
            ir_text: sfcc_ir::function_to_string(&sample_fn("f0", 1)),
        }
        .to_bytes()
        .len() as u64;
        s.set_budget(Some(one * 2 + one / 2));
        for i in 0..6i64 {
            s.publish(&[(
                Fingerprint(100 + i as u128),
                sample_fn(&format!("f{i}"), i + 1),
            )]);
        }
        let stats = s.stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert!(stats.bytes <= one * 2 + one / 2, "{stats:?}");
        // Every surviving entry still serves exactly its own bytes.
        for i in 0..6i64 {
            if let Some(got) = s.lookup("m", &format!("f{i}"), Fingerprint(100 + i as u128)) {
                assert_eq!(
                    sfcc_ir::function_to_string(&got),
                    sfcc_ir::function_to_string(&sample_fn(&format!("f{i}"), i + 1)),
                    "evicting must never remap keys"
                );
            }
        }
        // Sound: nothing quarantined, manifest intact. Shared commits never
        // GC replaced generations, so the first pass may sweep debris.
        let report = fsck(&dir).unwrap();
        assert!(
            report.quarantined.is_empty() && !report.repaired_manifest,
            "{report:?}"
        );
        assert!(fsck(&dir).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_spares_recently_used_entries() {
        let dir = tmpdir("lru");
        let mut s = store(&dir);
        let f = sample_fn("f", 1);
        let art_len = {
            s.publish(&[(Fingerprint(1), f.clone())]);
            s.stats().bytes
        };
        s.set_budget(Some(art_len * 2 + art_len / 2));
        s.publish(&[(Fingerprint(2), f.clone())]);
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(s.lookup("m", "f", Fingerprint(1)).is_some());
        s.publish(&[(Fingerprint(3), f.clone())]);
        assert!(
            s.lookup("m", "f", Fingerprint(1)).is_some(),
            "recently used survives"
        );
        assert!(
            s.lookup("m", "f", Fingerprint(2)).is_none(),
            "LRU victim evicted"
        );
        assert!(
            s.lookup("m", "f", Fingerprint(3)).is_some(),
            "fresh entry survives"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_every_op_during_publish_leaves_store_fsck_clean() {
        let dir = tmpdir("crash");
        {
            let s = store(&dir);
            s.publish(&[(Fingerprint(1), sample_fn("f", 1))]);
        }
        // Count the ops of a second publish, then crash at each.
        let ops = {
            let rec = ffs::record();
            let s = store(&dir);
            s.publish(&[(Fingerprint(2), sample_fn("g", 2))]);
            rec.take().len()
        };
        assert!(ops >= 3, "publish must be multi-op ({ops})");
        for k in 1..=ops {
            let scratch = tmpdir(&format!("crash-{k}"));
            let warm = store(&scratch);
            warm.publish(&[(Fingerprint(1), sample_fn("f", 1))]);
            let guard = ffs::install(ffs::FaultPlan::parse(&format!("crash-at:{k}")).unwrap());
            let s = store(&scratch);
            s.publish(&[(Fingerprint(2), sample_fn("g", 2))]);
            drop(guard);
            let report = fsck(&scratch).unwrap();
            // fsck may reclaim debris; a second pass must find nothing.
            assert!(
                fsck(&scratch).unwrap().clean(),
                "crash at op {k}: {report:?}"
            );
            // The pre-crash entry still serves correct bytes.
            let s = store(&scratch);
            if let Some(got) = s.lookup("m", "f", Fingerprint(1)) {
                assert_eq!(
                    sfcc_ir::function_to_string(&got),
                    sfcc_ir::function_to_string(&sample_fn("f", 1))
                );
            }
            std::fs::remove_dir_all(&scratch).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_errors_degrade_gracefully() {
        // Find which op index the first durable write lands on, so the
        // injected ENOSPC hits the write (reads degrade differently).
        let first_write = {
            let probe = tmpdir("enospc-probe");
            let rec = ffs::record();
            store(&probe).publish(&[(Fingerprint(1), sample_fn("f", 1))]);
            let ops = rec.take();
            std::fs::remove_dir_all(&probe).unwrap();
            1 + ops
                .iter()
                .position(|op| op.kind == ffs::OpKind::Write)
                .expect("publish writes")
        };
        let dir = tmpdir("enospc");
        let s = store(&dir);
        let guard = ffs::install(ffs::FaultPlan::parse(&format!("enospc:{first_write}")).unwrap());
        s.publish(&[(Fingerprint(1), sample_fn("f", 1))]);
        drop(guard);
        let stats = s.stats();
        assert_eq!(stats.publish_errors, 1, "{stats:?}");
        assert_eq!(stats.publishes, 0);
        // The store still works afterwards.
        s.begin_session();
        s.publish(&[(Fingerprint(1), sample_fn("f", 1))]);
        assert!(s.lookup("m", "f", Fingerprint(1)).is_some());
        assert!(fsck(&dir).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_quarantines_misfiled_artifacts() {
        let dir = tmpdir("misfiled");
        let s = store(&dir);
        s.set_key_drops(&["flags".to_string()]);
        s.publish(&[(Fingerprint(1), sample_fn("f", 1))]);
        // The artifact is filed under a degraded key: its embedded
        // provenance cannot re-derive the logical name.
        let report = fsck(&dir).unwrap();
        assert_eq!(report.quarantined.len(), 1, "{report:?}");
        assert!(report.repaired_manifest);
        assert!(fsck(&dir).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_ops_are_attributed_to_the_cas_scope() {
        let dir = tmpdir("attr");
        let rec = ffs::record();
        let s = store(&dir);
        s.publish(&[(Fingerprint(1), sample_fn("f", 1))]);
        s.lookup("m", "f", Fingerprint(1));
        let ops = rec.take();
        assert!(!ops.is_empty());
        for op in &ops {
            assert_eq!(
                op.task.as_deref(),
                Some(CAS_TASK_LABEL),
                "store op {op:?} must run under the cas scope"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
