//! A scoped work-stealing thread pool.
//!
//! The optimize phase is parallel at *function* granularity, and builds are
//! parallel at *module* granularity. Running both on their own threads
//! multiplies worker counts (`jobs × functions` oversubscription); running
//! only one wastes the other's parallelism (a project with one large module
//! got no speedup from `--jobs`). This crate provides the single pool both
//! levels share: module tasks and the function tasks they fan out into are
//! scheduled on the *same* `jobs`-sized worker set.
//!
//! # Model
//!
//! [`scope`] spawns `jobs − 1` workers inside a [`std::thread::scope`] and
//! runs the caller's closure on the calling thread, which participates in
//! task execution ("helping") whenever it waits. Tasks are closures over the
//! enclosing environment (`'env`), so borrowed data — a compiler session, a
//! module snapshot — flows into tasks without `'static` gymnastics.
//!
//! Scheduling is work-stealing: each worker owns a deque (its own spawns go
//! there; it pops from the front, so locally spawned work runs in priority
//! order), non-worker spawns go to a shared FIFO injector, and an idle
//! worker steals from the back of a victim's deque. A task that must wait
//! for other tasks calls [`PoolScope::help_until`], which executes queued
//! tasks instead of blocking — nested fan-out (a module task waiting on its
//! function tasks) therefore cannot deadlock: the waiting thread works.
//!
//! # Determinism
//!
//! The pool makes no ordering promises; callers get determinism by making
//! tasks independent (each task writes only its own slot) and merging
//! results in a fixed order. See `sfcc-passes`' parallel pipeline runner.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

type Task<'env> = Box<dyn FnOnce(&PoolScope<'env>) + Send + 'env>;

thread_local! {
    /// `(scope identity, worker index)` of the pool worker running on this
    /// thread, if any. The identity guards against a worker of one scope
    /// spawning into an unrelated scope's local deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Cumulative counters of one pool scope (observability; see
/// [`PoolScope::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks spawned into the scope.
    pub spawned: u64,
    /// Tasks an idle worker stole from another worker's deque.
    pub stolen: u64,
}

/// A live pool, valid for the duration of one [`scope`] call.
///
/// Shared by reference with every task; tasks use it to spawn subtasks into
/// the same worker set and to [`help_until`](PoolScope::help_until) their
/// subtasks complete.
pub struct PoolScope<'env> {
    injector: Mutex<VecDeque<Task<'env>>>,
    locals: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks spawned but not yet finished (queued or running).
    pending: AtomicUsize,
    /// Set when the scope is draining; workers exit once idle.
    shutdown: AtomicBool,
    /// Set when any task panicked; waiters re-raise promptly.
    panicked: AtomicBool,
    idle: Mutex<()>,
    wakeup: Condvar,
    jobs: usize,
    spawned: AtomicU64,
    stolen: AtomicU64,
}

impl<'env> PoolScope<'env> {
    fn new(jobs: usize) -> Self {
        let workers = jobs.saturating_sub(1);
        PoolScope {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            idle: Mutex::new(()),
            wakeup: Condvar::new(),
            jobs: jobs.max(1),
            spawned: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        }
    }

    /// The scope identity used to validate the thread-local worker index.
    fn identity(&self) -> usize {
        self as *const PoolScope<'env> as usize
    }

    /// The worker count this scope was sized for (`--jobs`).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether tasks can actually run concurrently (more than one worker).
    pub fn is_parallel(&self) -> bool {
        !self.locals.is_empty()
    }

    /// Scheduling counters accumulated so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
        }
    }

    /// Submits a task. From a worker thread the task goes to that worker's
    /// own deque (depth-first, cache-warm); from any other thread it goes to
    /// the shared FIFO injector, so spawn order is service order there —
    /// submit the largest task first to minimize makespan.
    ///
    /// The spawner's trace context travels with the task: whichever worker
    /// eventually runs (or steals) it re-enters that context first, so spans
    /// recorded inside the task nest under the spawn site's span rather
    /// than under whatever the worker happened to be doing. The spawner's
    /// faultfs task context travels the same way, so resource accesses made
    /// on a worker are attributed to the query task that spawned the work
    /// (the depcheck attribution model).
    pub fn spawn(&self, task: impl FnOnce(&PoolScope<'env>) + Send + 'env) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        self.pending.fetch_add(1, Ordering::SeqCst);
        let ctx = sfcc_trace::current_ctx();
        let task_ctx = sfcc_faultfs::current_task();
        let task: Task<'env> = Box::new(move |scope: &PoolScope<'env>| {
            let _trace = ctx.enter();
            let _task_ctx = task_ctx.enter();
            task(scope);
        });
        match WORKER.get() {
            Some((id, idx)) if id == self.identity() => {
                self.locals[idx].lock().unwrap().push_back(task);
            }
            _ => self.injector.lock().unwrap().push_back(task),
        }
        let _guard = self.idle.lock().unwrap();
        self.wakeup.notify_one();
    }

    /// Runs queued tasks on the calling thread until `done()` holds. The
    /// cooperative join of this pool: a thread that needs results of tasks
    /// it spawned makes progress on *some* queued task instead of blocking,
    /// so nested fan-out cannot deadlock.
    ///
    /// # Panics
    ///
    /// Re-raises (as a fresh panic) when any pool task panicked.
    pub fn help_until(&self, mut done: impl FnMut() -> bool) {
        let me = match WORKER.get() {
            Some((id, idx)) if id == self.identity() => Some(idx),
            _ => None,
        };
        loop {
            if done() {
                return;
            }
            assert!(
                !self.panicked.load(Ordering::SeqCst),
                "sfcc-pool: a pool task panicked"
            );
            if let Some(task) = self.find_task(me) {
                self.run_task(task);
                continue;
            }
            // Nothing runnable right now: park until a spawn or completion,
            // with a timeout as a lost-wakeup safety net.
            let guard = self.idle.lock().unwrap();
            if done() || self.has_queued() || self.panicked.load(Ordering::SeqCst) {
                continue;
            }
            let _ = self
                .wakeup
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
    }

    /// Pops the next task: own deque front, then injector front, then steal
    /// from the back of another worker's deque.
    fn find_task(&self, me: Option<usize>) -> Option<Task<'env>> {
        if let Some(idx) = me {
            if let Some(task) = self.locals[idx].lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            return Some(task);
        }
        let n = self.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(task) = self.locals[victim].lock().unwrap().pop_back() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn has_queued(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.locals.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    /// Executes one task, decrementing `pending` and waking waiters even if
    /// the task panics (so joins observe the failure instead of hanging).
    fn run_task(&self, task: Task<'env>) {
        struct Done<'a, 'env>(&'a PoolScope<'env>);
        impl Drop for Done<'_, '_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.panicked.store(true, Ordering::SeqCst);
                }
                self.0.pending.fetch_sub(1, Ordering::SeqCst);
                let _guard = self.0.idle.lock().unwrap();
                self.0.wakeup.notify_all();
            }
        }
        let _done = Done(self);
        task(self);
    }

    fn worker_loop(&self, idx: usize) {
        WORKER.set(Some((self.identity(), idx)));
        loop {
            if self.panicked.load(Ordering::SeqCst) {
                break;
            }
            if let Some(task) = self.find_task(Some(idx)) {
                self.run_task(task);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let guard = self.idle.lock().unwrap();
            if self.has_queued()
                || self.shutdown.load(Ordering::SeqCst)
                || self.panicked.load(Ordering::SeqCst)
            {
                continue;
            }
            let _ = self
                .wakeup
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
    }
}

/// The worker width a `jobs` request actually gets: `jobs` capped at the
/// host's available parallelism, floored at 1. Worker threads beyond the
/// physical core count cannot run concurrently — on an oversubscribed host
/// every task handoff is a context switch and every parked worker's poll
/// steals time from the one doing work — so callers size their pools with
/// this before [`scope`]. Build outputs are byte-identical for every worker
/// width, so the cap only ever changes wall time, never results. Tests that
/// need a specific width (e.g. to force interleavings) call [`scope`] with
/// an exact count instead.
pub fn effective_jobs(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    jobs.min(cores).max(1)
}

/// Runs `f` against a pool of `jobs` workers (the calling thread counts as
/// one of them). Tasks spawned inside the scope are guaranteed to finish
/// before `scope` returns; with `jobs <= 1` no threads are spawned and every
/// task runs on the calling thread during joins and teardown. The width is
/// used exactly as given — user-facing callers should pass it through
/// [`effective_jobs`] first so an oversized `--jobs` does not oversubscribe
/// the host.
///
/// # Panics
///
/// Propagates panics from pool tasks.
pub fn scope<'env, R>(jobs: usize, f: impl FnOnce(&PoolScope<'env>) -> R) -> R {
    let pool = PoolScope::new(jobs);
    if !pool.is_parallel() {
        let result = f(&pool);
        pool.help_until(|| pool.pending.load(Ordering::SeqCst) == 0);
        return result;
    }

    /// Flags shutdown on drop so workers exit even when `f` or a helped
    /// task unwinds — otherwise `std::thread::scope`'s implicit join would
    /// wait forever on parked workers.
    struct Shutdown<'a, 'env>(&'a PoolScope<'env>);
    impl Drop for Shutdown<'_, '_> {
        fn drop(&mut self) {
            self.0.shutdown.store(true, Ordering::SeqCst);
            let _guard = self.0.idle.lock().unwrap();
            self.0.wakeup.notify_all();
        }
    }

    std::thread::scope(|s| {
        let pool = &pool;
        let _shutdown = Shutdown(pool);
        for idx in 0..pool.locals.len() {
            s.spawn(move || pool.worker_loop(idx));
        }
        let result = f(pool);
        // Drain every outstanding task before releasing the workers.
        pool.help_until(|| pool.pending.load(Ordering::SeqCst) == 0);
        result
    })
}

/// Applies `f` to each item, in parallel when the pool allows it, visiting
/// `order` (a permutation of indices) — schedule the costliest items first.
/// `f` receives the item's original index and must touch only its own item;
/// items come back in their original positions, so results are independent
/// of execution order.
pub fn run_indexed<'env, T, F>(
    pool: Option<&PoolScope<'env>>,
    mut items: Vec<T>,
    order: &[usize],
    f: F,
) -> Vec<T>
where
    T: Send + 'env,
    F: Fn(usize, &mut T) + Send + Sync + 'env,
{
    debug_assert_eq!(order.len(), items.len());
    let parallel = pool.is_some_and(|p| p.is_parallel()) && items.len() > 1;
    if !parallel {
        for &i in order {
            f(i, &mut items[i]);
        }
        return items;
    }
    let pool = pool.unwrap();
    let slots: std::sync::Arc<Vec<Mutex<Option<T>>>> = std::sync::Arc::new(
        items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect(),
    );
    let remaining = std::sync::Arc::new(AtomicUsize::new(slots.len()));
    let f = std::sync::Arc::new(f);
    for &i in order {
        let slots = std::sync::Arc::clone(&slots);
        let remaining = std::sync::Arc::clone(&remaining);
        let f = std::sync::Arc::clone(&f);
        pool.spawn(move |_| {
            let mut slot = slots[i].lock().unwrap();
            f(i, slot.as_mut().expect("slot is filled until taken below"));
            drop(slot);
            // Release the slot before announcing completion, so the take()
            // below cannot observe an unfinished item.
            remaining.fetch_sub(1, Ordering::SeqCst);
        });
    }
    pool.help_until(|| remaining.load(Ordering::SeqCst) == 0);
    (0..slots.len())
        .map(|i| {
            slots[i]
                .lock()
                .unwrap()
                .take()
                .expect("every task ran exactly once")
        })
        .collect()
}

/// Applies `f` to each item, fanning out one pool task per *batch* (a group
/// of item indices) instead of one per item — the fixed per-task cost
/// (allocation, queue traffic, steal attempts) is paid per batch, which is
/// what makes wide fan-outs of tiny items profitable. `batches` must be
/// disjoint and cover every index exactly once; schedule the costliest
/// batch first (the injector is FIFO). `f` receives each item's original
/// index and must touch only its own item; items come back in their original
/// positions, so results are independent of execution order.
pub fn run_batched<'env, T, F>(
    pool: Option<&PoolScope<'env>>,
    mut items: Vec<T>,
    batches: &[Vec<usize>],
    f: F,
) -> Vec<T>
where
    T: Send + 'env,
    F: Fn(usize, &mut T) + Send + Sync + 'env,
{
    #[cfg(debug_assertions)]
    {
        let mut seen = vec![false; items.len()];
        for &i in batches.iter().flatten() {
            assert!(!seen[i], "index {i} appears in two batches");
            seen[i] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "batches must cover every item index"
        );
    }
    let parallel = pool.is_some_and(|p| p.is_parallel()) && batches.len() > 1;
    if !parallel {
        for batch in batches {
            for &i in batch {
                f(i, &mut items[i]);
            }
        }
        return items;
    }
    let pool = pool.unwrap();
    let total = items.len();
    let slots: std::sync::Arc<Vec<Mutex<Option<T>>>> = std::sync::Arc::new(
        items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect(),
    );
    let remaining = std::sync::Arc::new(AtomicUsize::new(total));
    let f = std::sync::Arc::new(f);
    for batch in batches {
        let batch = batch.clone();
        let slots = std::sync::Arc::clone(&slots);
        let remaining = std::sync::Arc::clone(&remaining);
        let f = std::sync::Arc::clone(&f);
        pool.spawn(move |_| {
            for i in batch {
                let mut slot = slots[i].lock().unwrap();
                f(i, slot.as_mut().expect("slot is filled until taken below"));
                drop(slot);
                // Release the slot before announcing completion, so the
                // take() below cannot observe an unfinished item.
                remaining.fetch_sub(1, Ordering::SeqCst);
            }
        });
    }
    pool.help_until(|| remaining.load(Ordering::SeqCst) == 0);
    (0..slots.len())
        .map(|i| {
            slots[i]
                .lock()
                .unwrap()
                .take()
                .expect("every task ran exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn sequential_scope_runs_everything_on_caller() {
        let count = AtomicU32::new(0);
        scope(1, |pool| {
            for _ in 0..10 {
                pool.spawn(|_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
            assert!(!pool.is_parallel());
            pool.help_until(|| count.load(Ordering::SeqCst) == 10);
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_drains_pending_tasks_before_returning() {
        let count = Arc::new(AtomicU32::new(0));
        let inner = Arc::clone(&count);
        scope(4, move |pool| {
            for _ in 0..100 {
                let inner = Arc::clone(&inner);
                pool.spawn(move |_| {
                    inner.fetch_add(1, Ordering::SeqCst);
                });
            }
            // No explicit join: teardown must finish them all.
        });
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_borrow_the_environment() {
        let data = [1u64, 2, 3, 4, 5];
        let total = AtomicU64::new(0);
        scope(3, |pool| {
            for chunk in data.chunks(2) {
                let total = &total;
                pool.spawn(move |_| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn nested_spawns_share_the_same_workers() {
        // Module-level tasks each fan out function-level subtasks and join
        // them with help_until — the layout the build driver uses.
        let done = Arc::new(AtomicU32::new(0));
        scope(4, |pool| {
            for _ in 0..6 {
                let done = Arc::clone(&done);
                pool.spawn(move |pool| {
                    let sub = Arc::new(AtomicU32::new(0));
                    for _ in 0..8 {
                        let sub = Arc::clone(&sub);
                        pool.spawn(move |_| {
                            sub.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    pool.help_until(|| sub.load(Ordering::SeqCst) == 8);
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.help_until(|| done.load(Ordering::SeqCst) == 6);
        });
        assert_eq!(done.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn spawn_carries_faultfs_task_context() {
        // A worker (or the caller, at jobs=1) running a spawned closure must
        // see the spawner's active task, not its own idle state.
        for jobs in [1, 4] {
            let seen: Mutex<Vec<Option<String>>> = Mutex::new(Vec::new());
            scope(jobs, |pool| {
                let _scope = sfcc_faultfs::task_scope("optimize(lib)");
                for _ in 0..4 {
                    let seen = &seen;
                    pool.spawn(move |_| {
                        seen.lock().unwrap().push(sfcc_faultfs::active_task());
                    });
                }
            });
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 4);
            assert!(
                seen.iter().all(|t| t.as_deref() == Some("optimize(lib)")),
                "jobs={jobs}: {seen:?}"
            );
        }
    }

    #[test]
    fn run_indexed_preserves_positions_and_runs_each_once() {
        for jobs in [1, 4] {
            let items: Vec<u64> = (0..37).collect();
            let order: Vec<usize> = (0..37).rev().collect();
            let out = scope(jobs, |pool| {
                run_indexed(Some(pool), items, &order, |i, item| {
                    *item = *item * 10 + i as u64 % 10;
                })
            });
            let expect: Vec<u64> = (0..37).map(|i| i * 10 + i % 10).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn run_indexed_without_pool_is_sequential() {
        let out = run_indexed::<u32, _>(None, vec![1, 2, 3], &[0, 1, 2], |_, x| *x += 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn run_batched_preserves_positions_and_runs_each_once() {
        for jobs in [1, 4] {
            let items: Vec<u64> = (0..41).collect();
            // Uneven batches in arbitrary order, covering every index once.
            let batches: Vec<Vec<usize>> = vec![
                (30..41).collect(),
                (0..7).rev().collect(),
                (7..30).step_by(2).collect(),
                (8..30).step_by(2).collect(),
            ];
            let out = scope(jobs, |pool| {
                run_batched(Some(pool), items, &batches, |i, item| {
                    *item = *item * 10 + i as u64 % 10;
                })
            });
            let expect: Vec<u64> = (0..41).map(|i| i * 10 + i % 10).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn run_batched_spawns_one_task_per_batch() {
        let items: Vec<u32> = (0..12).collect();
        let batches: Vec<Vec<usize>> = vec![(0..6).collect(), (6..12).collect()];
        let (out, stats) = scope(4, |pool| {
            let out = run_batched(Some(pool), items, &batches, |_, x| *x += 1);
            (out, pool.stats())
        });
        assert_eq!(out, (1..13).collect::<Vec<u32>>());
        assert_eq!(stats.spawned, 2, "one pool task per batch, not per item");
    }

    #[test]
    fn run_batched_without_pool_is_sequential() {
        let batches = vec![vec![2, 0], vec![1]];
        let out = run_batched::<u32, _>(None, vec![1, 2, 3], &batches, |_, x| *x += 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn stats_count_spawns() {
        let stats = scope(2, |pool| {
            for _ in 0..5 {
                pool.spawn(|_| {});
            }
            pool.help_until(|| pool.pending.load(Ordering::SeqCst) == 0);
            pool.stats()
        });
        assert_eq!(stats.spawned, 5);
    }

    #[test]
    fn task_panic_propagates_not_hangs() {
        let result = std::panic::catch_unwind(|| {
            scope(3, |pool| {
                pool.spawn(|_| panic!("task failed"));
                pool.help_until(|| false); // must re-raise, not spin forever
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn spawned_tasks_inherit_the_spawner_trace_context() {
        let handle = sfcc_trace::install();
        let root = sfcc_trace::span("build", "root", 0);
        let root_id = root.id();
        scope(4, |pool| {
            for i in 0..8u64 {
                pool.spawn(move |_| {
                    let _child = sfcc_trace::span("function", format!("f{i}"), i);
                });
            }
        });
        drop(root);
        let trace = handle.finish();
        let children: Vec<_> = trace.spans.iter().filter(|s| s.cat == "function").collect();
        assert_eq!(children.len(), 8);
        for child in children {
            assert_eq!(
                child.parent, root_id.0,
                "stolen task span must nest under the spawn site"
            );
        }
    }

    #[test]
    fn effective_jobs_caps_at_host_parallelism() {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(effective_jobs(0), 1);
        assert_eq!(effective_jobs(1), 1);
        assert_eq!(effective_jobs(usize::MAX), cores);
        assert!(effective_jobs(8) <= cores.max(8));
    }

    #[test]
    fn jobs_reports_requested_width() {
        scope(5, |pool| {
            assert_eq!(pool.jobs(), 5);
            assert!(pool.is_parallel());
        });
    }
}
