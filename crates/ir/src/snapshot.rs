//! Copy-on-write module snapshots for cross-function passes.
//!
//! A pipeline stage that reads *other* functions (the inliner) must observe
//! a frozen pre-stage world, independent of the order in which functions of
//! the stage are transformed — that is what makes per-function pipeline
//! tasks order-independent and `--jobs` a pure wall-time knob. The naive
//! realization is `module.clone()` per snapshot point, which costs a full
//! deep copy of every function even when a stage changed almost nothing.
//!
//! [`ModuleSnapshot`] holds functions as `Arc<Function>` instead: taking a
//! new snapshot re-wraps only the functions that actually changed since the
//! previous one and reuses the old `Arc` for the rest (zero copy). Shared
//! ownership also makes one snapshot safely readable from any number of
//! worker threads for the duration of a stage.

use crate::function::{Function, Module};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, cheaply shareable view of a module's functions, used as
/// the read-only `snapshot` argument of every pass.
///
/// Lookups are by unqualified function name, pre-indexed (the inliner
/// resolves callees on every call site it considers).
#[derive(Debug, Clone)]
pub struct ModuleSnapshot {
    /// Module name (callee targets are qualified `module.function`).
    pub name: String,
    functions: Vec<Arc<Function>>,
    index: HashMap<String, usize>,
}

impl ModuleSnapshot {
    /// A snapshot with no functions — for passes under test that never read
    /// their snapshot, and for cross-module lookups that must all miss.
    pub fn empty(name: impl Into<String>) -> Self {
        ModuleSnapshot {
            name: name.into(),
            functions: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Snapshots `module` by deep-cloning every function (the cold path —
    /// re-snapshots should go through [`ModuleSnapshot::from_arcs`] with
    /// reused `Arc`s for unchanged functions).
    pub fn of(module: &Module) -> Self {
        Self::from_arcs(
            module.name.clone(),
            module
                .functions
                .iter()
                .map(|f| Arc::new(f.clone()))
                .collect(),
        )
    }

    /// Assembles a snapshot from pre-wrapped functions — the copy-on-write
    /// constructor: callers pass fresh `Arc`s for changed functions and
    /// clones of the previous snapshot's `Arc`s for untouched ones.
    pub fn from_arcs(name: impl Into<String>, functions: Vec<Arc<Function>>) -> Self {
        let index = functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        ModuleSnapshot {
            name: name.into(),
            functions,
            index,
        }
    }

    /// Finds a function by unqualified name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.index.get(name).map(|&i| &*self.functions[i])
    }

    /// The snapshot's functions, in definition order.
    pub fn arcs(&self) -> &[Arc<Function>] {
        &self.functions
    }

    /// Number of functions in the snapshot.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the snapshot holds no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FuncBuilder;

    fn module_with(names: &[&str]) -> Module {
        let mut m = Module::new("m");
        for n in names {
            let mut f = Function::new(*n, vec![], None);
            FuncBuilder::at_entry(&mut f).ret(None);
            m.add_function(f);
        }
        m
    }

    #[test]
    fn of_indexes_every_function() {
        let snap = ModuleSnapshot::of(&module_with(&["a", "b", "c"]));
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.function("b").unwrap().name, "b");
        assert!(snap.function("missing").is_none());
    }

    #[test]
    fn empty_snapshot_misses_everything() {
        let snap = ModuleSnapshot::empty("m");
        assert!(snap.is_empty());
        assert!(snap.function("a").is_none());
    }

    #[test]
    fn from_arcs_shares_rather_than_copies() {
        let snap = ModuleSnapshot::of(&module_with(&["a", "b"]));
        let reused = snap.arcs().to_vec();
        let again = ModuleSnapshot::from_arcs("m", reused);
        assert!(Arc::ptr_eq(&snap.arcs()[0], &again.arcs()[0]));
        assert!(Arc::ptr_eq(&snap.arcs()[1], &again.arcs()[1]));
    }
}
