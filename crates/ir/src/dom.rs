//! Dominator tree construction (Cooper–Harvey–Kennedy) and dominance
//! frontiers, used by `mem2reg`, LICM, and the verifier.

use crate::cfg::{post_order, Predecessors};
use crate::function::{Function, ENTRY};
use crate::inst::BlockId;

/// The dominator tree of a function's reachable CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Children lists of the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Position of each block in the post-order used for intersection
    /// (`usize::MAX` for unreachable blocks).
    po_index: Vec<usize>,
    /// Reverse post-order of reachable blocks (entry first).
    rpo: Vec<BlockId>,
}

impl DomTree {
    /// Builds the dominator tree using the Cooper–Harvey–Kennedy iterative
    /// algorithm on reverse post-order.
    pub fn compute(func: &Function) -> Self {
        let preds = Predecessors::compute(func);
        let po = post_order(func);
        let n = func.block_count();
        let mut po_index = vec![usize::MAX; n];
        for (i, &b) in po.iter().enumerate() {
            po_index[b.0 as usize] = i;
        }
        let mut rpo = po.clone();
        rpo.reverse();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[ENTRY.0 as usize] = Some(ENTRY);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while po_index[a.0 as usize] < po_index[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while po_index[b.0 as usize] < po_index[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.of(b) {
                    if po_index[p.0 as usize] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.0 as usize].is_none() {
                        continue; // not yet processed this round
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for b in func.block_ids() {
            if b == ENTRY {
                continue;
            }
            if let Some(parent) = idom[b.0 as usize] {
                children[parent.0 as usize].push(b);
            }
        }

        DomTree {
            idom,
            children,
            po_index,
            rpo,
        }
    }

    /// The immediate dominator of `block` (`entry`'s idom is itself);
    /// `None` when `block` is unreachable.
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom[block.0 as usize]
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.po_index[block.0 as usize] != usize::MAX
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == ENTRY {
                return false;
            }
            cur = self.idom[cur.0 as usize].expect("reachable blocks have idoms");
        }
    }

    /// Children of `block` in the dominator tree.
    pub fn children(&self, block: BlockId) -> &[BlockId] {
        &self.children[block.0 as usize]
    }

    /// Reverse post-order of reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Computes dominance frontiers for phi placement.
    pub fn frontiers(&self, func: &Function) -> Vec<Vec<BlockId>> {
        let preds = Predecessors::compute(func);
        let n = func.block_count();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in func.block_ids() {
            if !self.is_reachable(b) || preds.count(b) < 2 {
                continue;
            }
            let idom_b = self.idom[b.0 as usize].expect("reachable");
            for &p in preds.of(b) {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    if !df[runner.0 as usize].contains(&b) {
                        df[runner.0 as usize].push(b);
                    }
                    if runner == ENTRY {
                        break;
                    }
                    runner = self.idom[runner.0 as usize].expect("reachable");
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FuncBuilder;
    use crate::inst::{Ty, ValueRef};

    /// entry → (b1 | b2); b1 → b3; b2 → b3; b3 → ret
    fn diamond() -> (Function, BlockId, BlockId, BlockId) {
        let mut f = Function::new("d", vec![Ty::I1], None);
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.cond_br(ValueRef::Param(0), b1, b2);
        b.switch_to(b1);
        b.br(b3);
        b.switch_to(b2);
        b.br(b3);
        b.switch_to(b3);
        b.ret(None);
        (f, b1, b2, b3)
    }

    #[test]
    fn idoms_of_diamond() {
        let (f, b1, b2, b3) = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(ENTRY), Some(ENTRY));
        assert_eq!(dt.idom(b1), Some(ENTRY));
        assert_eq!(dt.idom(b2), Some(ENTRY));
        assert_eq!(dt.idom(b3), Some(ENTRY)); // join dominated by entry, not branches
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, b1, _, b3) = diamond();
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(ENTRY, b3));
        assert!(dt.dominates(b1, b1));
        assert!(!dt.dominates(b1, b3));
        assert!(!dt.dominates(b3, ENTRY));
    }

    #[test]
    fn frontier_of_diamond_branches_is_join() {
        let (f, b1, b2, b3) = diamond();
        let dt = DomTree::compute(&f);
        let df = dt.frontiers(&f);
        assert_eq!(df[b1.0 as usize], vec![b3]);
        assert_eq!(df[b2.0 as usize], vec![b3]);
        assert!(df[b3.0 as usize].is_empty());
    }

    #[test]
    fn loop_header_in_own_frontier() {
        // entry → header; header → (body | exit); body → header
        let mut f = Function::new("l", vec![Ty::I1], None);
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.br(header);
        b.switch_to(header);
        b.cond_br(ValueRef::Param(0), body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
        let df = dt.frontiers(&f);
        // The body's frontier is the header (back edge target).
        assert_eq!(df[body.0 as usize], vec![header]);
        assert_eq!(df[header.0 as usize], vec![header]);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let (mut f, ..) = diamond();
        let orphan = f.add_block();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(orphan), None);
        assert!(!dt.is_reachable(orphan));
        assert!(!dt.dominates(ENTRY, orphan));
    }

    #[test]
    fn children_partition_reachable_blocks() {
        let (f, ..) = diamond();
        let dt = DomTree::compute(&f);
        let total_children: usize = f.block_ids().map(|b| dt.children(b).len()).sum();
        // every reachable non-entry block is someone's child
        assert_eq!(total_children, 3);
    }

    #[test]
    fn rpo_matches_block_count() {
        let (f, ..) = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.rpo().len(), 4);
        assert_eq!(dt.rpo()[0], ENTRY);
    }
}
