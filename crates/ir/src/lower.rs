//! AST → IR lowering.
//!
//! Lowering is deliberately naive, mirroring how Clang emits LLVM IR: every
//! local variable becomes a stack slot ([`crate::inst::Op::Alloca`]) accessed
//! with loads and stores, short-circuit operators become control flow through
//! a temporary slot, and no SSA phis are created here. The `mem2reg` pass
//! then promotes slots to SSA values — which makes the optimization pipeline
//! (and its dormancy profile) realistic.

use crate::function::{FuncBuilder, Function, Module};
use crate::inst::{BinKind, BlockId, IcmpPred, Ty, ValueRef};
use sfcc_frontend::ast;
use sfcc_frontend::sema::{CheckedModule, ModuleEnv, BUILTIN_PRINT};
use std::collections::HashMap;

/// Lowers a checked module to IR.
///
/// Function calls are emitted against qualified names (`module.function`);
/// the builtin `print` keeps its unqualified name.
pub fn lower_module(checked: &CheckedModule, env: &ModuleEnv) -> Module {
    let mut module = Module::new(checked.ast.name.clone());
    for func in &checked.ast.functions {
        module.add_function(lower_function(checked, env, func));
    }
    module
}

/// Lowers a single function definition to IR.
///
/// `checked` only needs to carry what lowering actually consults for `def`:
/// the module name, evaluated globals, and the signatures of `def`'s local
/// callees in `interface.functions` (`env` supplies cross-module ones). The
/// function-granular pipeline exploits this by lowering against a pruned
/// [`CheckedModule`] — the emitted IR is identical to the corresponding
/// function of [`lower_module`] on the full module.
pub fn lower_function_def(
    checked: &CheckedModule,
    env: &ModuleEnv,
    def: &ast::FunctionDef,
) -> Function {
    lower_function(checked, env, def)
}

fn type_of(ast_ty: ast::TypeAst) -> Ty {
    match ast_ty {
        ast::TypeAst::Int => Ty::I64,
        ast::TypeAst::Bool => Ty::I1,
        ast::TypeAst::IntArray(_) | ast::TypeAst::BoolArray(_) => Ty::Ptr,
    }
}

/// A lowered variable: its stack slot and element type.
#[derive(Debug, Clone, Copy)]
struct Slot {
    ptr: ValueRef,
    elem: Ty,
}

struct Lowerer<'a> {
    checked: &'a CheckedModule,
    env: &'a ModuleEnv,
    scopes: Vec<HashMap<String, Slot>>,
    /// `(continue_target, break_target)` stack.
    loop_stack: Vec<(BlockId, BlockId)>,
    /// Whether the cursor block already has a real terminator.
    terminated: bool,
}

fn lower_function(checked: &CheckedModule, env: &ModuleEnv, def: &ast::FunctionDef) -> Function {
    let params: Vec<Ty> = def.params.iter().map(|p| type_of(p.ty)).collect();
    let ret = def.ret.map(type_of);
    let mut func = Function::new(def.name.clone(), params, ret);
    let mut b = FuncBuilder::at_entry(&mut func);

    let mut lowerer = Lowerer {
        checked,
        env,
        scopes: vec![HashMap::new()],
        loop_stack: Vec::new(),
        terminated: false,
    };

    // Spill parameters into stack slots so assignments to parameters work
    // and mem2reg has uniform material.
    for (i, p) in def.params.iter().enumerate() {
        let ptr = b.alloca(1);
        b.store(ptr, ValueRef::Param(i as u32));
        lowerer.declare(
            &p.name,
            Slot {
                ptr,
                elem: type_of(p.ty),
            },
        );
    }

    lowerer.block(&mut b, &def.body);

    // Fall-through: void functions return implicitly; non-void functions are
    // guaranteed by sema to have returned on every path, so a fall-through
    // block is unreachable and keeps its trap terminator.
    if !lowerer.terminated && def.ret.is_none() {
        b.ret(None);
    }
    func
}

impl<'a> Lowerer<'a> {
    fn declare(&mut self, name: &str, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), slot);
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Ensures the cursor is an unterminated block, creating a fresh
    /// (unreachable) one after `return`/`break`/`continue` so later source
    /// statements still have somewhere to go.
    fn ensure_open(&mut self, b: &mut FuncBuilder<'_>) {
        if self.terminated {
            let fresh = b.new_block();
            b.switch_to(fresh);
            self.terminated = false;
        }
    }

    fn block(&mut self, b: &mut FuncBuilder<'_>, block: &ast::Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(b, stmt);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, b: &mut FuncBuilder<'_>, stmt: &ast::Stmt) {
        use ast::StmtKind;
        self.ensure_open(b);
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let (elem, len) = match ty {
                    ast::TypeAst::Int => (Ty::I64, 1),
                    ast::TypeAst::Bool => (Ty::I1, 1),
                    ast::TypeAst::IntArray(n) => (Ty::I64, *n),
                    ast::TypeAst::BoolArray(n) => (Ty::I1, *n),
                };
                let ptr = b.alloca(len);
                if let Some(init) = init {
                    let v = self.expr(b, init);
                    b.store(ptr, v);
                }
                self.declare(name, Slot { ptr, elem });
            }
            StmtKind::Assign(lv, value) => {
                let v = self.expr(b, value);
                match lv {
                    ast::LValue::Var(name, _) => {
                        let slot = self.lookup(name).expect("sema resolved lvalue");
                        b.store(slot.ptr, v);
                    }
                    ast::LValue::Index(name, idx, _) => {
                        let slot = self.lookup(name).expect("sema resolved lvalue");
                        let i = self.expr(b, idx);
                        let addr = b.gep(slot.ptr, i);
                        b.store(addr, v);
                    }
                }
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let c = self.expr(b, cond);
                let then_bb = b.new_block();
                let join_bb = b.new_block();
                let else_bb = if else_block.is_some() {
                    b.new_block()
                } else {
                    join_bb
                };
                b.cond_br(c, then_bb, else_bb);

                b.switch_to(then_bb);
                self.terminated = false;
                self.block(b, then_block);
                if !self.terminated {
                    b.br(join_bb);
                }

                if let Some(eb) = else_block {
                    b.switch_to(else_bb);
                    self.terminated = false;
                    self.block(b, eb);
                    if !self.terminated {
                        b.br(join_bb);
                    }
                }

                b.switch_to(join_bb);
                self.terminated = false;
            }
            StmtKind::While { cond, body } => {
                let header = b.new_block();
                let body_bb = b.new_block();
                let exit = b.new_block();
                b.br(header);

                b.switch_to(header);
                self.terminated = false;
                let c = self.expr(b, cond);
                b.cond_br(c, body_bb, exit);

                b.switch_to(body_bb);
                self.terminated = false;
                self.loop_stack.push((header, exit));
                self.block(b, body);
                self.loop_stack.pop();
                if !self.terminated {
                    b.br(header);
                }

                b.switch_to(exit);
                self.terminated = false;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(b, init);
                }
                let header = b.new_block();
                let body_bb = b.new_block();
                let step_bb = b.new_block();
                let exit = b.new_block();
                b.br(header);

                b.switch_to(header);
                self.terminated = false;
                match cond {
                    Some(c) => {
                        let v = self.expr(b, c);
                        b.cond_br(v, body_bb, exit);
                    }
                    None => b.br(body_bb),
                }

                b.switch_to(body_bb);
                self.terminated = false;
                self.loop_stack.push((step_bb, exit));
                self.block(b, body);
                self.loop_stack.pop();
                if !self.terminated {
                    b.br(step_bb);
                }

                b.switch_to(step_bb);
                self.terminated = false;
                if let Some(step) = step {
                    self.stmt(b, step);
                }
                if !self.terminated {
                    b.br(header);
                }

                b.switch_to(exit);
                self.terminated = false;
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                let v = value.as_ref().map(|e| self.expr(b, e));
                b.ret(v);
                self.terminated = true;
            }
            StmtKind::Break => {
                let (_, exit) = *self.loop_stack.last().expect("sema checked loop context");
                b.br(exit);
                self.terminated = true;
            }
            StmtKind::Continue => {
                let (cont, _) = *self.loop_stack.last().expect("sema checked loop context");
                b.br(cont);
                self.terminated = true;
            }
            StmtKind::Expr(e) => {
                self.expr_maybe_void(b, e);
            }
            StmtKind::Block(inner) => self.block(b, inner),
        }
    }

    fn expr(&mut self, b: &mut FuncBuilder<'_>, expr: &ast::Expr) -> ValueRef {
        self.expr_maybe_void(b, expr)
            .expect("sema rejected void value uses")
    }

    fn expr_maybe_void(&mut self, b: &mut FuncBuilder<'_>, expr: &ast::Expr) -> Option<ValueRef> {
        use ast::ExprKind;
        match &expr.kind {
            ExprKind::Int(v) => Some(ValueRef::int(*v)),
            ExprKind::Bool(v) => Some(ValueRef::bool(*v)),
            ExprKind::Var(name) => match self.lookup(name) {
                Some(slot) => Some(b.load(slot.ptr, slot.elem)),
                None => {
                    // Module constant, folded at lowering time.
                    let value = self.checked.global_values[name];
                    let ty = type_of(self.checked.global_types[name]);
                    Some(ValueRef::Const(ty, value))
                }
            },
            ExprKind::Index(name, idx) => {
                let slot = self.lookup(name).expect("sema resolved array");
                let i = self.expr(b, idx);
                let addr = b.gep(slot.ptr, i);
                Some(b.load(addr, slot.elem))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.expr(b, inner);
                Some(match op {
                    ast::UnOp::Neg => b.bin(BinKind::Sub, ValueRef::int(0), v),
                    ast::UnOp::Not => b.bin(BinKind::Xor, v, ValueRef::bool(true)),
                })
            }
            ExprKind::Binary(op, lhs, rhs) if op.is_logical() => {
                Some(self.short_circuit(b, *op, lhs, rhs))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.expr(b, lhs);
                let r = self.expr(b, rhs);
                use ast::BinOp::*;
                Some(match op {
                    Add => b.bin(BinKind::Add, l, r),
                    Sub => b.bin(BinKind::Sub, l, r),
                    Mul => b.bin(BinKind::Mul, l, r),
                    Div => b.bin(BinKind::Sdiv, l, r),
                    Rem => b.bin(BinKind::Srem, l, r),
                    BitAnd => b.bin(BinKind::And, l, r),
                    BitOr => b.bin(BinKind::Or, l, r),
                    BitXor => b.bin(BinKind::Xor, l, r),
                    Shl => b.bin(BinKind::Shl, l, r),
                    Shr => b.bin(BinKind::Ashr, l, r),
                    Eq => b.icmp(IcmpPred::Eq, l, r),
                    Ne => b.icmp(IcmpPred::Ne, l, r),
                    Lt => b.icmp(IcmpPred::Slt, l, r),
                    Le => b.icmp(IcmpPred::Sle, l, r),
                    Gt => b.icmp(IcmpPred::Sgt, l, r),
                    Ge => b.icmp(IcmpPred::Sge, l, r),
                    And | Or => unreachable!("handled by short_circuit"),
                })
            }
            ExprKind::Call { module, name, args } => {
                let arg_values: Vec<ValueRef> = args.iter().map(|a| self.expr(b, a)).collect();
                if module.is_none() && name == BUILTIN_PRINT {
                    b.call(BUILTIN_PRINT, arg_values, None);
                    return None;
                }
                let callee = match module {
                    Some(m) => format!("{m}.{name}"),
                    None => format!("{}.{}", self.checked.ast.name, name),
                };
                let sig = match module {
                    Some(m) => &self.env.get(m).expect("sema checked import").functions[name],
                    None => &self.checked.interface.functions[name],
                };
                let ret = sig.ret.map(type_of);
                let call = b.call(callee, arg_values, ret);
                if ret.is_some() {
                    Some(call)
                } else {
                    None
                }
            }
        }
    }

    /// Lowers `a && b` / `a || b` through a temporary slot (no phis before
    /// mem2reg).
    fn short_circuit(
        &mut self,
        b: &mut FuncBuilder<'_>,
        op: ast::BinOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
    ) -> ValueRef {
        let tmp = b.alloca(1);
        let l = self.expr(b, lhs);
        b.store(tmp, l);
        let rhs_bb = b.new_block();
        let join_bb = b.new_block();
        match op {
            ast::BinOp::And => b.cond_br(l, rhs_bb, join_bb),
            ast::BinOp::Or => b.cond_br(l, join_bb, rhs_bb),
            _ => unreachable!("short_circuit only handles && and ||"),
        }
        b.switch_to(rhs_bb);
        let r = self.expr(b, rhs);
        b.store(tmp, r);
        b.br(join_bb);
        b.switch_to(join_bb);
        b.load(tmp, Ty::I1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;
    use sfcc_frontend::{parse_and_check, Diagnostics, ModuleEnv};

    fn lower_src(src: &str) -> Module {
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src, &ModuleEnv::new(), &mut d)
            .unwrap_or_else(|| panic!("frontend errors: {d:?}"));
        let module = lower_module(&checked, &ModuleEnv::new());
        verify_module(&module).unwrap_or_else(|e| panic!("{e}\n{module}"));
        module
    }

    #[test]
    fn lowers_arithmetic() {
        let m = lower_src("fn f(a: int, b: int) -> int { return a * b + 1; }");
        let text = m.to_string();
        assert!(text.contains("mul i64"), "{text}");
        assert!(text.contains("add i64"), "{text}");
    }

    #[test]
    fn params_are_spilled_to_slots() {
        let m = lower_src("fn f(a: int) -> int { a = a + 1; return a; }");
        let text = m.to_string();
        assert!(text.contains("alloca 1"), "{text}");
        assert!(text.contains("store"), "{text}");
    }

    #[test]
    fn lowers_if_else_with_join() {
        let m = lower_src(
            "fn f(x: int) -> int { let r: int = 0; if (x > 0) { r = 1; } else { r = 2; } return r; }",
        );
        let f = m.function("f").unwrap();
        assert!(f.block_count() >= 4, "{f}");
    }

    #[test]
    fn lowers_while_loop() {
        let m = lower_src(
            "fn f(n: int) -> int { let s: int = 0; while (s < n) { s = s + 1; } return s; }",
        );
        let text = m.to_string();
        assert!(text.contains("condbr"), "{text}");
    }

    #[test]
    fn lowers_for_with_continue_and_break() {
        lower_src(
            "fn f(n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) {
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    s = s + i;
                }
                return s;
            }",
        );
    }

    #[test]
    fn lowers_arrays_with_gep() {
        let m = lower_src("fn f() -> int { let a: [int; 8]; a[2] = 5; return a[2]; }");
        let text = m.to_string();
        assert!(text.contains("alloca 8"), "{text}");
        assert!(text.contains("gep"), "{text}");
    }

    #[test]
    fn lowers_short_circuit_and() {
        let m = lower_src("fn f(a: int, b: int) -> bool { return a > 0 && b > 0; }");
        let f = m.function("f").unwrap();
        // Short circuit introduces extra blocks.
        assert!(f.block_count() >= 3, "{f}");
        let text = f.to_string();
        assert!(text.contains("condbr"), "{text}");
    }

    #[test]
    fn short_circuit_skips_rhs_effects() {
        // Division by zero on the rhs must be behind control flow.
        let m = lower_src("fn f(a: int, b: int) -> bool { return b != 0 && a / b > 1; }");
        let f = m.function("f").unwrap();
        let text = f.to_string();
        // sdiv must not be in the entry block.
        let entry_text: String = text.lines().take_while(|l| !l.starts_with("bb1")).collect();
        assert!(!entry_text.contains("sdiv"), "{text}");
    }

    #[test]
    fn globals_fold_to_constants() {
        let m = lower_src("const K: int = 6 * 7;\nfn f() -> int { return K; }");
        let text = m.to_string();
        assert!(text.contains("ret 42"), "{text}");
    }

    #[test]
    fn builtin_print_lowered_unqualified() {
        let m = lower_src("fn f() { print(1); }");
        let text = m.to_string();
        assert!(text.contains("call @print(1)"), "{text}");
    }

    #[test]
    fn local_calls_are_qualified() {
        let m = lower_src("fn g() -> int { return 1; }\nfn f() -> int { return g(); }");
        let text = m.to_string();
        assert!(text.contains("call i64 @m.g()"), "{text}");
    }

    #[test]
    fn unreachable_code_after_return_is_tolerated() {
        lower_src("fn f() -> int { return 1; print(2); return 3; }");
    }

    #[test]
    fn negation_and_not() {
        let m = lower_src("fn f(a: int, b: bool) -> int { if (!b) { return -a; } return a; }");
        let text = m.to_string();
        assert!(text.contains("xor i1"), "{text}");
        assert!(text.contains("sub i64 0,"), "{text}");
    }

    #[test]
    fn void_function_gets_implicit_return() {
        let m = lower_src("fn f() { print(1); }");
        let text = m.function("f").unwrap().to_string();
        assert!(text.contains("  ret\n"), "{text}");
    }

    #[test]
    fn per_function_lowering_matches_whole_module() {
        let src = "const K: int = 3;\n\
                   fn g(x: int) -> int { return x * K; }\n\
                   fn f(x: int) -> int { return g(x) + 1; }";
        let mut d = Diagnostics::new();
        let checked = parse_and_check("m", src, &ModuleEnv::new(), &mut d).unwrap();
        let whole = lower_module(&checked, &ModuleEnv::new());
        for def in &checked.ast.functions {
            let solo = lower_function_def(&checked, &ModuleEnv::new(), def);
            assert_eq!(
                solo.to_string(),
                whole.function(&def.name).unwrap().to_string()
            );
        }
    }

    #[test]
    fn bool_array_loads_are_i1() {
        let m = lower_src("fn f() -> bool { let a: [bool; 2]; a[0] = true; return a[0]; }");
        let text = m.to_string();
        assert!(text.contains("load i1"), "{text}");
    }
}
