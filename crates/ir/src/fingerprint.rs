//! Structural function fingerprints.
//!
//! A fingerprint is a 128-bit FNV-1a hash of a function's canonical textual
//! form with the name removed ([`crate::print::function_to_canonical_string`]).
//! Two functions with identical structure — regardless of arena history,
//! block numbering, or name — share a fingerprint. The stateful compiler keys
//! its pass-dormancy database on fingerprints, so the hash must be
//! deterministic across processes (which rules out `std`'s randomized
//! hashers).

use crate::function::Function;
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit structural hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Hashes raw bytes with FNV-1a/128.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV128_OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV128_PRIME);
        }
        Fingerprint(h)
    }

    /// Hashes a string.
    pub fn of_str(s: &str) -> Self {
        Self::of_bytes(s.as_bytes())
    }

    /// Combines two fingerprints order-dependently (for context hashes).
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = self.0;
        for chunk in other.0.to_le_bytes() {
            h ^= chunk as u128;
            h = h.wrapping_mul(FNV128_PRIME);
        }
        Fingerprint(h)
    }

    /// The low 64 bits, for compact displays.
    pub fn short(self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::LowerHex for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Computes the structural fingerprint of `func`.
///
/// The hash covers the signature and the canonically printed body but not
/// the function name, so the dormancy history of a renamed-but-unchanged
/// function remains valid.
pub fn fingerprint(func: &Function) -> Fingerprint {
    Fingerprint::of_str(&crate::print::function_to_canonical_string(func))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FuncBuilder;
    use crate::inst::{BinKind, Ty, ValueRef};

    fn make(name: &str, k: BinKind) -> Function {
        let mut f = Function::new(name, vec![Ty::I64], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut f);
        let v = b.bin(k, ValueRef::Param(0), ValueRef::int(3));
        b.ret(Some(v));
        f
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            fingerprint(&make("a", BinKind::Add)),
            fingerprint(&make("a", BinKind::Add))
        );
    }

    #[test]
    fn name_independent() {
        assert_eq!(
            fingerprint(&make("a", BinKind::Add)),
            fingerprint(&make("b", BinKind::Add))
        );
    }

    #[test]
    fn structure_sensitive() {
        assert_ne!(
            fingerprint(&make("a", BinKind::Add)),
            fingerprint(&make("a", BinKind::Mul))
        );
    }

    #[test]
    fn arena_history_independent() {
        // Build the same function, once directly and once with a detached
        // leftover instruction; fingerprints must match.
        let clean = make("a", BinKind::Add);
        let mut dirty = Function::new("a", vec![Ty::I64], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut dirty);
        let junk = b.bin(BinKind::Mul, ValueRef::Param(0), ValueRef::int(9));
        let v = b.bin(BinKind::Add, ValueRef::Param(0), ValueRef::int(3));
        b.ret(Some(v));
        dirty.detach_inst(junk.as_inst().unwrap());
        assert_eq!(fingerprint(&clean), fingerprint(&dirty));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(Fingerprint::of_bytes(b"").0, FNV128_OFFSET);
        // Single byte 'a'.
        let a = Fingerprint::of_bytes(b"a");
        assert_ne!(a.0, FNV128_OFFSET);
        assert_eq!(a, Fingerprint::of_str("a"));
    }

    #[test]
    fn combine_is_order_dependent() {
        let x = Fingerprint::of_str("x");
        let y = Fingerprint::of_str("y");
        assert_ne!(x.combine(y), y.combine(x));
        assert_eq!(x.combine(y), x.combine(y));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let s = Fingerprint(0xabc).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.ends_with("abc"));
    }
}
