//! Control-flow-graph utilities: predecessors, reachability, orderings.

use crate::function::{Function, ENTRY};
use crate::inst::BlockId;

/// Predecessor lists for every block of a function, computed in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predecessors {
    preds: Vec<Vec<BlockId>>,
}

impl Predecessors {
    /// Computes predecessors for `func`.
    pub fn compute(func: &Function) -> Self {
        let mut preds = vec![Vec::new(); func.block_count()];
        for b in func.block_ids() {
            for succ in func.block(b).term.successors() {
                preds[succ.0 as usize].push(b);
            }
        }
        Predecessors { preds }
    }

    /// Predecessors of `block` in terminator order.
    pub fn of(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.0 as usize]
    }

    /// Number of predecessors of `block`.
    pub fn count(&self, block: BlockId) -> usize {
        self.of(block).len()
    }
}

/// Blocks reachable from the entry, as a dense bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    reachable: Vec<bool>,
}

impl Reachability {
    /// Computes reachability from the entry block.
    pub fn compute(func: &Function) -> Self {
        let mut reachable = vec![false; func.block_count()];
        let mut stack = vec![ENTRY];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b.0 as usize], true) {
                continue;
            }
            stack.extend(func.block(b).term.successors());
        }
        Reachability { reachable }
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.reachable[block.0 as usize]
    }

    /// Iterates reachable block ids in layout order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.reachable
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| BlockId(i as u32))
    }

    /// Number of reachable blocks.
    pub fn count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }
}

/// Computes a post-order of the blocks reachable from entry.
pub fn post_order(func: &Function) -> Vec<BlockId> {
    let n = func.block_count();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS with an explicit phase marker to emit post-order.
    let mut stack: Vec<(BlockId, bool)> = vec![(ENTRY, false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            order.push(b);
            continue;
        }
        if std::mem::replace(&mut visited[b.0 as usize], true) {
            continue;
        }
        stack.push((b, true));
        // Push successors in reverse so the first successor is visited first.
        let succs = func.block(b).term.successors();
        for s in succs.into_iter().rev() {
            if !visited[s.0 as usize] {
                stack.push((s, false));
            }
        }
    }
    order
}

/// Computes a reverse post-order (a topological-ish order for forward
/// dataflow) of reachable blocks.
pub fn reverse_post_order(func: &Function) -> Vec<BlockId> {
    let mut order = post_order(func);
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FuncBuilder;
    use crate::inst::{Ty, ValueRef};

    /// Builds a diamond CFG: entry → (b1 | b2) → b3.
    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Ty::I1], Some(Ty::I64));
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.cond_br(ValueRef::Param(0), b1, b2);
        b.switch_to(b1);
        b.br(b3);
        b.switch_to(b2);
        b.br(b3);
        b.switch_to(b3);
        b.ret(Some(ValueRef::int(0)));
        f
    }

    #[test]
    fn preds_of_diamond() {
        let f = diamond();
        let preds = Predecessors::compute(&f);
        assert_eq!(preds.count(ENTRY), 0);
        assert_eq!(preds.of(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(preds.of(BlockId(1)), &[ENTRY]);
    }

    #[test]
    fn reachability_ignores_orphan_blocks() {
        let mut f = diamond();
        let orphan = f.add_block();
        let r = Reachability::compute(&f);
        assert!(!r.is_reachable(orphan));
        assert_eq!(r.count(), 4);
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_dominance() {
        let f = diamond();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], ENTRY);
        assert_eq!(rpo.len(), 4);
        // b3 (the join) must come after both b1 and b2.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn post_order_ends_at_entry() {
        let f = diamond();
        let po = post_order(&f);
        assert_eq!(*po.last().unwrap(), ENTRY);
    }

    #[test]
    fn single_block_orderings() {
        let mut f = Function::new("s", vec![], None);
        FuncBuilder::at_entry(&mut f).ret(None);
        assert_eq!(post_order(&f), vec![ENTRY]);
        assert_eq!(reverse_post_order(&f), vec![ENTRY]);
    }

    #[test]
    fn loop_cfg_orders_header_before_body() {
        // entry → header; header → (body | exit); body → header.
        let mut f = Function::new("l", vec![Ty::I1], None);
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.br(header);
        b.switch_to(header);
        b.cond_br(ValueRef::Param(0), body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let rpo = reverse_post_order(&f);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(header) < pos(body));
        assert!(pos(ENTRY) == 0);
    }
}
