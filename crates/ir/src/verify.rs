//! IR verifier: structural and SSA-dominance well-formedness checks.
//!
//! The pass manager (in `sfcc-passes`) runs the verifier after every
//! transform in debug builds, so a broken pass fails loudly and close to the
//! mistake instead of producing miscompiled output.

use crate::cfg::Predecessors;
use crate::dom::DomTree;
use crate::function::{Function, Module};
use crate::inst::{BinKind, BlockId, InstId, Op, Terminator, Ty, ValueRef};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the failure occurred.
    pub function: String,
    /// Description of the violated invariant.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ir verify failed in '{}': {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function of `module`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for f in &module.functions {
        verify_function(f)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// Checked invariants:
/// - every block id referenced by terminators and phis is in range;
/// - instruction ids are attached to exactly one block;
/// - operand types match opcode expectations;
/// - phis appear only at the start of a block, with exactly one incoming
///   value per reachable predecessor;
/// - every use is dominated by its definition (SSA dominance);
/// - terminator conditions are `i1` and return arity matches the signature.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let v = Verifier { func };
    v.run()
}

struct Verifier<'f> {
    func: &'f Function,
}

impl<'f> Verifier<'f> {
    fn fail(&self, message: impl Into<String>) -> VerifyError {
        VerifyError {
            function: self.func.name.clone(),
            message: message.into(),
        }
    }

    fn check_block_id(&self, b: BlockId, what: &str) -> Result<(), VerifyError> {
        if (b.0 as usize) < self.func.block_count() {
            Ok(())
        } else {
            Err(self.fail(format!("{what} references out-of-range block {b}")))
        }
    }

    fn run(&self) -> Result<(), VerifyError> {
        let func = self.func;

        // 1. Each attached instruction id appears exactly once, and is in range.
        let mut owner: HashMap<InstId, BlockId> = HashMap::new();
        for b in func.block_ids() {
            for &i in &func.block(b).insts {
                if (i.0 as usize) >= func.inst_arena_len() {
                    return Err(self.fail(format!("block {b} lists out-of-range inst {i}")));
                }
                if let Some(prev) = owner.insert(i, b) {
                    return Err(self.fail(format!("inst {i} attached to both {prev} and {b}")));
                }
            }
        }

        // 2. Terminator and phi block references are in range.
        for b in func.block_ids() {
            for s in func.block(b).term.successors() {
                self.check_block_id(s, "terminator")?;
            }
            for &i in &func.block(b).insts {
                if let Op::Phi(blocks) = &func.inst(i).op {
                    for &pb in blocks {
                        self.check_block_id(pb, "phi")?;
                    }
                }
            }
        }

        let dom = DomTree::compute(func);
        let preds = Predecessors::compute(func);

        // 3. Per-instruction structural checks (reachable blocks only; passes
        //    may leave unreachable husks that DCE will collect).
        for &b in dom.rpo() {
            let data = func.block(b);
            let mut seen_non_phi = false;
            for &i in &data.insts {
                let inst = func.inst(i);
                match &inst.op {
                    Op::Phi(_) => {
                        if seen_non_phi {
                            return Err(self.fail(format!(
                                "phi {i} in {b} appears after a non-phi instruction"
                            )));
                        }
                    }
                    _ => seen_non_phi = true,
                }
                self.check_inst(b, i, &preds, &dom)?;
            }
            self.check_terminator(b)?;
        }

        // 4. SSA dominance for non-phi uses.
        self.check_dominance(&dom, &owner)?;
        Ok(())
    }

    fn operand_ty(&self, v: ValueRef) -> Result<Ty, VerifyError> {
        match v {
            ValueRef::Const(ty, c) => {
                if ty == Ty::I1 && !(0..=1).contains(&c) {
                    return Err(self.fail(format!("i1 constant {c} out of range")));
                }
                if matches!(ty, Ty::Ptr | Ty::Void) {
                    return Err(self.fail(format!("constant of type {ty} is not allowed")));
                }
                Ok(ty)
            }
            ValueRef::Param(i) => self
                .func
                .params
                .get(i as usize)
                .copied()
                .ok_or_else(|| self.fail(format!("parameter p{i} out of range"))),
            ValueRef::Inst(id) => {
                if (id.0 as usize) >= self.func.inst_arena_len() {
                    return Err(self.fail(format!("use of out-of-range inst {id}")));
                }
                let ty = self.func.inst(id).ty;
                if ty == Ty::Void {
                    return Err(self.fail(format!("use of void instruction {id} as a value")));
                }
                Ok(ty)
            }
        }
    }

    fn expect_args(&self, i: InstId, n: usize) -> Result<(), VerifyError> {
        let got = self.func.inst(i).args.len();
        if got == n {
            Ok(())
        } else {
            Err(self.fail(format!("inst {i} expects {n} operand(s), has {got}")))
        }
    }

    fn check_inst(
        &self,
        b: BlockId,
        i: InstId,
        preds: &Predecessors,
        dom: &DomTree,
    ) -> Result<(), VerifyError> {
        let inst = self.func.inst(i);
        match &inst.op {
            Op::Bin(kind) => {
                self.expect_args(i, 2)?;
                let lt = self.operand_ty(inst.args[0])?;
                let rt = self.operand_ty(inst.args[1])?;
                if lt != rt || lt != inst.ty {
                    return Err(self.fail(format!(
                        "bin {i}: operand/result types {lt}/{rt}/{} disagree",
                        inst.ty
                    )));
                }
                let logical_ok = matches!(kind, BinKind::And | BinKind::Or | BinKind::Xor);
                match inst.ty {
                    Ty::I64 => {}
                    Ty::I1 if logical_ok => {}
                    other => {
                        return Err(self.fail(format!("bin {i}: {kind} not defined on {other}")))
                    }
                }
            }
            Op::Icmp(_) => {
                self.expect_args(i, 2)?;
                let lt = self.operand_ty(inst.args[0])?;
                let rt = self.operand_ty(inst.args[1])?;
                if lt != Ty::I64 || rt != Ty::I64 {
                    return Err(self.fail(format!("icmp {i}: operands must be i64")));
                }
                if inst.ty != Ty::I1 {
                    return Err(self.fail(format!("icmp {i}: result must be i1")));
                }
            }
            Op::Select => {
                self.expect_args(i, 3)?;
                let ct = self.operand_ty(inst.args[0])?;
                let at = self.operand_ty(inst.args[1])?;
                let bt = self.operand_ty(inst.args[2])?;
                if ct != Ty::I1 {
                    return Err(self.fail(format!("select {i}: condition must be i1")));
                }
                if at != bt || at != inst.ty {
                    return Err(self.fail(format!("select {i}: arm types disagree")));
                }
            }
            Op::Alloca(size) => {
                self.expect_args(i, 0)?;
                if *size == 0 {
                    return Err(self.fail(format!("alloca {i}: zero size")));
                }
                if inst.ty != Ty::Ptr {
                    return Err(self.fail(format!("alloca {i}: result must be ptr")));
                }
            }
            Op::Load => {
                self.expect_args(i, 1)?;
                if self.operand_ty(inst.args[0])? != Ty::Ptr {
                    return Err(self.fail(format!("load {i}: operand must be ptr")));
                }
                if !matches!(inst.ty, Ty::I64 | Ty::I1) {
                    return Err(self.fail(format!("load {i}: result must be i64 or i1")));
                }
            }
            Op::Store => {
                self.expect_args(i, 2)?;
                if self.operand_ty(inst.args[0])? != Ty::Ptr {
                    return Err(self.fail(format!("store {i}: address must be ptr")));
                }
                let vt = self.operand_ty(inst.args[1])?;
                if !matches!(vt, Ty::I64 | Ty::I1) {
                    return Err(self.fail(format!("store {i}: value must be i64 or i1")));
                }
                if inst.ty != Ty::Void {
                    return Err(self.fail(format!("store {i}: must be void")));
                }
            }
            Op::Gep => {
                self.expect_args(i, 2)?;
                if self.operand_ty(inst.args[0])? != Ty::Ptr {
                    return Err(self.fail(format!("gep {i}: base must be ptr")));
                }
                if self.operand_ty(inst.args[1])? != Ty::I64 {
                    return Err(self.fail(format!("gep {i}: index must be i64")));
                }
                if inst.ty != Ty::Ptr {
                    return Err(self.fail(format!("gep {i}: result must be ptr")));
                }
            }
            Op::Call(name) => {
                if name.is_empty() {
                    return Err(self.fail(format!("call {i}: empty callee name")));
                }
                for &a in &inst.args {
                    let t = self.operand_ty(a)?;
                    if !matches!(t, Ty::I64 | Ty::I1) {
                        return Err(
                            self.fail(format!("call {i}: argument of type {t} not allowed"))
                        );
                    }
                }
            }
            Op::Phi(blocks) => {
                if blocks.len() != inst.args.len() {
                    return Err(self.fail(format!(
                        "phi {i}: {} blocks vs {} values",
                        blocks.len(),
                        inst.args.len()
                    )));
                }
                // One incoming per reachable predecessor, no extras.
                let reachable_preds: HashSet<BlockId> = preds
                    .of(b)
                    .iter()
                    .copied()
                    .filter(|p| dom.is_reachable(*p))
                    .collect();
                let incoming: HashSet<BlockId> = blocks
                    .iter()
                    .copied()
                    .filter(|p| dom.is_reachable(*p))
                    .collect();
                if incoming != reachable_preds {
                    return Err(self.fail(format!(
                        "phi {i} in {b}: incoming blocks {incoming:?} != predecessors {reachable_preds:?}"
                    )));
                }
                let mut seen = HashSet::new();
                for &pb in blocks {
                    if dom.is_reachable(pb) && !seen.insert(pb) {
                        return Err(self.fail(format!("phi {i}: duplicate incoming block {pb}")));
                    }
                }
                for &v in &inst.args {
                    let t = self.operand_ty(v)?;
                    if t != inst.ty {
                        return Err(
                            self.fail(format!("phi {i}: incoming type {t} != result {}", inst.ty))
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn check_terminator(&self, b: BlockId) -> Result<(), VerifyError> {
        match &self.func.block(b).term {
            Terminator::CondBr { cond, .. } => {
                if self.operand_ty(*cond)? != Ty::I1 {
                    return Err(self.fail(format!("condbr in {b}: condition must be i1")));
                }
            }
            Terminator::Ret(v) => match (self.func.ret, v) {
                (None, Some(_)) => {
                    return Err(self.fail(format!("ret in {b}: void function returns a value")))
                }
                (Some(_), None) => {
                    return Err(self.fail(format!("ret in {b}: missing return value")))
                }
                (Some(rt), Some(v)) => {
                    let t = self.operand_ty(*v)?;
                    if t != rt {
                        return Err(self.fail(format!("ret in {b}: returns {t}, expected {rt}")));
                    }
                }
                (None, None) => {}
            },
            Terminator::Br(_) | Terminator::Trap => {}
        }
        Ok(())
    }

    /// Every non-phi use must be dominated by its definition; phi uses must
    /// be dominated at the end of the incoming block.
    fn check_dominance(
        &self,
        dom: &DomTree,
        owner: &HashMap<InstId, BlockId>,
    ) -> Result<(), VerifyError> {
        let func = self.func;
        // Position of each instruction within its block for same-block checks.
        let mut position: HashMap<InstId, usize> = HashMap::new();
        for b in func.block_ids() {
            for (idx, &i) in func.block(b).insts.iter().enumerate() {
                position.insert(i, idx);
            }
        }

        let check_use =
            |user_block: BlockId, user_pos: usize, used: ValueRef| -> Result<(), VerifyError> {
                let ValueRef::Inst(def) = used else {
                    return Ok(());
                };
                let Some(&def_block) = owner.get(&def) else {
                    return Err(self.fail(format!("use of detached inst {def}")));
                };
                if !dom.is_reachable(user_block) {
                    return Ok(());
                }
                if def_block == user_block {
                    if position[&def] >= user_pos {
                        return Err(
                            self.fail(format!("inst {def} used before definition in {user_block}"))
                        );
                    }
                } else if !dom.dominates(def_block, user_block) {
                    return Err(self.fail(format!(
                        "def of {def} in {def_block} does not dominate use in {user_block}"
                    )));
                }
                Ok(())
            };

        for b in func.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for (idx, &i) in func.block(b).insts.iter().enumerate() {
                let inst = func.inst(i);
                if let Op::Phi(blocks) = &inst.op {
                    for (&pb, &v) in blocks.iter().zip(&inst.args) {
                        if !dom.is_reachable(pb) {
                            continue;
                        }
                        // A phi use must be available at the end of the
                        // incoming block.
                        check_use(pb, usize::MAX, v)?;
                    }
                } else {
                    for &a in &inst.args {
                        check_use(b, idx, a)?;
                    }
                }
            }
            let term_pos = func.block(b).insts.len();
            for v in func.block(b).term.args() {
                check_use(b, term_pos, v)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FuncBuilder, ENTRY};
    use crate::inst::{BinKind, IcmpPred, InstData};

    fn ok(func: &Function) {
        verify_function(func).unwrap_or_else(|e| panic!("{e}\n{func}"));
    }

    fn bad(func: &Function, needle: &str) {
        let err = verify_function(func).expect_err("expected verify failure");
        assert!(err.message.contains(needle), "got: {err}");
    }

    #[test]
    fn accepts_valid_function() {
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut f);
        let v = b.bin(BinKind::Add, ValueRef::Param(0), ValueRef::int(1));
        b.ret(Some(v));
        ok(&f);
    }

    #[test]
    fn rejects_type_mismatch_in_bin() {
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut f);
        let v = b.bin(BinKind::Add, ValueRef::Param(0), ValueRef::bool(true));
        b.ret(Some(v));
        bad(&f, "disagree");
    }

    #[test]
    fn rejects_i1_arithmetic() {
        let mut f = Function::new("f", vec![Ty::I1], Some(Ty::I1));
        let mut b = FuncBuilder::at_entry(&mut f);
        let v = b.bin(BinKind::Add, ValueRef::Param(0), ValueRef::bool(true));
        b.ret(Some(v));
        bad(&f, "not defined on i1");
    }

    #[test]
    fn accepts_i1_logic() {
        let mut f = Function::new("f", vec![Ty::I1], Some(Ty::I1));
        let mut b = FuncBuilder::at_entry(&mut f);
        let v = b.bin(BinKind::Xor, ValueRef::Param(0), ValueRef::bool(true));
        b.ret(Some(v));
        ok(&f);
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        // Manually attach in the wrong order.
        let second = f.alloc_inst(InstData::new(
            Op::Bin(BinKind::Add),
            vec![ValueRef::int(1), ValueRef::int(2)],
            Ty::I64,
        ));
        let first = f.alloc_inst(InstData::new(
            Op::Bin(BinKind::Add),
            vec![ValueRef::Inst(second), ValueRef::int(1)],
            Ty::I64,
        ));
        f.block_mut(ENTRY).insts.push(first);
        f.block_mut(ENTRY).insts.push(second);
        f.block_mut(ENTRY).term = Terminator::Ret(Some(ValueRef::Inst(first)));
        bad(&f, "used before definition");
    }

    #[test]
    fn rejects_use_not_dominating() {
        // entry → (b1|b2) → b3; def in b1, use in b3 without phi.
        let mut f = Function::new("f", vec![Ty::I1], Some(Ty::I64));
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.cond_br(ValueRef::Param(0), b1, b2);
        b.switch_to(b1);
        let v = b.bin(BinKind::Add, ValueRef::int(1), ValueRef::int(2));
        b.br(b3);
        b.switch_to(b2);
        b.br(b3);
        b.switch_to(b3);
        b.ret(Some(v));
        bad(&f, "does not dominate");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut f = Function::new("f", vec![Ty::I1], Some(Ty::I64));
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.cond_br(ValueRef::Param(0), b1, b2);
        b.switch_to(b1);
        b.br(b3);
        b.switch_to(b2);
        b.br(b3);
        b.switch_to(b3);
        let phi = b.phi(Ty::I64);
        b.add_phi_incoming(phi, b1, ValueRef::int(1));
        // Missing incoming for b2.
        b.ret(Some(phi));
        bad(&f, "predecessors");
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut f);
        b.bin(BinKind::Add, ValueRef::int(1), ValueRef::int(2));
        let phi = b.phi(Ty::I64);
        let _ = phi;
        b.ret(Some(ValueRef::int(0)));
        bad(&f, "after a non-phi");
    }

    #[test]
    fn rejects_condbr_on_i64() {
        let mut f = Function::new("f", vec![Ty::I64], None);
        let t = f.add_block();
        let e = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.cond_br(ValueRef::Param(0), t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        bad(&f, "condition must be i1");
    }

    #[test]
    fn rejects_wrong_return_type() {
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut f);
        b.ret(Some(ValueRef::bool(true)));
        bad(&f, "returns i1");
    }

    #[test]
    fn rejects_missing_return_value() {
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        FuncBuilder::at_entry(&mut f).ret(None);
        bad(&f, "missing return value");
    }

    #[test]
    fn rejects_void_value_use() {
        let mut f = Function::new("f", vec![Ty::I64], Some(Ty::I64));
        let mut b = FuncBuilder::at_entry(&mut f);
        let ptr = b.alloca(1);
        b.store(ptr, ValueRef::Param(0));
        let store_id = f.block(ENTRY).insts[1];
        f.block_mut(ENTRY).term = Terminator::Ret(Some(ValueRef::Inst(store_id)));
        bad(&f, "void instruction");
    }

    #[test]
    fn rejects_out_of_range_param() {
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        FuncBuilder::at_entry(&mut f).ret(Some(ValueRef::Param(3)));
        bad(&f, "out of range");
    }

    #[test]
    fn rejects_branch_to_missing_block() {
        let mut f = Function::new("f", vec![], None);
        f.block_mut(ENTRY).term = Terminator::Br(BlockId(9));
        bad(&f, "out-of-range block");
    }

    #[test]
    fn rejects_double_attached_inst() {
        let mut f = Function::new("f", vec![], None);
        let b1 = f.add_block();
        let id = f.append_inst(
            ENTRY,
            InstData::new(
                Op::Bin(BinKind::Add),
                vec![ValueRef::int(1), ValueRef::int(1)],
                Ty::I64,
            ),
        );
        f.block_mut(b1).insts.push(id);
        f.block_mut(ENTRY).term = Terminator::Br(b1);
        f.block_mut(b1).term = Terminator::Ret(None);
        bad(&f, "attached to both");
    }

    #[test]
    fn rejects_gep_on_non_ptr() {
        let mut f = Function::new("f", vec![Ty::I64], None);
        let mut b = FuncBuilder::at_entry(&mut f);
        b.gep(ValueRef::Param(0), ValueRef::int(0));
        b.ret(None);
        bad(&f, "base must be ptr");
    }

    #[test]
    fn ignores_unreachable_garbage() {
        let mut f = Function::new("f", vec![], None);
        let orphan = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.ret(None);
        // Unreachable block with a nonsense terminator target that is in
        // range but never executed: the verifier still checks block-id
        // ranges, but not dominance inside it.
        b.switch_to(orphan);
        b.ret(None);
        ok(&f);
    }

    #[test]
    fn loop_phi_verifies() {
        // i = phi [entry: 0], [body: i+1]
        let mut f = Function::new("f", vec![], Some(Ty::I64));
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let mut b = FuncBuilder::at_entry(&mut f);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64);
        let c = b.icmp(IcmpPred::Slt, i, ValueRef::int(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let next = b.bin(BinKind::Add, i, ValueRef::int(1));
        b.br(header);
        b.add_phi_incoming(i, ENTRY, ValueRef::int(0));
        b.add_phi_incoming(i, body, next);
        b.switch_to(exit);
        b.ret(Some(i));
        ok(&f);
    }
}
